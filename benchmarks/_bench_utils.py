"""Helpers shared by the benchmark modules (kept outside conftest so they
can be imported explicitly without relying on pytest's conftest path
injection)."""

from __future__ import annotations

import numpy as np

from repro.graphs import random_features

__all__ = ["features_for"]


def features_for(graph, d: int, seed: int = 0) -> np.ndarray:
    """Random single-precision features sized for ``graph``."""
    return random_features(graph.num_vertices, d, seed=seed)
