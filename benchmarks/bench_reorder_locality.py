"""Benchmark: locality tier — vertex reordering + cache-blocked execution.

Runs :func:`repro.bench.bench_reorder_locality` — the same FusedMM epoch
stream through every ``reorder=`` strategy on a label-shuffled RMAT
power-law graph — and gates on the repo's acceptance criterion: the best
reordered strategy ≥1.2× faster than the natural ordering on
``sigmoid_embedding`` (d=128).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_reorder_locality.py [--quick] [--json PATH]

or via the CLI: ``python -m repro bench reorder``.  The speedup gate is
skipped on tiny problems/hosts (``--quick``, or fewer than
``--gate-min-nnz`` edges): when the dense operand already fits in cache
there is no locality to recover and the measurement is meaningless.
Correctness (allclose against the natural-order kernel) is always
checked.  ``--json`` writes a machine-readable ``BENCH_reorder.json`` via
:mod:`repro.bench.record`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.record import record_benchmark  # noqa: E402
from repro.bench.reorder_bench import (  # noqa: E402
    DEFAULT_MIN_SPEEDUP,
    GATE_PATTERN,
    bench_reorder_locality,
)
from repro.bench.tables import format_table  # noqa: E402

#: Below this many edges the working set fits in cache on any recent host
#: and the reordering gate would measure scheduler noise.
DEFAULT_GATE_MIN_NNZ = 500_000

#: Reordered results re-associate per-row accumulation; at float32 with
#: degrees in the hundreds this stays well under 1e-3.
MAX_ABS_ERR = 1e-3


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--avg-degree", type=int, default=16)
    parser.add_argument("--dim", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--pattern", default=GATE_PATTERN)
    parser.add_argument(
        "--strategies",
        nargs="+",
        default=["none", "degree", "rcm", "hub"],
        help="reorder strategies to measure",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help="required best-reordered speedup over the natural ordering",
    )
    parser.add_argument(
        "--gate-min-nnz",
        type=int,
        default=DEFAULT_GATE_MIN_NNZ,
        help="skip the speedup gate below this many edges (tiny host/problem)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write BENCH_reorder.json-style results to PATH",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="report only; do not fail on missed targets",
    )
    args = parser.parse_args(argv)

    nodes = args.nodes or (4_000 if args.quick else 50_000)
    dim = args.dim or (32 if args.quick else 128)
    repeats = args.repeats or (2 if args.quick else 3)

    rows = bench_reorder_locality(
        num_nodes=nodes,
        avg_degree=args.avg_degree,
        dim=dim,
        repeats=repeats,
        pattern=args.pattern,
        strategies=args.strategies,
    )
    print(format_table(rows, title="Locality tier (reordering + cache blocking)"))

    if args.json:
        path = record_benchmark(
            "reorder",
            rows,
            path=args.json,
            extra={"config": {"nodes": nodes, "dim": dim, "repeats": repeats}},
        )
        print(f"wrote {path}")

    failures = []
    for r in rows:
        if r["max_abs_err"] > MAX_ABS_ERR:
            failures.append(
                f"strategy {r['requested']}: drifted from the natural-order "
                f"kernel (max_abs_err {r['max_abs_err']:.2e})"
            )
    nnz = rows[0]["nnz"] if rows else 0
    gate_applies = (
        not args.quick
        and nnz >= args.gate_min_nnz
        and args.pattern == GATE_PATTERN
    )
    reordered = [r for r in rows if r["requested"] != "none"]
    if gate_applies and reordered:
        best = max(reordered, key=lambda r: r["speedup_vs_none"])
        if best["speedup_vs_none"] < args.min_speedup:
            failures.append(
                f"best reordered speedup {best['speedup_vs_none']:.2f}x "
                f"({best['requested']}) < required {args.min_speedup:.1f}x"
            )
        else:
            print(
                f"best reordered strategy {best['requested']!r}: "
                f"{best['speedup_vs_none']:.2f}x vs natural ordering"
            )

    if failures and not args.no_check:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    if failures:
        print("targets missed (reported only)")
    elif not gate_applies:
        print(
            "tiny problem/host or non-gate pattern: correctness verified, "
            "speedup gate skipped"
        )
    else:
        print("locality targets met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
