"""Benchmarks regenerating Fig. 11 — sensitivity to degree and dimension.

Fig. 11(a): DGL vs FusedMM on RMAT graphs of increasing average degree.
Fig. 11(b): DGL vs FusedMM on the Flickr twin with increasing dimension.
Each (graph/degree, dimension) pair forms one benchmark group whose two
members are the unfused baseline and the fused kernel.
"""

from __future__ import annotations

import pytest

from repro.baselines import unfused_fusedmm
from repro.core import fusedmm
from repro.graphs import random_features, rmat

from _bench_utils import features_for

DEGREES = [4, 16, 64]
DIMS = [64, 256]
RMAT_VERTICES = 8000


@pytest.fixture(scope="module", params=DEGREES)
def rmat_graph(request):
    """RMAT graph of the degree sweep (scaled-down Fig. 11a workload)."""
    degree = request.param
    A = rmat(RMAT_VERTICES, int(RMAT_VERTICES * degree / 2), seed=degree)
    return degree, A


def bench_fig11a_dgl(benchmark, rmat_graph):
    """Unfused baseline on an RMAT graph (embedding pattern, d=128)."""
    degree, A = rmat_graph
    X = random_features(A.nrows, 128, seed=0)
    benchmark.group = f"fig11a-rmat-deg{degree}-d128"
    benchmark(lambda: unfused_fusedmm(A, X, X, pattern="sigmoid_embedding"))


def bench_fig11a_fusedmm(benchmark, rmat_graph):
    """FusedMM on an RMAT graph (embedding pattern, d=128)."""
    degree, A = rmat_graph
    X = random_features(A.nrows, 128, seed=0)
    benchmark.group = f"fig11a-rmat-deg{degree}-d128"
    benchmark(lambda: fusedmm(A, X, X, pattern="sigmoid_embedding", backend="auto"))


@pytest.mark.parametrize("d", DIMS)
def bench_fig11b_dgl_flickr(benchmark, flickr_graph, d):
    """Unfused baseline on the Flickr twin across dimensions."""
    A = flickr_graph.adjacency
    X = features_for(flickr_graph, d)
    benchmark.group = f"fig11b-flickr-d{d}"
    benchmark(lambda: unfused_fusedmm(A, X, X, pattern="sigmoid_embedding"))


@pytest.mark.parametrize("d", DIMS)
def bench_fig11b_fusedmm_flickr(benchmark, flickr_graph, d):
    """FusedMM on the Flickr twin across dimensions."""
    A = flickr_graph.adjacency
    X = features_for(flickr_graph, d)
    benchmark.group = f"fig11b-flickr-d{d}"
    benchmark(lambda: fusedmm(A, X, X, pattern="sigmoid_embedding", backend="auto"))
