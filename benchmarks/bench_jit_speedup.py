"""Benchmark: JIT backend speedup over the NumPy blocked backends.

Runs :func:`repro.bench.bench_jit_speedup` — the same FusedMM call through
the ``optimized``, ``specialized`` and ``jit`` backends — and gates on the
repo's acceptance criterion: ``jit`` ≥3× faster than ``optimized`` on the
``sigmoid_embedding`` pattern (d=128, RMAT graph).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_jit_speedup.py [--quick] [--json PATH]

or via the CLI: ``python -m repro bench jit``.  Without numba installed the
jit rows are skipped and the script exits 0 (the gate only applies where
the compiled tier exists); ``--no-check`` always reports only.  ``--json``
writes a machine-readable ``BENCH_jit.json`` via :mod:`repro.bench.record`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.jit_bench import DEFAULT_MIN_SPEEDUP, bench_jit_speedup  # noqa: E402
from repro.bench.record import record_benchmark  # noqa: E402
from repro.bench.tables import format_table  # noqa: E402
from repro.core.jit import jit_available  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--avg-degree", type=int, default=16)
    parser.add_argument("--dim", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--patterns", nargs="+", default=["sigmoid_embedding", "fr_layout", "gcn"]
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help="required jit speedup over the optimized backend on sigmoid_embedding",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write BENCH_jit.json-style results to PATH",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="report only; do not fail on missed targets",
    )
    args = parser.parse_args(argv)

    nodes = args.nodes or (4_000 if args.quick else 20_000)
    dim = args.dim or (32 if args.quick else 128)
    repeats = args.repeats or (2 if args.quick else 3)

    rows = bench_jit_speedup(
        num_nodes=nodes,
        avg_degree=args.avg_degree,
        dim=dim,
        repeats=repeats,
        patterns=args.patterns,
    )
    print(format_table(rows, title="JIT backend speedup (vs NumPy backends)"))
    if args.json:
        print(f"wrote {record_benchmark('jit', rows, path=args.json)}")

    if not jit_available():
        print("numba is not installed: jit rows skipped, speedup gate not applicable")
        return 0
    if args.no_check:
        return 0

    gate_rows = [
        r
        for r in rows
        if r["backend"] == "jit" and r["pattern"] == "sigmoid_embedding"
    ]
    ok = True
    for row in gate_rows:
        speedup = row["speedup_vs_optimized"]
        if speedup < args.min_speedup:
            print(
                f"FAIL: jit speedup {speedup:.2f}x < required "
                f"{args.min_speedup:.1f}x on sigmoid_embedding"
            )
            ok = False
        if row["max_abs_err"] > 1e-3:
            print(f"FAIL: jit result drifted from optimized: {row['max_abs_err']}")
            ok = False
    if ok and gate_rows:
        print(
            "OK: jit beats optimized by "
            f"{gate_rows[0]['speedup_vs_optimized']:.2f}x on sigmoid_embedding"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
