"""Serving smoke: a real ``repro serve`` process under concurrent clients.

Unlike the in-process benchmark, this drives the *actual deployment
artifact*: ``python -m repro serve`` as a subprocess, hit over real
sockets by concurrent threads, then drained with SIGTERM.  Asserts:

* ``/healthz`` answers 200 once the registry is warm;
* concurrent ``/v1/kernel`` (inline graph, binary payloads) and
  ``/v1/embed`` requests all answer 200 with correct results (kernel
  responses bitwise-equal to a local sequential reference);
* the binary wire port serves concurrent **pipelined** clients the same
  answers bitwise (kernels and embedding lookups);
* ``/statz`` shows coalescer + wire activity (every request accounted
  for);
* SIGTERM lands while a wire client still has requests pipelined: each
  outstanding request is answered with either its bitwise-correct result
  or a 503 draining error frame — never silence — and the process exits
  with the goodbye line (graceful drain mid-pipeline).

Run standalone::

    PYTHONPATH=src python benchmarks/serve_smoke.py

Used by the CI ``serve-smoke`` job.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import threading
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.core.fused import fusedmm  # noqa: E402
from repro.errors import DrainingError, ServeError  # noqa: E402
from repro.graphs.features import random_features  # noqa: E402
from repro.serve import ServeClient, WireClient, wait_until_healthy  # noqa: E402
from repro.sparse import random_csr  # noqa: E402

HOST = "127.0.0.1"
PORT = 8765
WIRE_PORT = 8766
CLIENTS = 6
REQUESTS_PER_CLIENT = 5


def main() -> int:
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            HOST,
            "--port",
            str(PORT),
            "--wire-port",
            str(WIRE_PORT),
            "--models",
            "cora",
            "--scale",
            "0.1",
            "--max-batch",
            "16",
        ],
        cwd=_ROOT,
        env={**__import__("os").environ, "PYTHONPATH": str(_SRC)},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    failures: list[str] = []
    try:
        if not wait_until_healthy(HOST, PORT, timeout=120.0):
            print(proc.stdout.read() if proc.stdout else "")
            print("FAIL: server never became healthy", file=sys.stderr)
            return 1
        print("healthz: ok")

        problems = []
        for i in range(4):
            A = random_csr(80, 80, density=0.05, seed=i)
            X = random_features(80, 8, seed=100 + i)
            problems.append((A, X, fusedmm(A, X, X, pattern="sigmoid_embedding")))

        def _client(cid: int) -> None:
            try:
                with ServeClient(HOST, PORT, timeout=60.0) as client:
                    for r in range(REQUESTS_PER_CLIENT):
                        A, X, Z_ref = problems[(cid + r) % len(problems)]
                        Z = client.kernel(graph=A, X=X, binary=True)
                        if not np.array_equal(Z, Z_ref):
                            failures.append(f"client {cid}: kernel result drifted")
                    rows = client.embed("cora-force2vec", [0, 1, 2])
                    if rows.shape != (3, 32):
                        failures.append(f"client {cid}: embed shape {rows.shape}")
            except Exception as exc:  # noqa: BLE001
                failures.append(f"client {cid}: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=_client, args=(c,)) for c in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = CLIENTS * REQUESTS_PER_CLIENT

        # --- wire phase: concurrent clients, each pipelining 8 kernels --- #
        WIRE_CLIENTS, WIRE_REQUESTS = 3, 8

        def _wire_client(cid: int) -> None:
            try:
                with WireClient(HOST, WIRE_PORT, timeout=60.0) as client:
                    inflight = {}
                    for r in range(WIRE_REQUESTS):
                        g = (cid + r) % len(problems)
                        rid = client.send_kernel(
                            graph=problems[g][0], x=problems[g][1]
                        )
                        inflight[rid] = g
                    for _ in range(WIRE_REQUESTS):
                        rid, value = client.recv()
                        g = inflight.pop(rid)
                        if isinstance(value, Exception):
                            raise value
                        if not np.array_equal(value, problems[g][2]):
                            failures.append(
                                f"wire client {cid}: kernel result drifted"
                            )
                    rows = client.embed("cora-force2vec", [0, 1, 2])
                    if rows.shape != (3, 32):
                        failures.append(
                            f"wire client {cid}: embed shape {rows.shape}"
                        )
            except Exception as exc:  # noqa: BLE001
                failures.append(
                    f"wire client {cid}: {type(exc).__name__}: {exc}"
                )

        wire_threads = [
            threading.Thread(target=_wire_client, args=(c,))
            for c in range(WIRE_CLIENTS)
        ]
        for t in wire_threads:
            t.start()
        for t in wire_threads:
            t.join()
        wire_total = WIRE_CLIENTS * WIRE_REQUESTS
        print(f"wire: {wire_total} pipelined kernel requests answered")

        with ServeClient(HOST, PORT, timeout=30.0) as client:
            stats = client.statz()
        coal = stats["coalescer"]
        print(
            f"served {total} kernel requests: batches={coal['batches']} "
            f"occupancy={coal['mean_window_occupancy']} "
            f"wait_p99={coal['wait_ms_p99']}ms "
            f"hit_rate={stats['plan_cache_hit_rate']}"
        )
        if coal["completed"] < total + wire_total:
            failures.append(
                f"coalescer completed {coal['completed']} < "
                f"{total + wire_total} submitted"
            )
        if coal["failed"] or coal["rejected_queue_full"]:
            failures.append(f"unexpected failures in stats: {coal}")
        wire_stats = stats.get("wire") or {}
        if wire_stats.get("frames_served", 0) < wire_total:
            failures.append(f"wire stats undercount: {wire_stats}")
        if wire_stats.get("protocol_errors", 0):
            failures.append(f"unexpected wire protocol errors: {wire_stats}")

        # --- drain mid-pipeline: SIGTERM with wire requests outstanding --- #
        drained_ok, drained_503 = 0, 0
        with WireClient(HOST, WIRE_PORT, timeout=60.0) as client:
            inflight = {}
            for r in range(6):
                g = r % len(problems)
                rid = client.send_kernel(graph=problems[g][0], x=problems[g][1])
                inflight[rid] = g
            proc.send_signal(signal.SIGTERM)
            try:
                while inflight:
                    rid, value = client.recv()
                    g = inflight.pop(rid)
                    if isinstance(value, DrainingError):
                        drained_503 += 1
                    elif isinstance(value, ServeError):
                        failures.append(
                            f"drain: unexpected error frame {value}"
                        )
                    elif np.array_equal(value, problems[g][2]):
                        drained_ok += 1
                    else:
                        failures.append("drain: kernel result drifted")
            except ConnectionError:
                # Every pipelined request must be answered before the
                # server hangs up — silence on an outstanding id is the
                # bug the drain sequencing exists to prevent.
                failures.append(
                    f"drain: connection closed with {len(inflight)} "
                    "pipelined requests unanswered"
                )
        print(
            f"drain mid-pipeline: {drained_ok} completed, "
            f"{drained_503} answered 503"
        )
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        try:
            out, _ = proc.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            out, _ = proc.communicate()
            failures.append("server did not drain within 60s of SIGTERM")

    if "drained, bye" not in (out or ""):
        failures.append(f"no graceful-drain goodbye in server output:\n{out}")
    if proc.returncode not in (0, -signal.SIGTERM):
        failures.append(f"server exited with {proc.returncode}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("serving smoke: all requests 200, stats consistent, drain clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
