"""Benchmark: binary wire protocol vs the HTTP/1.1 serving front-end.

Runs :func:`repro.bench.serve_bench.bench_wire_vs_http` — one in-process
server exposing both transports off the same coalescer, hammered by the
same closed-loop client fleet over HTTP and over the framed wire protocol
(pipelined) — and gates on the repo's acceptance criterion: wire ≥ 1.3×
HTTP on tiny payloads.  The large-payload leg is a sanity check, not a
gate: once kernel time dominates, the transports should converge.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_wire_protocol.py [--quick] [--json PATH]

or via the CLI: ``python -m repro bench serve --wire``.  The speedup gate
holds on any core count — it measures transport overhead, not
parallelism — but is skipped under ``--no-check``; **bitwise correctness
is always checked** on both legs and both transports.  ``--json`` writes
a machine-readable ``BENCH_wire.json`` via :mod:`repro.bench.record`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.record import record_benchmark  # noqa: E402
from repro.bench.serve_bench import (  # noqa: E402
    WIRE_MIN_SPEEDUP,
    bench_wire_vs_http,
)
from repro.bench.tables import format_table  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None, help="per client")
    parser.add_argument("--pipeline", type=int, default=4)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=WIRE_MIN_SPEEDUP,
        help="required tiny-payload wire-over-HTTP throughput ratio",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write BENCH_wire.json-style results to PATH",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="report only; do not fail on missed targets",
    )
    args = parser.parse_args(argv)

    clients = args.clients or (4 if args.quick else 6)
    requests = args.requests or (15 if args.quick else 40)

    rows = bench_wire_vs_http(
        clients=clients,
        requests_per_client=requests,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        pipeline=args.pipeline,
    )
    print(format_table(rows, title="Serving transport (wire vs HTTP)"))

    if args.json:
        path = record_benchmark(
            "wire",
            rows,
            path=args.json,
            extra={
                "config": {
                    "clients": clients,
                    "requests_per_client": requests,
                    "pipeline": args.pipeline,
                }
            },
        )
        print(f"wrote {path}")

    failures = []
    for r in rows:
        if not r["bitwise_identical"]:
            failures.append(
                f"{r['payload']}/{r['transport']}: responses drifted from "
                f"the sequential fusedmm reference "
                f"({r.get('errors', 'value mismatch')})"
            )
    tiny_wire = next(
        (
            r
            for r in rows
            if r["payload"] == "tiny" and r["transport"] == "wire"
        ),
        None,
    )
    if tiny_wire is not None:
        speedup = tiny_wire.get("speedup_vs_http", 0.0)
        if speedup < args.min_speedup:
            failures.append(
                f"tiny-payload wire speedup {speedup:.2f}x < required "
                f"{args.min_speedup:.1f}x"
            )
        else:
            print(f"wire protocol: {speedup:.2f}x vs HTTP on tiny payloads")

    if failures and not args.no_check:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    if failures:
        print("targets missed (reported only)")
    else:
        print("wire-protocol targets met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
