"""Benchmark: async serving tier — micro-batching vs serial dispatch.

Runs :func:`repro.bench.serve_bench.bench_serve_throughput` — an
in-process ``repro serve`` instance under N closed-loop HTTP clients,
once with ``max_batch=1`` (one-request-at-a-time dispatch) and once with
micro-batching — and gates on the repo's acceptance criterion: coalesced
throughput ≥ 1.5× serial at ≥ 8 concurrent clients.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py [--quick] [--json PATH]

or via the CLI: ``python -m repro bench serve``.  The speedup gate is
skipped on single-core hosts (serialising everything onto one core hides
exactly the concurrency micro-batching converts into batch parallelism)
and under ``--quick``; **bitwise correctness against locally computed
kernels is always checked** — every response is compared to a sequential
``fusedmm`` reference before it counts towards throughput.  ``--json``
writes a machine-readable ``BENCH_serve.json`` via
:mod:`repro.bench.record`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.record import record_benchmark  # noqa: E402
from repro.bench.serve_bench import (  # noqa: E402
    DEFAULT_MIN_SPEEDUP,
    GATE_MIN_CLIENTS,
    bench_serve_throughput,
)
from repro.bench.tables import format_table  # noqa: E402
from repro.core.parallel import available_threads  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None, help="per client")
    parser.add_argument("--nodes", type=int, default=96)
    parser.add_argument("--dim", type=int, default=8)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help="required coalesced-over-serial throughput ratio",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write BENCH_serve.json-style results to PATH",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="report only; do not fail on missed targets",
    )
    args = parser.parse_args(argv)

    clients = args.clients or (4 if args.quick else 8)
    requests = args.requests or (10 if args.quick else 40)

    rows = bench_serve_throughput(
        clients=clients,
        requests_per_client=requests,
        nodes=args.nodes,
        dim=args.dim,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
    )
    print(format_table(rows, title="Serving throughput (micro-batching vs serial)"))

    if args.json:
        path = record_benchmark(
            "serve",
            rows,
            path=args.json,
            extra={
                "config": {
                    "clients": clients,
                    "requests_per_client": requests,
                    "nodes": args.nodes,
                    "dim": args.dim,
                }
            },
        )
        print(f"wrote {path}")

    failures = []
    for r in rows:
        if not r["bitwise_identical"]:
            failures.append(
                f"mode {r['mode']}: responses drifted from the sequential "
                f"fusedmm reference ({r.get('errors', 'value mismatch')})"
            )
    cpus = available_threads()
    gate_applies = (
        not args.quick and cpus > 1 and clients >= GATE_MIN_CLIENTS
    )
    coalesced = next((r for r in rows if r["mode"] == "coalesced"), None)
    if gate_applies and coalesced is not None:
        speedup = coalesced.get("speedup_vs_serial", 0.0)
        if speedup < args.min_speedup:
            failures.append(
                f"coalesced speedup {speedup:.2f}x < required "
                f"{args.min_speedup:.1f}x ({clients} clients, {cpus} cpus)"
            )
        else:
            print(f"micro-batching: {speedup:.2f}x vs one-request-at-a-time")

    if failures and not args.no_check:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    if failures:
        print("targets missed (reported only)")
    elif not gate_applies:
        print(
            "single-core host or quick run: bitwise identity verified, "
            "throughput gate skipped"
        )
    else:
        print("serving targets met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
