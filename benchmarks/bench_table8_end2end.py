"""Benchmarks regenerating Table VIII — end-to-end Force2Vec epoch time.

Each benchmark times one training epoch of Force2Vec (d=128, batch 256 as
in the paper) with one kernel backend on the Cora twin; the table's
slowdown factors are the ratios of the group's means.  Pubmed and the full
protocol are covered by ``python -m repro.experiments.table8_end2end``.
"""

from __future__ import annotations

import pytest

from repro.apps import Force2Vec, Force2VecConfig

BACKENDS = ["fused", "unfused", "dense"]


@pytest.mark.parametrize("backend", BACKENDS)
def bench_table8_force2vec_epoch_cora(benchmark, cora_graph, backend):
    """One Force2Vec epoch on the Cora twin with the given kernel backend."""
    config = Force2VecConfig(dim=128, batch_size=256, epochs=1, seed=0, backend=backend)
    model = Force2Vec(cora_graph, config)
    benchmark.group = "table8-cora-epoch"
    benchmark.pedantic(lambda: model.train_epoch(0), rounds=3, iterations=1, warmup_rounds=1)
