"""Benchmarks regenerating Table VI — kernel time for embedding, FR and GCN.

Each benchmark times one cell family of Table VI: one application pattern
on one graph, for the unfused (DGL-style) baseline, the optimized fused
kernel, and (on a row sample) the unoptimized reference FusedMM.  The
FusedMMopt-over-DGL speedup of the table is the ratio of the corresponding
benchmark means within a group; the complete grid can be printed with
``python -m repro.experiments.table6_kernels``.
"""

from __future__ import annotations

import pytest

from repro.baselines import unfused_fusedmm
from repro.core import fusedmm

from _bench_utils import features_for

#: (application, pattern) pairs of Table VI.
APPS = [
    ("embedding", "sigmoid_embedding"),
    ("fr", "fr_layout"),
    ("gcn", "gcn"),
]

DIMS = [32, 128]


@pytest.mark.parametrize("app,pattern", APPS, ids=[a for a, _ in APPS])
@pytest.mark.parametrize("d", DIMS)
def bench_table6_youtube_dgl(benchmark, youtube_graph, app, pattern, d):
    """Unfused (DGL-style) kernel time on the Youtube twin."""
    A = youtube_graph.adjacency
    X = features_for(youtube_graph, d)
    benchmark.group = f"table6-youtube-{app}-d{d}"
    benchmark(lambda: unfused_fusedmm(A, X, X, pattern=pattern))


@pytest.mark.parametrize("app,pattern", APPS, ids=[a for a, _ in APPS])
@pytest.mark.parametrize("d", DIMS)
def bench_table6_youtube_fusedmmopt(benchmark, youtube_graph, app, pattern, d):
    """Optimized FusedMM kernel time on the Youtube twin."""
    A = youtube_graph.adjacency
    X = features_for(youtube_graph, d)
    benchmark.group = f"table6-youtube-{app}-d{d}"
    benchmark(lambda: fusedmm(A, X, X, pattern=pattern, backend="auto"))


@pytest.mark.parametrize("app,pattern", APPS, ids=[a for a, _ in APPS])
def bench_table6_ogbprot_dgl(benchmark, ogbprot_graph, app, pattern):
    """Unfused (DGL-style) kernel time on the dense Ogbprot twin (d=128)."""
    A = ogbprot_graph.adjacency
    X = features_for(ogbprot_graph, 128)
    benchmark.group = f"table6-ogbprot-{app}-d128"
    benchmark(lambda: unfused_fusedmm(A, X, X, pattern=pattern))


@pytest.mark.parametrize("app,pattern", APPS, ids=[a for a, _ in APPS])
def bench_table6_ogbprot_fusedmmopt(benchmark, ogbprot_graph, app, pattern):
    """Optimized FusedMM kernel time on the dense Ogbprot twin (d=128)."""
    A = ogbprot_graph.adjacency
    X = features_for(ogbprot_graph, 128)
    benchmark.group = f"table6-ogbprot-{app}-d128"
    benchmark(lambda: fusedmm(A, X, X, pattern=pattern, backend="auto"))


def bench_table6_orkut_fusedmm_generic_sample(benchmark, orkut_graph):
    """Unoptimized (Alg. 1 reference) FusedMM on a row sample of the Orkut
    twin — the "FusedMM" (non-opt) row of Table VI, timed on a sample
    because the reference kernel iterates nonzeros in Python."""
    A = orkut_graph.adjacency.row_slice(0, min(1500, orkut_graph.num_vertices))
    X = features_for(orkut_graph, 32)[: A.nrows]
    Y = features_for(orkut_graph, 32)
    benchmark.group = "table6-orkut-embedding-generic-sample"
    benchmark(lambda: fusedmm(A, X, Y, pattern="sigmoid_embedding", backend="generic"))
