"""Shared fixtures for the benchmark suite.

Every benchmark regenerates (a scaled version of) one table or figure of
the paper.  The graphs are the synthetic dataset twins, generated once per
session and scaled down (``BENCH_SCALE``) so the full suite runs in a few
minutes on a laptop; set the ``REPRO_BENCH_SCALE`` environment variable to
1.0 (or more) to benchmark at the registry's full synthetic sizes.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.graphs import load_dataset  # noqa: E402

#: Scale factor applied to every dataset used in benchmarks.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """The dataset scale factor used throughout the benchmark suite."""
    return BENCH_SCALE


@pytest.fixture(scope="session")
def youtube_graph():
    """Synthetic Youtube twin (low average degree)."""
    return load_dataset("youtube", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def ogbprot_graph():
    """Synthetic Ogbprot twin (high average degree)."""
    return load_dataset("ogbprot", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def orkut_graph():
    """Synthetic Orkut twin (largest graph in the suite)."""
    return load_dataset("orkut", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def flickr_graph():
    """Synthetic Flickr twin (dimension-sweep workload)."""
    return load_dataset("flickr", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def cora_graph():
    """Synthetic Cora twin (labelled, end-to-end workload)."""
    return load_dataset("cora", scale=1.0)


# NOTE: no module-level helpers here.  Benchmark modules import helpers
# (``features_for``) from ``_bench_utils`` explicitly; putting them in a
# ``conftest`` invites ``from conftest import ...``, which collides with
# ``tests/conftest.py`` at collection time (both land on sys.path under
# the bare module name ``conftest``).
