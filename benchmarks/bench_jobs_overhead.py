"""Benchmark: checkpoint overhead of durable training jobs.

Runs :func:`repro.bench.jobs_bench.bench_checkpoint_overhead` — each app
trained bare and with per-epoch durable checkpoints — and gates on the
repo's acceptance criteria:

* ``overhead_frac <= 0.10``: one durable save costs at most 10% of one
  epoch on the default workload (harvard for the embedding/layout apps,
  pubmed for GCN);
* ``bitwise_identical``: checkpointing every epoch does not perturb the
  final output by a single bit.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_jobs_overhead.py [--quick] [--json PATH]

or via the CLI: ``python -m repro bench jobs``.  ``--json`` writes a
machine-readable ``BENCH_jobs.json`` via :mod:`repro.bench.record`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.jobs_bench import (  # noqa: E402
    DEFAULT_MAX_OVERHEAD,
    bench_checkpoint_overhead,
)
from repro.bench.record import record_benchmark  # noqa: E402
from repro.bench.tables import format_table  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--dim", type=int, default=None)
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--apps",
        nargs="+",
        default=["force2vec", "verse", "gcn", "fr_layout"],
        choices=["force2vec", "verse", "gcn", "fr_layout"],
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=DEFAULT_MAX_OVERHEAD,
        help="max allowed save-time / epoch-time ratio",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write BENCH_jobs.json-style results to PATH",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="report only; do not fail on missed targets",
    )
    args = parser.parse_args(argv)

    nodes = args.nodes or (3_000 if args.quick else 6_000)
    dim = args.dim or (16 if args.quick else 32)
    epochs = args.epochs or (3 if args.quick else 4)
    repeats = args.repeats or (2 if args.quick else 3)

    rows = bench_checkpoint_overhead(
        nodes=nodes, dim=dim, epochs=epochs, repeats=repeats, apps=args.apps
    )
    print(
        format_table(
            rows, title="Checkpoint overhead (per-epoch durable saves vs none)"
        )
    )
    if args.json:
        print(f"wrote {record_benchmark('jobs', rows, path=args.json)}")
    if args.no_check:
        return 0

    ok = True
    for row in rows:
        if not row["bitwise_identical"]:
            print(
                f"FAIL: {row['app']}: checkpointed run diverged bitwise "
                "from the bare run"
            )
            ok = False
        if row["overhead_frac"] > args.max_overhead:
            print(
                f"FAIL: {row['app']}: checkpoint overhead "
                f"{row['overhead_frac']:.1%} > allowed {args.max_overhead:.0%}"
            )
            ok = False
    if ok:
        worst = max(rows, key=lambda r: r["overhead_frac"])
        print(
            f"OK: all apps bitwise-identical under per-epoch checkpoints; "
            f"worst overhead {worst['overhead_frac']:.1%} ({worst['app']})"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
