"""Benchmark regenerating Fig. 7 — the roofline data points.

The benchmarked quantity is the optimized embedding kernel whose attained
GFLOP/s (flop model / measured time) is the y-coordinate of each roofline
point; the arithmetic intensity and bandwidth roof are computed by the
experiment module and printed by ``python -m repro.experiments.fig7_roofline``.
"""

from __future__ import annotations

import pytest

from repro.core import fusedmm
from repro.perf import arithmetic_intensity, measure_stream_bandwidth

from _bench_utils import features_for


@pytest.mark.parametrize("graph_fixture", ["ogbprot_graph", "youtube_graph", "orkut_graph"])
def bench_fig7_embedding_kernel(benchmark, request, graph_fixture):
    """Optimized embedding kernel (d=128) for each roofline graph."""
    graph = request.getfixturevalue(graph_fixture)
    A = graph.adjacency
    X = features_for(graph, 128)
    benchmark.group = "fig7-roofline-kernel-d128"
    benchmark.extra_info["arithmetic_intensity"] = round(arithmetic_intensity(A, 128), 3)
    benchmark(lambda: fusedmm(A, X, X, pattern="sigmoid_embedding", backend="auto"))


def bench_fig7_stream_bandwidth(benchmark):
    """STREAM-triad bandwidth measurement that sets the roofline slope."""
    benchmark.group = "fig7-roofline-bandwidth"
    gbs = benchmark.pedantic(lambda: measure_stream_bandwidth(32.0, repeats=1), rounds=3, iterations=1)
    assert gbs > 0
