"""Benchmark: distributed worker tier vs in-process sharding.

Runs :func:`repro.bench.remote_bench.bench_remote_scaling` — the same
kernel on the same graph executed by 1 and 2 real ``python -m repro
worker`` host processes over localhost TCP — verifying bitwise equality
against sequential ``fusedmm``, a failover leg where one of two hosts
is fault-injected to crash mid-batch (the controller must finish the
batch on the survivor, still bitwise), and a hedge leg where one host
stalls on a late RUN and the controller's speculative hedge must win
(``hedge_wins >= 1``) without changing a byte.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_remote_scaling.py [--quick] [--json PATH]

or via the CLI: ``python -m repro bench remote``.  The process exits
non-zero unless every leg (including failover) is bitwise identical and
the failover leg actually lost and recovered a host (``--no-check``
reports only).  ``--json`` writes a machine-readable ``BENCH_remote.json``
via :mod:`repro.bench.record`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.record import record_benchmark  # noqa: E402
from repro.bench.remote_bench import bench_remote_scaling  # noqa: E402
from repro.bench.tables import format_table  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2], help="worker-host counts"
    )
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--avg-degree", type=int, default=16)
    parser.add_argument("--dim", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--no-kill",
        action="store_true",
        help="skip the failover leg (kill one of two hosts mid-batch)",
    )
    parser.add_argument(
        "--no-hedge",
        action="store_true",
        help="skip the hedge leg (stall one of two hosts on a late RUN)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write BENCH_remote.json-style results to PATH",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="report only; do not fail on missed targets",
    )
    args = parser.parse_args(argv)

    nodes = args.nodes or (4_000 if args.quick else 20_000)
    dim = args.dim or (32 if args.quick else 64)
    repeats = args.repeats or (2 if args.quick else 3)

    rows = bench_remote_scaling(
        num_nodes=nodes,
        avg_degree=args.avg_degree,
        dim=dim,
        repeats=repeats,
        worker_counts=args.workers,
        kill_one=not args.no_kill,
        hedge_leg=not args.no_hedge,
    )
    print(format_table(rows, title="Remote scaling (distributed worker tier)"))

    if args.json:
        path = record_benchmark(
            "remote",
            rows,
            path=args.json,
            extra={"config": {"nodes": nodes, "dim": dim, "repeats": repeats}},
        )
        print(f"wrote {path}")

    failures = []
    for r in rows:
        if not r["identical"]:
            failures.append(
                f"{r['leg']} leg, {r['workers']} workers: "
                "result not bitwise identical"
            )
    failover = [r for r in rows if r["leg"] == "failover"]
    for r in failover:
        if r["hosts_lost"] < 1 or r["retries"] < 1:
            failures.append(
                "failover leg did not exercise recovery "
                f"(hosts_lost={r['hosts_lost']}, retries={r['retries']})"
            )
    for r in (r for r in rows if r["leg"] == "hedge"):
        if r["hedge_wins"] < 1:
            failures.append(
                "hedge leg did not exercise speculation "
                f"(hedges={r['hedges']}, hedge_wins={r['hedge_wins']})"
            )
    if failures and not args.no_check:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    if failures:
        print("targets missed (reported only)")
    else:
        print("remote execution targets met (bitwise identity + failover)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
