"""Benchmarks regenerating Fig. 10 — strong scaling (a) and memory (b).

The scaling half benchmarks the embedding kernel at 1 and 2 threads on the
Orkut twin (the full 1–32 modelled curve is produced by the experiment
module); the memory half benchmarks the byte-accounting sweep and the
measured-allocation comparison of fused vs unfused for the FR pattern.
"""

from __future__ import annotations

import pytest

from repro.baselines import unfused_fusedmm
from repro.core import sigmoid_embedding_kernel
from repro.core.specialized import fr_layout_kernel
from repro.experiments import fig10_scaling_memory
from repro.perf import measure_peak_allocation

from _bench_utils import features_for

THREADS = [1, 2]


@pytest.mark.parametrize("threads", THREADS)
def bench_fig10a_scaling_orkut(benchmark, orkut_graph, threads):
    """Embedding kernel (d=256) on the Orkut twin at different thread counts."""
    A = orkut_graph.adjacency
    X = features_for(orkut_graph, 256)
    benchmark.group = "fig10a-orkut-embedding-d256"
    benchmark(lambda: sigmoid_embedding_kernel(A, X, X, num_threads=threads))


def bench_fig10b_memory_model_sweep(benchmark, ogbprot_graph):
    """Analytical fused-vs-unfused memory sweep of Fig. 10(b)."""
    benchmark.group = "fig10b-memory"
    rows = benchmark.pedantic(
        lambda: fig10_scaling_memory.run_memory(scale=0.5, dims=(16, 64, 256)),
        rounds=1,
        iterations=1,
    )
    # The property under test: the unfused/fused ratio grows with d.
    ratios = [row["ratio"] for row in rows]
    assert ratios == sorted(ratios)


@pytest.mark.parametrize("kernel_name", ["fused", "unfused"])
def bench_fig10b_measured_allocation(benchmark, youtube_graph, kernel_name):
    """Measured peak allocation of the FR pattern (d=64), fused vs unfused —
    the paper's Fig. 10(b) contrast on this substrate."""
    A = youtube_graph.adjacency
    X = features_for(youtube_graph, 64)
    if kernel_name == "fused":
        fn = lambda: fr_layout_kernel(A, X, X)  # noqa: E731
    else:
        fn = lambda: unfused_fusedmm(A, X, X, pattern="fr_layout")  # noqa: E731
    benchmark.group = "fig10b-measured-allocation"
    stats = benchmark.pedantic(
        lambda: measure_peak_allocation(fn), rounds=1, iterations=1
    )
    benchmark.extra_info["peak_mb"] = round(stats["peak_mb"], 2)
