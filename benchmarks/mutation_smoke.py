"""Mutation smoke: live edge updates against a real ``repro serve`` process.

Drives the actual deployment artifact — ``python -m repro serve`` as a
subprocess with a 2-process worker pool — with concurrent edge-update
writers on *both* transports (HTTP ``POST /v1/graph/<name>/edges`` and
wire ``OP_MUTATE``) racing concurrent kernel/embed readers.  Asserts:

* **version monotonicity** — the versions returned across all writers
  are exactly ``1..K``, no duplicates, no gaps (mutations serialize,
  none lost, none applied twice);
* **read consistency** — every concurrent kernel read is bitwise equal
  to the reference result of *some* graph version in its admission
  window (reads pin a version at admission; a torn or blended read
  matches no version);
* **bitwise-vs-rebuild** — after the churn, the served graph's kernel
  result is bitwise identical to the same kernel on a CSR rebuilt from
  scratch out of the final edge set (replayed locally in version
  order), both through the server and against a local reference;
* ``/statz`` reports the per-graph memory/version accounting, and
  SIGTERM still drains cleanly after the churn.

Run standalone::

    PYTHONPATH=src python benchmarks/mutation_smoke.py

Used by the CI ``mutation-smoke`` job.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.core.fused import fusedmm  # noqa: E402
from repro.graphs.datasets import load_dataset  # noqa: E402
from repro.graphs.features import random_features  # noqa: E402
from repro.serve import ServeClient, WireClient, wait_until_healthy  # noqa: E402
from repro.sparse import CSRMatrix  # noqa: E402
from repro.sparse.coo import COOMatrix  # noqa: E402

HOST = "127.0.0.1"
PORT = 8767
WIRE_PORT = 8768
MODEL = "cora-force2vec"
SCALE = 0.1
BATCHES_PER_WRITER = 6
READERS = 3
READS_PER_READER = 8


def _edges_csr(edges: dict) -> CSRMatrix:
    """Canonical CSR from a ``{(u, v): w}`` edge dict (the rebuild path)."""
    n = max((max(u, v) for u, v in edges), default=0) + 1
    rows = np.array([u for u, _ in edges], dtype=np.int64)
    cols = np.array([v for _, v in edges], dtype=np.int64)
    vals = np.array([edges[k] for k in edges], dtype=np.float32)
    return CSRMatrix.from_coo(COOMatrix(n, n, rows, cols, vals))


def main() -> int:
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            HOST,
            "--port",
            str(PORT),
            "--wire-port",
            str(WIRE_PORT),
            "--processes",
            "2",
            "--models",
            "cora",
            "--scale",
            str(SCALE),
            "--max-batch",
            "16",
        ],
        cwd=_ROOT,
        env={**__import__("os").environ, "PYTHONPATH": str(_SRC)},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    failures: list[str] = []
    try:
        if not wait_until_healthy(HOST, PORT, timeout=120.0):
            print(proc.stdout.read() if proc.stdout else "")
            print("FAIL: server never became healthy", file=sys.stderr)
            return 1
        print("healthz: ok")

        # The synthetic datasets are deterministic, so the local twin of
        # the served base graph is byte-identical to the server's.
        base = load_dataset("cora", scale=SCALE).adjacency
        n = base.nrows
        X = random_features(n, 8, seed=3)
        base_rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(base.indptr))
        base_edges = {
            (int(u), int(v)): np.float32(w)
            for u, v, w in zip(base_rows, base.indices, base.data)
        }

        lock = threading.Lock()
        applied: list[tuple[int, np.ndarray, np.ndarray]] = []
        latest = [0]  # max version any writer has seen acknowledged
        reads: list[tuple[int, np.ndarray]] = []  # (version floor, Z)

        def _writer(wid: int, use_wire: bool) -> None:
            rng = np.random.default_rng(100 + wid)
            try:
                client = (
                    WireClient(HOST, WIRE_PORT, timeout=60.0)
                    if use_wire
                    else ServeClient(HOST, PORT, timeout=60.0)
                )
                with client:
                    for _ in range(BATCHES_PER_WRITER):
                        ins = np.stack(
                            [
                                rng.integers(0, n, size=5).astype(np.float64),
                                rng.integers(0, n, size=5).astype(np.float64),
                                rng.integers(1, 8, size=5) / np.float64(4.0),
                            ],
                            axis=1,
                        )
                        pick = rng.choice(base_rows.size, size=3, replace=False)
                        dele = np.stack(
                            [
                                base_rows[pick].astype(np.float64),
                                base.indices[pick].astype(np.float64),
                            ],
                            axis=1,
                        )
                        doc = client.mutate(MODEL, insert=ins, delete=dele)
                        version = int(doc["version"])
                        with lock:
                            applied.append((version, ins, dele))
                            latest[0] = max(latest[0], version)
                        time.sleep(0.01)
            except Exception as exc:  # noqa: BLE001
                failures.append(f"writer {wid}: {type(exc).__name__}: {exc}")

        def _reader(rid: int) -> None:
            try:
                with ServeClient(HOST, PORT, timeout=60.0) as client:
                    for _ in range(READS_PER_READER):
                        with lock:
                            floor = latest[0]
                        Z = client.kernel(model=MODEL, x=X, pattern="gcn")
                        with lock:
                            reads.append((floor, Z))
                        rows = client.embed(MODEL, [0, 1, 2])
                        if rows.shape != (3, 32):
                            failures.append(
                                f"reader {rid}: embed shape {rows.shape}"
                            )
            except Exception as exc:  # noqa: BLE001
                failures.append(f"reader {rid}: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=_writer, args=(0, False)),
            threading.Thread(target=_writer, args=(1, True)),
        ] + [threading.Thread(target=_reader, args=(r,)) for r in range(READERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # --- version monotonicity: exactly 1..K, no gaps, no repeats --- #
        total = 2 * BATCHES_PER_WRITER
        versions = sorted(v for v, _, _ in applied)
        if versions != list(range(1, total + 1)):
            failures.append(
                f"versions not a gapless monotone sequence: {versions}"
            )
        print(f"writers: {total} batches acknowledged, versions 1..{total}")

        # --- replay the acknowledged batches in version order to get the
        # reference matrix (and kernel result) of every version --- #
        refs: list[np.ndarray] = [
            fusedmm(base, X, X, pattern="gcn", num_threads=1)
        ]
        edges = dict(base_edges)
        final_A = base
        for _, ins, dele in sorted(applied, key=lambda t: t[0]):
            for u, v in dele:
                edges.pop((int(u), int(v)), None)
            for u, v, w in ins:
                edges[(int(u), int(v))] = np.float32(w)
            final_A = _edges_csr(edges)
            refs.append(fusedmm(final_A, X, X, pattern="gcn", num_threads=1))

        # --- read consistency: every read matches some version >= its
        # admission floor (a torn read matches no version at all) --- #
        torn = 0
        for floor, Z in reads:
            if not any(
                np.array_equal(Z, refs[v]) for v in range(floor, total + 1)
            ):
                torn += 1
        if torn:
            failures.append(
                f"{torn}/{len(reads)} concurrent reads matched no graph "
                "version in their window (torn or blended result)"
            )
        print(f"readers: {len(reads)} kernel reads, all version-consistent")

        # --- final state: served graph bitwise equal to a from-scratch
        # rebuild of the same edge set, via server and local reference --- #
        with ServeClient(HOST, PORT, timeout=60.0) as client:
            Z_model = client.kernel(model=MODEL, x=X, pattern="gcn")
            Z_inline = client.kernel(graph=final_A, X=X, pattern="gcn", binary=True)
            stats = client.statz()
        Z_ref = refs[total]
        if not np.array_equal(Z_model, Z_ref):
            failures.append("final model kernel differs from rebuilt reference")
        if not np.array_equal(Z_inline, Z_ref):
            failures.append("inline rebuilt-graph kernel differs from reference")
        print("final state: bitwise equal to from-scratch rebuild")

        graphs = (stats.get("runtime") or {}).get("graphs") or {}
        mem = graphs.get(MODEL) or {}
        if int(mem.get("version", -1)) != total:
            failures.append(f"statz graph version {mem.get('version')} != {total}")
        for key in ("base_bytes", "delta_bytes", "plans", "total_bytes"):
            if key not in mem:
                failures.append(f"statz graph accounting missing {key!r}")
        print(
            f"statz: version={mem.get('version')} "
            f"base_bytes={mem.get('base_bytes')} "
            f"delta_bytes={mem.get('delta_bytes')} "
            f"total_bytes={mem.get('total_bytes')}"
        )
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        try:
            out, _ = proc.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            out, _ = proc.communicate()
            failures.append("server did not drain within 60s of SIGTERM")

    if "drained, bye" not in (out or ""):
        failures.append(f"no graceful-drain goodbye in server output:\n{out}")
    if proc.returncode not in (0, -signal.SIGTERM):
        failures.append(f"server exited with {proc.returncode}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print(
        "mutation smoke: versions monotone, reads consistent, "
        "final state bitwise vs rebuild, drain clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
