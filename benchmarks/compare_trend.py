"""Compare BENCH_*.json records across commits and gate on regressions.

Thin script wrapper over :mod:`repro.bench.trend` (also available as
``python -m repro bench compare``).  Pass two files, or two directories of
``BENCH_*.json`` records (matched by filename)::

    PYTHONPATH=src python benchmarks/compare_trend.py benchmarks/baselines .
    PYTHONPATH=src python benchmarks/compare_trend.py old/BENCH_runtime.json BENCH_runtime.json

Exits non-zero when any tracked metric regressed by more than the
threshold (default 15%); ``--no-fail`` reports only.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.trend import (  # noqa: E402
    DEFAULT_MIN_SECONDS,
    DEFAULT_THRESHOLD,
    compare_paths,
    render_report,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json file or directory")
    parser.add_argument("current", help="current BENCH_*.json file or directory")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional degradation before a metric counts as regressed",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="ignore wall-clock metrics whose baseline is below this (noise)",
    )
    parser.add_argument(
        "--no-fail", action="store_true", help="report only; always exit 0"
    )
    args = parser.parse_args(argv)

    report = compare_paths(
        args.baseline,
        args.current,
        threshold=args.threshold,
        min_seconds=args.min_seconds,
    )
    return render_report(report, threshold=args.threshold, no_fail=args.no_fail)


if __name__ == "__main__":
    sys.exit(main())
