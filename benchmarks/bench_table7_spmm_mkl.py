"""Benchmarks regenerating Table VII — FusedMM SpMM vs the vendor SpMM.

Each group pairs the SpMM specialisation of FusedMM with the vendor
(SciPy-compiled) SpMM on the same graph and dimension; the table's claim is
that the two stay within a small factor of each other.
"""

from __future__ import annotations

import pytest

from repro.baselines import InspectorExecutorSpMM, scipy_available
from repro.core import spmm_kernel
from repro.graphs import random_features

DIMS = [64, 128, 256]


@pytest.mark.parametrize("d", DIMS)
def bench_table7_fusedmm_spmm_youtube(benchmark, youtube_graph, d):
    """FusedMM SpMM specialisation on the Youtube twin."""
    A = youtube_graph.adjacency
    Y = random_features(A.ncols, d, seed=1)
    benchmark.group = f"table7-youtube-d{d}"
    benchmark(lambda: spmm_kernel(A, Y))


@pytest.mark.parametrize("d", DIMS)
def bench_table7_vendor_spmm_youtube(benchmark, youtube_graph, d):
    """Vendor (SciPy-compiled) SpMM on the Youtube twin."""
    if not scipy_available():  # pragma: no cover - scipy present in CI
        pytest.skip("SciPy unavailable")
    A = youtube_graph.adjacency
    Y = random_features(A.ncols, d, seed=1)
    handle = InspectorExecutorSpMM(A)
    benchmark.group = f"table7-youtube-d{d}"
    benchmark(lambda: handle(Y))


@pytest.mark.parametrize("d", [128])
def bench_table7_fusedmm_spmm_ogbprot(benchmark, ogbprot_graph, d):
    """FusedMM SpMM specialisation on the dense Ogbprot twin."""
    A = ogbprot_graph.adjacency
    Y = random_features(A.ncols, d, seed=1)
    benchmark.group = f"table7-ogbprot-d{d}"
    benchmark(lambda: spmm_kernel(A, Y))


@pytest.mark.parametrize("d", [128])
def bench_table7_vendor_spmm_ogbprot(benchmark, ogbprot_graph, d):
    """Vendor (SciPy-compiled) SpMM on the dense Ogbprot twin."""
    if not scipy_available():  # pragma: no cover
        pytest.skip("SciPy unavailable")
    A = ogbprot_graph.adjacency
    Y = random_features(A.ncols, d, seed=1)
    handle = InspectorExecutorSpMM(A)
    benchmark.group = f"table7-ogbprot-d{d}"
    benchmark(lambda: handle(Y))
