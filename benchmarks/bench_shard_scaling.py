"""Benchmark: shard scaling of the multi-process execution tier.

Runs :func:`repro.bench.bench_shard_scaling` — the same kernel on the same
graph through 1, 2 and 4 worker shards — verifying bitwise equality against
sequential ``fusedmm`` and reporting throughput per shard count.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py [--quick] [--json PATH]

or via the CLI: ``python -m repro bench shard``.  On multi-core hosts the
process exits non-zero unless some multi-shard row beats the 1-shard
baseline (``--no-check`` reports only; single-core hosts, where no
speedup is physically possible, always report only).  ``--json`` writes a
machine-readable ``BENCH_shard.json`` via :mod:`repro.bench.record`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.record import record_benchmark  # noqa: E402
from repro.bench.shard_bench import bench_shard_scaling  # noqa: E402
from repro.bench.tables import format_table  # noqa: E402
from repro.core.parallel import available_threads  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4], help="shard counts"
    )
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--avg-degree", type=int, default=16)
    parser.add_argument("--dim", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write BENCH_shard.json-style results to PATH",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="report only; do not fail on missed targets",
    )
    args = parser.parse_args(argv)

    nodes = args.nodes or (4_000 if args.quick else 20_000)
    dim = args.dim or (32 if args.quick else 64)
    repeats = args.repeats or (2 if args.quick else 3)

    rows = bench_shard_scaling(
        num_nodes=nodes,
        avg_degree=args.avg_degree,
        dim=dim,
        repeats=repeats,
        shard_counts=args.shards,
    )
    print(format_table(rows, title="Shard scaling (multi-process tier)"))

    if args.json:
        path = record_benchmark(
            "shard",
            rows,
            path=args.json,
            extra={"config": {"nodes": nodes, "dim": dim, "repeats": repeats}},
        )
        print(f"wrote {path}")

    failures = []
    for r in rows:
        if not r["identical"]:
            failures.append(
                f"shard count {r['shards']}: result not bitwise identical"
            )
    multi_core = available_threads() > 1
    multi_rows = [r for r in rows if r["shards"] > 1]
    if multi_core and multi_rows:
        best = max(r["speedup_vs_1shard"] for r in multi_rows)
        if best <= 1.0:
            failures.append(
                f"no multi-shard speedup (best {best:.2f}x <= 1.0x vs 1 shard)"
            )
    if failures and not args.no_check:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    if failures:
        print("targets missed (reported only)")
    elif not multi_core:
        print("single-core host: correctness verified, speedup not applicable")
    else:
        print("shard scaling targets met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
