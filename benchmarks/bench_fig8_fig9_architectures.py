"""Benchmarks regenerating Figs. 8 and 9 — cross-architecture comparisons.

The measurable part on this host is the DGL-vs-FusedMM comparison per
graph/application at d=128 (the per-architecture bars of the figures come
from the calibrated machine model, which is pure arithmetic and is
exercised by the test suite and the experiment modules).  Each group below
therefore pairs the two kernels on one of the figures' graphs.
"""

from __future__ import annotations

import pytest

from repro.baselines import unfused_fusedmm
from repro.core import fusedmm
from repro.experiments import fig8_arm, fig9_amd
from repro.graphs import load_dataset

from _bench_utils import features_for

GRAPHS = ["harvard", "flickr", "amazon"]
APPS = [("fr", "fr_layout"), ("embedding", "sigmoid_embedding")]


@pytest.fixture(scope="module", params=GRAPHS)
def arch_graph(request, bench_scale):
    """One of the Fig. 8/9 graphs at benchmark scale."""
    return load_dataset(request.param, scale=bench_scale)


@pytest.mark.parametrize("app,pattern", APPS, ids=[a for a, _ in APPS])
def bench_fig8_fig9_dgl(benchmark, arch_graph, app, pattern):
    """Unfused baseline on a Fig. 8/9 graph (d=128)."""
    A = arch_graph.adjacency
    X = features_for(arch_graph, 128)
    benchmark.group = f"fig8-9-{arch_graph.name}-{app}-d128"
    benchmark(lambda: unfused_fusedmm(A, X, X, pattern=pattern))


@pytest.mark.parametrize("app,pattern", APPS, ids=[a for a, _ in APPS])
def bench_fig8_fig9_fusedmm(benchmark, arch_graph, app, pattern):
    """Optimized FusedMM on a Fig. 8/9 graph (d=128)."""
    A = arch_graph.adjacency
    X = features_for(arch_graph, 128)
    benchmark.group = f"fig8-9-{arch_graph.name}-{app}-d128"
    benchmark(lambda: fusedmm(A, X, X, pattern=pattern, backend="auto"))


def bench_fig8_machine_model(benchmark, bench_scale):
    """The ARM machine-model prediction pass (one graph, both apps)."""
    benchmark.group = "fig8-9-machine-model"
    rows = benchmark.pedantic(
        lambda: fig8_arm.run(graphs=("amazon",), d=64, scale=bench_scale, repeats=1),
        rounds=1,
        iterations=1,
    )
    assert all(row["model_speedup"] > 0 for row in rows)


def bench_fig9_machine_model(benchmark, bench_scale):
    """The AMD machine-model prediction pass (one graph, both apps)."""
    benchmark.group = "fig8-9-machine-model"
    rows = benchmark.pedantic(
        lambda: fig9_amd.run(graphs=("amazon",), d=64, scale=bench_scale, repeats=1),
        rounds=1,
        iterations=1,
    )
    assert all(row["model_speedup"] > 0 for row in rows)
