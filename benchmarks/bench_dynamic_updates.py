"""Benchmark: dynamic-graph updates vs full rebuild, with identity gates.

Runs :func:`repro.bench.dynamic_bench.bench_dynamic_updates` — small
edge batches applied to a live :class:`DynamicGraph` (overlay splice +
in-place plan refresh + dirty-panel rebuild) timed against rebuilding
the CSR from the full edge set and replanning cold — plus bitwise
identity of the mutated graph across shard counts on the multi-process
tier and on real ``python -m repro worker`` hosts, where the second
sharded run after a mutation must re-ship only the dirty rows
(``delta_ships >= 1``).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_dynamic_updates.py [--quick] [--json PATH]

or via the CLI: ``python -m repro bench dynamic``.  The process exits
non-zero unless every leg is bitwise identical, the incremental update
is at least 5x cheaper than rebuild+replan, and the remote leg actually
shipped a delta (``--no-check`` reports only).  ``--json`` writes a
machine-readable ``BENCH_dynamic.json`` via :mod:`repro.bench.record`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.dynamic_bench import bench_dynamic_updates  # noqa: E402
from repro.bench.record import record_benchmark  # noqa: E402
from repro.bench.tables import format_table  # noqa: E402

#: The incremental path must beat rebuild+replan by at least this factor
#: at <=1% nnz churn (the ROADMAP's dynamic-graph acceptance bar).
SPEEDUP_TARGET = 5.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--avg-degree", type=int, default=16)
    parser.add_argument("--dim", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument(
        "--churn",
        type=float,
        default=0.002,
        help="edge churn per round as a fraction of nnz (the ROADMAP gate "
        "covers any small delta <= 1%%)",
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4], help="shard counts"
    )
    parser.add_argument(
        "--no-remote",
        action="store_true",
        help="skip the remote leg (worker hosts + dirty-shard delta ship)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write BENCH_dynamic.json-style results to PATH",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="report only; do not fail on missed targets",
    )
    args = parser.parse_args(argv)

    nodes = args.nodes or (4_000 if args.quick else 20_000)
    dim = args.dim or (32 if args.quick else 64)
    rounds = args.rounds or (3 if args.quick else 5)

    rows = bench_dynamic_updates(
        num_nodes=nodes,
        avg_degree=args.avg_degree,
        dim=dim,
        rounds=rounds,
        churn=args.churn,
        shard_counts=args.shards,
        remote_leg=not args.no_remote,
    )
    print(format_table(rows, title="Dynamic graphs (incremental invalidation)"))

    if args.json:
        path = record_benchmark(
            "dynamic",
            rows,
            path=args.json,
            extra={
                "config": {
                    "nodes": nodes,
                    "dim": dim,
                    "rounds": rounds,
                    "churn": args.churn,
                }
            },
        )
        print(f"wrote {path}")

    failures = []
    for r in rows:
        if not r["identical"]:
            failures.append(
                f"{r['leg']} leg: result not bitwise identical to rebuilt CSR"
            )
    # The speedup gate is wall-clock and only meaningful at full size;
    # --quick (CI smoke on shared runners) keeps the identity and
    # delta-ship gates hard but reports the ratio without failing on it.
    for r in (r for r in rows if r["leg"] == "update_vs_rebuild" and not args.quick):
        if r["speedup_vs_rebuild"] < SPEEDUP_TARGET:
            failures.append(
                f"incremental update only {r['speedup_vs_rebuild']:.1f}x faster "
                f"than rebuild+replan (target >= {SPEEDUP_TARGET:.0f}x)"
            )
    for r in (r for r in rows if r["leg"] == "remote_delta"):
        if r["delta_ships"] < 1:
            failures.append(
                "remote leg never shipped a delta "
                f"(delta_ships={r['delta_ships']}, "
                f"fallbacks={r['delta_fallbacks']})"
            )
    if failures and not args.no_check:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    if failures:
        print("targets missed (reported only)")
    else:
        print(
            "dynamic-graph targets met (bitwise identity + "
            f">={SPEEDUP_TARGET:.0f}x incremental update + delta ship)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
