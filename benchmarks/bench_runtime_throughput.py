"""Microbenchmark: batched kernel runtime vs per-call planning.

Measures the two throughput claims of the runtime subsystem:

1. plan-cached repeated calls on a fixed 10k-node graph are ≥ 2× faster
   than cold calls that re-resolve, re-partition and re-tune every time;
2. ``run_batch`` of 32 small requests (packed block-diagonally) beats 32
   sequential ``fusedmm`` calls — bitwise identically.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_runtime_throughput.py [--quick]

or via the CLI: ``python -m repro bench runtime``.  The process exits
non-zero if either speedup target is missed, so CI can use it as a smoke
gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.record import record_benchmark  # noqa: E402
from repro.bench.runtime_bench import run_throughput_benchmark  # noqa: E402
from repro.bench.tables import format_table  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument("--threads", type=int, default=1)
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write BENCH_runtime.json-style results to PATH",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="report only; do not fail on missed speedup targets",
    )
    args = parser.parse_args(argv)

    rows = run_throughput_benchmark(quick=args.quick, num_threads=args.threads)
    print(format_table(rows, title="Kernel-runtime throughput"))

    if args.json:
        path = record_benchmark(
            "runtime",
            rows,
            path=args.json,
            extra={"config": {"quick": args.quick, "threads": args.threads}},
        )
        print(f"wrote {path}")

    plan_rows = [r for r in rows if r["benchmark"] == "plan_cache"]
    batch_rows = [r for r in rows if r["benchmark"] == "batch_packing"]
    failures = []
    # The 2× plan-cache target is part of the full-size benchmark contract;
    # --quick runs use graphs small enough that we only require a win.
    plan_target = 1.0 if args.quick else 2.0
    for r in plan_rows:
        if r["speedup"] < plan_target:
            failures.append(
                f"plan cache speedup {r['speedup']:.2f}x < {plan_target:.1f}x ({r['graph']})"
            )
    for r in batch_rows:
        if r["speedup"] < 1.0:
            failures.append(
                f"batch packing speedup {r['speedup']:.2f}x < 1.0x ({r['graph']})"
            )
    if failures and not args.no_check:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("runtime throughput targets met" if not failures else "targets missed (reported only)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
