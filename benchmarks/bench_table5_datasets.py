"""Benchmark regenerating Table V — dataset generation cost and statistics.

Table V itself is a statistics table; the benchmark here times the synthetic
dataset generation (the substitution for downloading the original graphs)
and asserts the regenerated statistics are available.  The printable table
comes from ``python -m repro.experiments.table5_datasets``.
"""

from __future__ import annotations

import pytest

from repro.experiments import table5_datasets
from repro.graphs import load_dataset


@pytest.mark.parametrize("name", ["cora", "pubmed", "youtube"])
def bench_table5_dataset_generation(benchmark, name):
    """Time the generation of one synthetic dataset twin."""
    benchmark.group = "table5-dataset-generation"
    graph = benchmark(lambda: load_dataset(name, scale=0.5))
    assert graph.num_vertices > 0


def bench_table5_full_registry(benchmark):
    """Time the regeneration of the full Table V statistics."""
    benchmark.group = "table5-dataset-generation"
    results = benchmark.pedantic(
        lambda: table5_datasets.run(scale=0.25), rounds=1, iterations=1
    )
    assert len(results["measured"]) == len(results["paper"])
