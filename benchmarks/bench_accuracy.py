"""Benchmark for the Section V.D accuracy experiment.

Times the full train-and-evaluate pipeline (Force2Vec + logistic-regression
F1) on the Cora twin with the fused backend, and asserts the fused and
unfused backends produce embeddings of the same quality — the actual claim
of Section V.D.  The full table is printed by
``python -m repro.experiments.accuracy_f1``.
"""

from __future__ import annotations

from repro.experiments import accuracy_f1


def bench_accuracy_cora_fused_pipeline(benchmark):
    """End-to-end accuracy pipeline (short training budget) on Cora."""
    benchmark.group = "accuracy-cora"
    rows = benchmark.pedantic(
        lambda: accuracy_f1.run(graphs=("cora",), backends=("fused",), epochs=5, dim=32),
        rounds=1,
        iterations=1,
    )
    assert rows and 0.0 <= rows[0]["f1_micro"] <= 1.0


def bench_accuracy_cora_backend_parity(benchmark):
    """Fused and unfused backends reach the same F1 from the same seed."""
    benchmark.group = "accuracy-cora"

    def run_both():
        return accuracy_f1.run(
            graphs=("cora",), backends=("fused", "unfused"), epochs=3, dim=32
        )

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    by_backend = {row["backend"]: row["f1_micro"] for row in rows}
    assert abs(by_backend["fused"] - by_backend["unfused"]) < 0.05
