"""Micro-benchmark: vectorized vs loop ``cache_block_partitions``.

The locality tier tiles (permuted) CSR matrices into cache-sized row
panels.  The original implementation walked rows in a Python loop —
fine at 50k nodes, seconds at millions.  This benchmark times the
chunk-vectorized path against the loop reference on power-law graphs
and **asserts the two produce identical panel boundaries** (the
equivalence is also property-tested in ``tests/test_reorder.py``).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_cache_block.py [--quick] [--json PATH]

Identity is always checked; the speedup target (vectorized >= 1.2x loop
at >= 100k nodes) is informational under ``--quick``/``--no-check``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.record import record_benchmark  # noqa: E402
from repro.bench.tables import format_table  # noqa: E402
from repro.graphs import rmat  # noqa: E402
from repro.sparse.reorder import cache_block_partitions, reorder_matrix  # noqa: E402

DEFAULT_MIN_SPEEDUP = 1.2
GATE_MIN_NODES = 100_000


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--avg-degree", type=int, default=8)
    parser.add_argument("--dim", type=int, default=128)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--min-speedup", type=float, default=DEFAULT_MIN_SPEEDUP)
    parser.add_argument("--json", metavar="PATH", default=None)
    parser.add_argument("--no-check", action="store_true")
    args = parser.parse_args(argv)

    nodes = args.nodes or (20_000 if args.quick else 400_000)
    repeats = args.repeats or (1 if args.quick else 3)

    rows = []
    failures = []
    A = rmat(nodes, nodes * args.avg_degree, seed=1)
    for label, M in [("natural", A), ("hub", reorder_matrix(A, "hub").matrix)]:
        p_loop = cache_block_partitions(M, dim=args.dim, impl="loop")
        p_vec = cache_block_partitions(M, dim=args.dim, impl="vectorized")
        identical = p_loop == p_vec
        if not identical:
            failures.append(f"{label}: vectorized boundaries differ from the loop")
        t_loop = _time(
            lambda: cache_block_partitions(M, dim=args.dim, impl="loop"), repeats
        )
        t_vec = _time(
            lambda: cache_block_partitions(M, dim=args.dim, impl="vectorized"),
            repeats,
        )
        rows.append(
            {
                "ordering": label,
                "nodes": M.nrows,
                "nnz": M.nnz,
                "dim": args.dim,
                "panels": len(p_vec),
                "loop_seconds": round(t_loop, 4),
                "vectorized_seconds": round(t_vec, 4),
                "speedup": round(t_loop / t_vec, 3) if t_vec > 0 else float("inf"),
                "identical": identical,
            }
        )
    print(format_table(rows, title="cache_block_partitions: vectorized vs loop"))

    if args.json:
        path = record_benchmark(
            "cache_block",
            rows,
            path=args.json,
            extra={"config": {"nodes": nodes, "dim": args.dim}},
        )
        print(f"wrote {path}")

    gate_applies = not args.quick and nodes >= GATE_MIN_NODES
    if gate_applies:
        worst = min(rows, key=lambda r: r["speedup"])
        if worst["speedup"] < args.min_speedup:
            failures.append(
                f"vectorized speedup {worst['speedup']:.2f}x ({worst['ordering']}) "
                f"< required {args.min_speedup:.1f}x"
            )
    if failures and not args.no_check:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    if failures:
        print("targets missed (reported only)")
    elif not gate_applies:
        print("quick/tiny run: identity verified, speedup gate skipped")
    else:
        print("cache-block vectorization targets met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
