"""Benchmarks for the design-choice ablations of DESIGN.md.

These are not paper tables; they quantify the contribution of each
optimization level (backend ladder), the sensitivity to the edge-block size
(the register/tile-blocking analogue) and the cost of autotuning itself.
"""

from __future__ import annotations

import pytest

from repro.core import (
    autotune,
    compile_kernel,
    fusedmm_edgeblocked,
    fusedmm_rowblocked,
    get_pattern,
    sigmoid_embedding_kernel,
)
from repro.core.autotune import clear_tuning_cache

from _bench_utils import features_for

BLOCK_SIZES = [1024, 8192, 65536]


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def bench_ablation_block_size(benchmark, youtube_graph, block_size):
    """Edge-blocked kernel across block sizes (embedding pattern, d=128)."""
    A = youtube_graph.adjacency
    X = features_for(youtube_graph, 128)
    benchmark.group = "ablation-block-size-youtube-d128"
    benchmark(
        lambda: fusedmm_edgeblocked(
            A, X, X, pattern="sigmoid_embedding", block_size=block_size
        )
    )


def bench_ablation_row_blocked(benchmark, ogbprot_graph):
    """Row-blocked kernel on the dense graph (its favourable regime)."""
    A = ogbprot_graph.adjacency
    X = features_for(ogbprot_graph, 128)
    benchmark.group = "ablation-strategy-ogbprot-d128"
    benchmark(lambda: fusedmm_rowblocked(A, X, X, pattern="sigmoid_embedding"))


def bench_ablation_edge_blocked_dense(benchmark, ogbprot_graph):
    """Edge-blocked kernel on the dense graph (for the strategy crossover)."""
    A = ogbprot_graph.adjacency
    X = features_for(ogbprot_graph, 128)
    benchmark.group = "ablation-strategy-ogbprot-d128"
    benchmark(lambda: fusedmm_edgeblocked(A, X, X, pattern="sigmoid_embedding"))


def bench_ablation_specialized_kernel(benchmark, ogbprot_graph):
    """Hand-specialized sigmoid-embedding kernel (top of the backend ladder)."""
    A = ogbprot_graph.adjacency
    X = features_for(ogbprot_graph, 128)
    benchmark.group = "ablation-strategy-ogbprot-d128"
    benchmark(lambda: sigmoid_embedding_kernel(A, X, X))


def bench_ablation_generated_kernel(benchmark, ogbprot_graph):
    """Code-generated kernel (compile once, then run)."""
    A = ogbprot_graph.adjacency
    X = features_for(ogbprot_graph, 128)
    kernel = compile_kernel(get_pattern("sigmoid_embedding").resolved())
    benchmark.group = "ablation-strategy-ogbprot-d128"
    benchmark(lambda: kernel(A, X, X))


def bench_ablation_autotune_cost(benchmark, youtube_graph):
    """One full autotuning sweep (strategy + block sizes) — the cost a user
    pays once per (pattern, d, graph-size) combination."""
    A = youtube_graph.adjacency
    X = features_for(youtube_graph, 64)
    benchmark.group = "ablation-autotune"

    def tune():
        clear_tuning_cache()
        return autotune(A, X, X, pattern="sigmoid_embedding", repeats=1)

    result = benchmark.pedantic(tune, rounds=1, iterations=1)
    assert result.block_size > 0
