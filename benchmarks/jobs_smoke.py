"""Jobs smoke: durable training jobs surviving a real server restart.

Drives the actual deployment artifact: ``python -m repro serve`` with a
``--job-dir``, killed with SIGTERM *while a training job is mid-epoch*,
then restarted on the same job directory.  Asserts:

* ``POST /v1/train`` admits the job (202) and ``GET /v1/jobs/<id>``
  streams per-epoch progress;
* SIGTERM mid-training drains gracefully: the in-flight job is
  checkpointed and persisted, the process exits with the goodbye line;
* the restarted server recovers the job from ``job.json`` + checkpoint
  and finishes the remaining epochs (``resumed_from > 0``);
* the final output is **bitwise identical** to an uninterrupted local
  reference run of the same spec — the durability contract end to end;
* ``/statz`` jobs counters satisfy the accounting invariant
  ``submitted == completed + failed + cancelled`` once the job is done.

Run standalone::

    PYTHONPATH=src python benchmarks/jobs_smoke.py

Used by the CI ``jobs-smoke`` job.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402

from repro.jobs import JobSpec, run_training  # noqa: E402
from repro.serve import ServeClient, wait_until_healthy  # noqa: E402

HOST = "127.0.0.1"
PORT = 8767

#: Long enough that SIGTERM reliably lands mid-training (~20 epochs at
#: tens of ms each), short enough to keep the smoke under a minute.
SPEC = dict(
    app="force2vec",
    dataset="harvard",
    scale=1.0,
    dim=16,
    epochs=20,
    seed=3,
    checkpoint_every=1,
)


def _spawn(job_dir: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            HOST,
            "--port",
            str(PORT),
            "--models",
            "cora",
            "--scale",
            "0.05",
            "--job-dir",
            job_dir,
        ],
        cwd=_ROOT,
        env={**os.environ, "PYTHONPATH": str(_SRC)},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _drain(proc: subprocess.Popen, failures: list) -> str:
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    try:
        out, _ = proc.communicate(timeout=120)
    except subprocess.TimeoutExpired:
        proc.kill()
        out, _ = proc.communicate()
        failures.append("server did not drain within 120s of SIGTERM")
    if "drained, bye" not in (out or ""):
        failures.append(f"no graceful-drain goodbye in server output:\n{out}")
    return out or ""


def main() -> int:
    failures: list = []
    job_dir = tempfile.mkdtemp(prefix="repro-jobs-smoke-")

    proc = _spawn(job_dir)
    try:
        if not wait_until_healthy(HOST, PORT, timeout=120.0):
            print(proc.stdout.read() if proc.stdout else "")
            print("FAIL: server never became healthy", file=sys.stderr)
            return 1
        print("healthz: ok")

        with ServeClient(HOST, PORT, timeout=30.0) as client:
            doc = client.train(**SPEC)
            job_id = doc["job_id"]
            print(f"submitted {job_id} ({doc['state']})")

            # Wait until training is demonstrably under way, then kill.
            deadline = time.monotonic() + 60.0
            epochs_done = 0
            while time.monotonic() < deadline:
                status = client.job(job_id)
                epochs_done = status.get("epochs_done", 0)
                if epochs_done >= 2:
                    break
                if status["state"] in ("completed", "failed", "cancelled"):
                    failures.append(
                        f"job reached {status['state']} before the kill "
                        f"(epochs_done={epochs_done}) - workload too small"
                    )
                    break
                time.sleep(0.05)
            else:
                failures.append("job never reached epoch 2 within 60s")
        print(f"SIGTERM at epochs_done={epochs_done}")
        _drain(proc, failures)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1

    # ------------------------------------------------------------------ #
    # Restart on the same job dir: the job must resume and finish.
    # ------------------------------------------------------------------ #
    proc = _spawn(job_dir)
    try:
        if not wait_until_healthy(HOST, PORT, timeout=120.0):
            print(proc.stdout.read() if proc.stdout else "")
            print("FAIL: restarted server never became healthy", file=sys.stderr)
            return 1

        with ServeClient(HOST, PORT, timeout=30.0) as client:
            deadline = time.monotonic() + 120.0
            status = {}
            while time.monotonic() < deadline:
                status = client.job(job_id)
                if status["state"] in ("completed", "failed", "cancelled"):
                    break
                time.sleep(0.1)
            if status.get("state") != "completed":
                failures.append(f"job did not complete after restart: {status}")
            resumed_from = status.get("resumed_from")
            if not resumed_from:
                failures.append(
                    f"job did not resume from a checkpoint: {status}"
                )
            else:
                print(
                    f"resumed from epoch {resumed_from}, "
                    f"completed {status['epochs_done']}/{SPEC['epochs']}"
                )
            result = client.job_result(job_id)

            stats = client.statz().get("jobs") or {}
            accounted = (
                stats.get("completed", 0)
                + stats.get("failed", 0)
                + stats.get("cancelled", 0)
            )
            if stats.get("submitted") != accounted:
                failures.append(
                    f"jobs accounting broken: submitted={stats.get('submitted')}"
                    f" != completed+failed+cancelled={accounted} ({stats})"
                )
            if not stats.get("checkpoints_written"):
                failures.append(f"no checkpoints recorded in stats: {stats}")
        _drain(proc, failures)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    # Bitwise comparison against an uninterrupted local reference.
    reference = run_training(JobSpec(**SPEC)).output
    if not (
        np.array_equal(result, reference) and result.dtype == reference.dtype
    ):
        failures.append(
            "resumed job output is not bitwise-identical to the "
            "uninterrupted reference run"
        )
    else:
        print(f"bitwise resume verified: {result.shape} {result.dtype}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("jobs smoke: submit, SIGTERM mid-training, restart, bitwise resume")
    return 0


if __name__ == "__main__":
    sys.exit(main())
