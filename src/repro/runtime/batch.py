"""Request batching: packing small jobs, splitting large ones.

The runtime's scheduling policy is nnz-aware:

* **Small requests** (``nnz <= pack_nnz``) that share a compatible plan —
  same resolved pattern, backend kind, blocking parameters, feature
  dimension and operand dtypes — are *packed* into one block-diagonal
  super-problem and executed in a single kernel invocation, amortising the
  per-call Python dispatch/validation/gather overhead across the batch.

* **Large requests** are *split* over their plan's nnz-balanced 1-D
  partitions (the existing ``part1d``) and fanned out across the runtime's
  shared thread pool.

Bitwise equivalence
-------------------
Packing is numerically transparent: the edge-blocked kernels start their
edge blocks at each partition's first edge, so executing the packed matrix
with one :class:`~repro.core.partition.RowPartition` per request replays
*exactly* the arithmetic of a standalone single-threaded call — same
gathers, same segment reductions, same accumulation order.  The test suite
asserts bitwise equality of ``run_batch`` against sequential ``fusedmm``
calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.partition import RowPartition
from ..errors import ShapeError
from ..sparse import CSRMatrix, as_csr
from .plan import effective_strategy

__all__ = ["KernelRequest", "PackedBatch", "pack_requests", "pack_group_key"]


@dataclass
class KernelRequest:
    """One ``Z = FusedMM(A, X, Y)`` request for :meth:`KernelRuntime.run_batch`.

    ``Y`` defaults to ``X`` for square ``A`` (the whole-graph case).
    ``tag`` is an opaque correlation id echoed back untouched — useful when
    requests are collected from concurrent producers.
    """

    A: object
    X: Optional[np.ndarray]
    Y: Optional[np.ndarray] = None
    pattern: object = "sigmoid_embedding"
    backend: str = "auto"
    block_size: Optional[int] = None
    strategy: str = "auto"
    overrides: Mapping[str, object] = field(default_factory=dict)
    tag: object = None

    def normalized(self) -> "KernelRequest":
        """Canonicalise operands: CSR ``A``, float arrays, explicit ``Y``."""
        A = as_csr(self.A)
        X = None if self.X is None else np.ascontiguousarray(self.X)
        Y = self.Y
        if Y is None:
            if A.nrows != A.ncols:
                raise ShapeError(
                    f"Y may only be omitted for square A; got shape {A.shape}"
                )
            Y = X
        if Y is not None:
            Y = np.ascontiguousarray(Y)
        if X is None and Y is None:
            raise ShapeError(
                "a request needs at least one operand matrix: pass X "
                "(and optionally Y), or Y alone for SpMM-like patterns"
            )
        if X is not None and (X.ndim != 2 or X.shape[0] != A.nrows):
            raise ShapeError(
                f"X must have shape ({A.nrows}, d) for A of shape {A.shape}"
            )
        if Y is not None and (Y.ndim != 2 or Y.shape[0] != A.ncols):
            raise ShapeError(
                f"Y must have shape ({A.ncols}, d) for A of shape {A.shape}"
            )
        return KernelRequest(
            A=A,
            X=X,
            Y=Y,
            pattern=self.pattern,
            backend=self.backend,
            block_size=self.block_size,
            strategy=self.strategy,
            overrides=self.overrides,
            tag=self.tag,
        )


def pack_group_key(plan, req: "KernelRequest") -> Tuple:
    """Grouping key under which requests may be packed together.

    Everything that influences the kernel's arithmetic must appear here:
    the resolved pattern, backend kind, blocking parameters (including the
    data-dependent row/edge choice a standalone ``strategy='auto'`` call
    would make) and the operand dtypes (mixing dtypes in one packed call
    would change NumPy's promotion behaviour relative to the standalone
    calls).
    """
    d = None if req.X is None else req.X.shape[1]
    if d is None and req.Y is not None:
        d = req.Y.shape[1]
    return (
        plan.key.pattern,
        plan.kind,
        effective_strategy(plan, as_csr(req.A)),
        plan.block_size,
        d,
        None if req.X is None else req.X.dtype.str,
        None if req.Y is None else req.Y.dtype.str,
        as_csr(req.A).data.dtype.str,
        req.X is None,
    )


@dataclass
class PackedBatch:
    """A block-diagonal super-problem built from several small requests."""

    A: CSRMatrix
    X: Optional[np.ndarray]
    Y: np.ndarray
    #: one partition per request, in request order
    parts: List[RowPartition]
    #: output row ranges, one ``(start, stop)`` per request
    row_ranges: List[Tuple[int, int]]

    def split_result(self, Z: np.ndarray) -> List[np.ndarray]:
        """Slice the packed output back into per-request results."""
        return [np.ascontiguousarray(Z[start:stop]) for start, stop in self.row_ranges]


def pack_requests(requests: Sequence[KernelRequest]) -> PackedBatch:
    """Stack normalised requests into one block-diagonal problem.

    The packed adjacency places each request's matrix on the diagonal, so
    every edge of request *i* points into request *i*'s slice of the packed
    ``Y`` — requests can never read each other's features.
    """
    if not requests:
        raise ValueError("cannot pack an empty request list")
    total_rows = sum(r.A.nrows for r in requests)
    total_cols = sum(r.A.ncols for r in requests)

    indptr = np.empty(total_rows + 1, dtype=np.int64)
    indptr[0] = 0
    indices_chunks: List[np.ndarray] = []
    data_chunks: List[np.ndarray] = []
    parts: List[RowPartition] = []
    row_ranges: List[Tuple[int, int]] = []

    row_off = col_off = nnz_off = 0
    pos = 1
    for req in requests:
        A = req.A
        indptr[pos : pos + A.nrows] = A.indptr[1:] + nnz_off
        pos += A.nrows
        indices_chunks.append(A.indices + col_off)
        data_chunks.append(A.data)
        parts.append(RowPartition(start=row_off, stop=row_off + A.nrows, nnz=A.nnz))
        row_ranges.append((row_off, row_off + A.nrows))
        row_off += A.nrows
        col_off += A.ncols
        nnz_off += A.nnz

    indices = (
        np.concatenate(indices_chunks)
        if indices_chunks
        else np.empty(0, dtype=np.int64)
    )
    data = (
        np.concatenate(data_chunks)
        if data_chunks
        else np.empty(0, dtype=np.float32)
    )
    A_packed = CSRMatrix(total_rows, total_cols, indptr, indices, data, check=False)

    X_packed = (
        None
        if requests[0].X is None
        else np.concatenate([r.X for r in requests], axis=0)
    )
    Y_packed = np.concatenate([r.Y for r in requests], axis=0)
    return PackedBatch(
        A=A_packed, X=X_packed, Y=Y_packed, parts=parts, row_ranges=row_ranges
    )
