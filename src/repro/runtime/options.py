"""The shared kernel-execution knobs every app config carries.

Force2Vec, VERSE, GCN and the FR layout engine (and the serving layer's
``ServeConfig``) all expose the same five kernel knobs — backend, locality
tier, thread count, worker-process count, sharding threshold.  They used
to duplicate the fields *and* their validation in every config dataclass;
:class:`RuntimeOptions` is the single definition they now inherit, so the
knobs, their defaults and their error messages cannot drift between apps.

Inheriting configs keep working unchanged for callers: every field has a
default, existing keyword construction sites are untouched, and each
subclass ``__post_init__`` chains to this one for the shared validation.

The base fields are declared ``kw_only`` so they *append* keyword-only
parameters to each subclass ``__init__`` instead of prepending positional
ones: positional construction of a subclass binds the subclass's own
fields exactly as it did before the consolidation, and passing a kernel
knob positionally is an explicit ``TypeError`` rather than a silent
reassignment of arguments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.fused import BACKENDS as KERNEL_BACKENDS
from ..errors import BackendError
from ..sparse import validate_reorder

__all__ = ["RuntimeOptions"]

#: Default sharding threshold, mirrored from the runtime so importing this
#: module never pulls in the (heavier) runtime module graph.
_DEFAULT_SHARD_MIN_NNZ = 16384


@dataclass(kw_only=True)
class RuntimeOptions:
    """Kernel-execution knobs shared by the app and serving configs.

    Attributes
    ----------
    kernel_backend:
        Kernel backend of the fused calls (:data:`repro.core.BACKENDS`);
        ``"auto"`` prefers the Numba jit tier when importable.
    reorder:
        Locality tier of the cached plans
        (:data:`repro.sparse.REORDER_CHOICES`); ``"none"`` keeps
        bitwise-exact execution.
    num_threads:
        Worker threads of the runtime's shared pool (1 = sequential).
    processes:
        Worker processes of the sharded execution tier (0 = in-process);
        see :mod:`repro.runtime.workers`.
    shard_min_nnz:
        Streaming calls only use the sharded tier for matrices at or
        above this nnz.
    """

    kernel_backend: str = "auto"
    reorder: str = "none"
    num_threads: int = 1
    processes: int = 0
    shard_min_nnz: int = _DEFAULT_SHARD_MIN_NNZ

    def __post_init__(self) -> None:
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise BackendError(
                f"unknown kernel backend {self.kernel_backend!r}; "
                f"expected one of {KERNEL_BACKENDS}"
            )
        validate_reorder(self.reorder)

    def runtime_kwargs(self) -> Dict[str, object]:
        """The :class:`~repro.runtime.KernelRuntime` keywords these knobs
        map onto (``kernel_backend``/``reorder`` are per-plan arguments,
        not runtime construction arguments, so they are not included)."""
        return {
            "num_threads": self.num_threads,
            "processes": self.processes,
            "shard_min_nnz": self.shard_min_nnz,
        }
