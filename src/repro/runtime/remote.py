"""Distributed kernel execution: TCP worker hosts + the in-runtime controller.

This is the network sibling of the shared-memory worker pool: shards of a
planned kernel call span *machines* instead of processes.  Three pieces:

* :class:`WorkerAgent` — the host process started by ``repro worker``.  It
  dials the controller, registers its capacity, then serves a tiny
  command protocol over one framed TCP connection (the ``b"RK"`` codec of
  :mod:`repro.runtime.codec`): cache a CSR once per ``(host, fingerprint)``,
  execute row-ranges against it, answer heartbeats.
* :class:`RemoteController` — lives inside
  :class:`~repro.runtime.runtime.KernelRuntime`.  It accepts agent
  registrations, routes contiguous shard groups to hosts by nnz/slot
  balance (:func:`~repro.runtime.shard.route_shards`), ships matrices
  lazily and re-ships them after reconnects, and extends
  :class:`~repro.errors.WorkerCrashError` semantics to network partitions:
  heartbeat/timeout detection, lost groups retried on surviving hosts,
  in-parent fallback when none survive — a dropped worker never hangs or
  corrupts a batch.
* The determinism contract: agents rebuild dispatch configs through the
  same :func:`~repro.runtime.codec.build_worker_config` the shm workers
  use and execute the plan's own partitions against the full CSR with
  ``out=``/``row_offset=``, so remote results are **bitwise identical** to
  local sharded and to sequential in-process execution for any shard
  count and any host layout (asserted at 1/2/4 shards in the tests and
  the CI distributed-smoke job).

Wire conversation (one frame per line; all frames carry a request id the
reply echoes)::

    agent → controller   REGISTER {name, slots, threads, pid[, token]}
    controller → agent   WELCOME  {host_id} | ERROR {status: 403, ...}
    controller → agent   PING | LOAD {key} (+csr blobs) | DROP {key}
                         | RUN {key, spec, parts, y_same_as_x} (+x/+y)
                         | EXIT
    agent → controller   RESULT {...} (+z block for RUN) | ERROR {status,
                         error[, missing_key]}

Every exchange is strictly request/reply under a per-host lock, so one
slow host never desynchronises another host's framing.

Security model: both sides enforce a per-frame payload cap (a forged
length field can never drive an unbounded allocation), and the controller
can require a shared-secret ``token`` in REGISTER — set it whenever the
listener binds anything beyond the loopback default.
"""

from __future__ import annotations

import hmac
import os
import socket
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor, wait as _futures_wait
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import WorkerCrashError, WorkerError
from ..framing import (
    ProtocolError,
    decode_payload,
    encode_payload,
    error_payload,
)
from ..resilience import (
    Fault,
    FaultInjector,
    FaultPlan,
    HealthTracker,
    RetryPolicy,
    seed_from_name,
)
from ..sparse import CSRMatrix
from .codec import (
    OP_DROP,
    OP_ERROR,
    OP_EXIT,
    OP_LOAD,
    OP_LOAD_DELTA,
    OP_PING,
    OP_REGISTER,
    OP_RESULT,
    OP_RUN,
    OP_WELCOME,
    WORKER_CODEC,
    WORKER_MAX_PAYLOAD,
    build_worker_config,
    config_cache_key,
    decode_csr,
    encode_csr,
    encode_csr_delta,
    spec_from_meta,
    splice_csr_delta,
)
from .fingerprint import fingerprint_covers
from .shard import ShardAssignment, ShardPlan, route_shards

__all__ = [
    "WorkerAgent",
    "RemoteController",
    "REPRO_WORKER_CRASH_AFTER",
    "REPRO_WORKER_FAULT_PLAN",
]

#: Environment variable read by ``repro worker``: crash (``os._exit``) on
#: receiving the Nth RUN frame.  Fault-injection hook for tests and the CI
#: distributed-smoke job — never set it in production.  Equivalent to a
#: sticky ``crash@N+`` entry in :data:`REPRO_WORKER_FAULT_PLAN`.
REPRO_WORKER_CRASH_AFTER = "REPRO_WORKER_CRASH_AFTER"

#: Environment variable read by ``repro worker``: a
#: :meth:`repro.resilience.FaultPlan.from_spec` schedule applied to RUN
#: frames (e.g. ``"delay@2:0.5,drop_frame@4,crash@7+"``).  Chaos-harness
#: hook — never set it in production.
REPRO_WORKER_FAULT_PLAN = "REPRO_WORKER_FAULT_PLAN"

#: Reply window for heartbeat pings (seconds) — deliberately much shorter
#: than the run timeout: an idle host that cannot answer a ping within
#: this window is slow or partitioned, not busy.  One missed ping is a
#: *strike*, not an eviction — see ``heartbeat_strikes``.
_PING_TIMEOUT = 5.0


def _recv_reply(rfile, max_payload: int) -> Tuple[int, int, bytes]:
    """One reply frame off a blocking connection; EOF is a connection loss."""
    frame = WORKER_CODEC.read_frame(rfile, max_payload=max_payload)
    if frame is None:
        raise ConnectionError("peer closed the connection")
    return frame


# ---------------------------------------------------------------------- #
# Worker host process
# ---------------------------------------------------------------------- #
class WorkerAgent:
    """One worker host: registers with a controller and executes row-ranges.

    Parameters
    ----------
    host, port:
        The controller's listening address.
    name:
        Advertised host name (defaults to ``hostname:pid``).
    threads:
        Kernel threads per RUN on this host.  Results stay bitwise
        identical for any value — the runtime's determinism contract
        covers thread counts — so agents on big machines run ``threads >
        1`` while the shm pool stays single-threaded per process.
    slots:
        Routing weight the controller balances nnz against (defaults to
        ``threads``).
    matrix_cache:
        LRU bound on CSRs kept resident (mirrors the shm pool's bound).
    token:
        Shared secret presented in REGISTER.  Must match the
        controller's token when the controller requires one; without a
        token the transport is unauthenticated and should only ever run
        on loopback or a trusted network.
    max_payload:
        Per-frame payload cap (bytes) enforced on every read, so a
        forged length field from a bad peer cannot drive an unbounded
        allocation.  Must be at least as large as the controller's —
        both sides default to :data:`~repro.runtime.codec.WORKER_MAX_PAYLOAD`.
    crash_after:
        Fault injection: after receiving this many RUN frames the agent
        drops the connection without replying (and ``os._exit(1)``-s when
        ``exit_on_crash`` — the ``repro worker`` behaviour, so the whole
        host dies exactly as a kill would).  Sugar for
        ``fault_plan=FaultPlan.crash_after(n)``.
    fault_plan:
        Full :class:`~repro.resilience.FaultPlan` applied to RUN frames:
        ``crash`` (drop without replying, stay down), ``disconnect``
        (sever, then reconnect through :meth:`run_forever` — a flapping
        host), ``delay`` (sleep ``arg`` seconds before executing — a
        straggler), ``drop_frame`` (send half of the RESULT frame, then
        sever — a mid-frame network cut).  The step counter spans
        reconnects, so one plan describes the host's whole lifetime.
    fault_log:
        Callback ``(fault, step)`` observing every fired fault (the CLI
        prints them to stderr so the chaos harness can assert coverage).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        name: Optional[str] = None,
        threads: int = 1,
        slots: Optional[int] = None,
        matrix_cache: int = 16,
        connect_timeout: float = 10.0,
        token: Optional[str] = None,
        max_payload: int = WORKER_MAX_PAYLOAD,
        crash_after: Optional[int] = None,
        exit_on_crash: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        fault_log=None,
    ) -> None:
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.controller_address = (host, int(port))
        self.name = name or f"{socket.gethostname()}:{os.getpid()}"
        self.threads = int(threads)
        self.slots = int(slots if slots is not None else threads)
        if self.slots < 1:
            raise ValueError(f"slots must be >= 1, got {self.slots}")
        self.matrix_cache = int(matrix_cache)
        self.connect_timeout = connect_timeout
        self.token = token
        self.max_payload = int(max_payload)
        self.last_error: Optional[str] = None
        self.exit_on_crash = exit_on_crash
        if fault_plan is None and crash_after is not None:
            fault_plan = FaultPlan.crash_after(crash_after)
        self.fault_plan = fault_plan
        self._injector = FaultInjector(fault_plan, log=fault_log)
        self.runs_executed = 0
        self.delta_loads = 0
        self.reconnects = 0
        self._registered = False
        self._sock: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._matrices: "OrderedDict[str, CSRMatrix]" = OrderedDict()
        self._configs: Dict[tuple, object] = {}

    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        """Break the serve loop from another thread (tests, signals)."""
        self._stop.set()
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def serve(self) -> str:
        """Dial the controller and serve until EXIT or disconnect.

        Returns the reason the loop ended: ``"exit"`` (controller said
        so), ``"disconnected"`` (controller went away or desynchronised
        the framing), ``"rejected"`` (controller refused the
        registration — bad token; details in :attr:`last_error`),
        ``"quarantined"`` (controller's circuit breaker is holding this
        host name out — retryable, the eventual retry is the probe),
        ``"stopped"`` (:meth:`stop`), or ``"crashed"`` (fault injection
        fired).
        """
        self._registered = False
        # Warm the JIT kernel cache before taking traffic, exactly as the
        # shm workers do at spawn.
        try:
            from ..core.jit import warmup

            warmup()
        except Exception:
            pass
        sock = socket.create_connection(
            self.controller_address, timeout=self.connect_timeout
        )
        # Keep the timeout armed through the registration handshake: a
        # connection that completed in a dying listener's accept backlog
        # never gets a WELCOME, and an unbounded wait would wedge the
        # agent there forever.  Cleared once admitted — an idle worker
        # legitimately blocks between RUNs.
        self._sock = sock
        rfile = sock.makefile("rb")
        try:
            register_meta = {
                "name": self.name,
                "slots": self.slots,
                "threads": self.threads,
                "pid": os.getpid(),
                # Capability flag: this agent understands OP_LOAD_DELTA
                # (dirty-row re-ship).  Controllers never send it to
                # agents that didn't advertise it, so old agents keep
                # working through full OP_LOAD re-ships.
                "delta": 1,
            }
            if self.token is not None:
                register_meta["token"] = self.token
            sock.sendall(
                WORKER_CODEC.pack_frame(
                    OP_REGISTER, 0, encode_payload(register_meta)
                )
            )
            opcode, _, payload = _recv_reply(rfile, self.max_payload)
            if opcode == OP_ERROR:
                meta, _ = decode_payload(payload)
                self.last_error = str(meta.get("error", "registration rejected"))
                # 503 = quarantined (transient, the breaker will probe us
                # back in); anything else (403 bad token) is terminal.
                if int(meta.get("status", 0)) == 503:
                    return "quarantined"
                return "rejected"
            if opcode != OP_WELCOME:
                raise ProtocolError(
                    f"expected WELCOME, got opcode 0x{opcode:02x}"
                )
            sock.settimeout(None)
            self._registered = True
            return self._serve_loop(sock, rfile)
        except (ProtocolError, ConnectionError, OSError):
            # ProtocolError (bad magic/version, oversized frame, garbage
            # payload) means the stream is untrustworthy: treat it as a
            # disconnect — never let it kill the worker process.
            return "stopped" if self._stop.is_set() else "disconnected"
        finally:
            self._sock = None
            try:
                rfile.close()
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def run_forever(
        self,
        reconnect_delay: float = 1.0,
        *,
        retry: Optional[RetryPolicy] = None,
    ) -> str:
        """Serve, reconnecting after controller restarts, until stopped.

        Reconnects back off exponentially with jitter under ``retry``
        (default: a :class:`~repro.resilience.RetryPolicy` with
        ``reconnect_delay`` as the base, seeded from the host name so a
        restarted fleet de-correlates instead of thundering back in
        lockstep).  A session that actually registered resets the
        backoff — only consecutive failures escalate.

        Returns the terminal reason (:meth:`serve`'s vocabulary); a
        rejected registration is terminal — retrying a bad token would
        just hammer the controller — while ``"quarantined"`` keeps
        backing off (the eventual reconnect is the breaker's probe).
        """
        policy = retry or RetryPolicy(
            base_delay=reconnect_delay,
            max_delay=max(30.0, reconnect_delay),
            seed=seed_from_name(self.name),
        )
        state = None
        while not self._stop.is_set():
            try:
                reason = self.serve()
            except (ProtocolError, ConnectionError):
                reason = "disconnected"
            if reason in ("exit", "stopped", "crashed", "rejected"):
                return reason
            # Matrices and configs survive a reconnect, but the controller
            # tracks loaded keys per connection and will re-ship; dropping
            # our cache keeps both sides' views consistent.
            self._matrices.clear()
            if self._registered:
                state = None  # healthy session: next failure starts fresh
            if state is None:
                state = policy.start(salt=self.reconnects)
            self.reconnects += 1
            if not state.sleep(interrupt=self._stop):
                return "stopped" if self._stop.is_set() else reason
        return "stopped"

    # ------------------------------------------------------------------ #
    def _serve_loop(self, sock: socket.socket, rfile) -> str:
        def reply(opcode, request_id, meta, arrays=None):
            sock.sendall(
                WORKER_CODEC.pack_frame(
                    opcode, request_id, encode_payload(meta, arrays)
                )
            )

        while not self._stop.is_set():
            frame = WORKER_CODEC.read_frame(rfile, max_payload=self.max_payload)
            if frame is None:
                return "disconnected"
            opcode, request_id, payload = frame
            try:
                meta, arrays = decode_payload(payload)
                if opcode == OP_EXIT:
                    reply(OP_RESULT, request_id, {})
                    return "exit"
                elif opcode == OP_PING:
                    reply(OP_RESULT, request_id, {})
                elif opcode == OP_LOAD:
                    key = str(meta["key"])
                    if key not in self._matrices:
                        self._matrices[key] = decode_csr(meta, arrays)
                    self._matrices.move_to_end(key)
                    while len(self._matrices) > self.matrix_cache:
                        self._matrices.popitem(last=False)
                    reply(OP_RESULT, request_id, {})
                elif opcode == OP_LOAD_DELTA:
                    key = str(meta["key"])
                    base_key = str(meta["base_key"])
                    if key not in self._matrices:
                        base = self._matrices.get(base_key)
                        if base is None:
                            # Base evicted (or never shipped to this
                            # connection): ask for a full re-ship of the
                            # *new* key rather than guessing.
                            reply(
                                OP_ERROR,
                                request_id,
                                {
                                    "status": 404,
                                    "error": (
                                        f"delta base {base_key!r} not loaded"
                                    ),
                                    "missing_key": base_key,
                                },
                            )
                            continue
                        self._matrices[key] = splice_csr_delta(base, arrays)
                        self.delta_loads += 1
                    self._matrices.move_to_end(key)
                    while len(self._matrices) > self.matrix_cache:
                        self._matrices.popitem(last=False)
                    reply(OP_RESULT, request_id, {})
                elif opcode == OP_DROP:
                    self._matrices.pop(str(meta["key"]), None)
                    reply(OP_RESULT, request_id, {})
                elif opcode == OP_RUN:
                    fault = self._injector.step()
                    if fault is not None:
                        outcome = self._inject_fault(fault, sock)
                        if outcome is not None:
                            return outcome
                    key = str(meta["key"])
                    A = self._matrices.get(key)
                    if A is None:
                        # Evicted (or a pre-reconnect key): tell the
                        # controller to re-ship instead of guessing.
                        reply(
                            OP_ERROR,
                            request_id,
                            {
                                "status": 404,
                                "error": f"matrix {key!r} not loaded",
                                "missing_key": key,
                            },
                        )
                        continue
                    self._matrices.move_to_end(key)
                    Z_block, w0, w1 = self._execute(A, meta, arrays)
                    reply(
                        OP_RESULT,
                        request_id,
                        {"w0": w0, "w1": w1},
                        {"z": Z_block},
                    )
                    self.runs_executed += 1
                else:
                    reply(
                        OP_ERROR,
                        request_id,
                        {
                            "status": 400,
                            "error": f"unexpected opcode 0x{opcode:02x}",
                        },
                    )
            except (ConnectionError, OSError):
                raise
            except Exception as exc:
                import traceback

                try:
                    reply(
                        OP_ERROR,
                        request_id,
                        {
                            "status": 500,
                            "error": (
                                f"{exc}\n{traceback.format_exc()}"
                            ),
                        },
                    )
                except (ConnectionError, OSError):
                    return "disconnected"
        return "stopped"

    def _inject_fault(
        self, fault: Fault, sock: socket.socket
    ) -> Optional[str]:
        """Fire one scheduled fault; returns the serve-loop outcome, or
        ``None`` when the RUN should still execute (``delay``)."""
        if fault.kind == "delay":
            # Straggler: stall, then answer normally (and correctly).
            self._stop.wait(fault.arg)
            return None
        if fault.kind == "drop_frame":
            # Mid-frame network cut: ship half of a RESULT frame, sever.
            frame = WORKER_CODEC.pack_frame(
                OP_RESULT, 0, encode_payload({"w0": 0, "w1": 0})
            )
            try:
                sock.sendall(frame[: max(1, len(frame) // 2)])
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            return "disconnected"
        # crash / disconnect: drop the connection without replying.
        if fault.kind == "crash" and self.exit_on_crash:  # pragma: no cover
            os._exit(1)
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        return "crashed" if fault.kind == "crash" else "disconnected"

    def _execute(
        self, A: CSRMatrix, meta: dict, arrays: Dict[str, np.ndarray]
    ) -> Tuple[np.ndarray, int, int]:
        """Execute one RUN frame's row-ranges; returns the output block."""
        from ..core.partition import RowPartition

        spec = spec_from_meta(meta["spec"])
        cfg_key = config_cache_key(spec)
        cfg = self._configs.get(cfg_key)
        if cfg is None:
            cfg = build_worker_config(spec, num_threads=self.threads)
            self._configs[cfg_key] = cfg
        X = arrays.get("x")
        if meta.get("y_same_as_x"):
            Y = X
        else:
            Y = arrays.get("y")
        parts = [RowPartition(int(s), int(e), int(n)) for s, e, n in meta["parts"]]
        w0 = min(p.start for p in parts)
        w1 = max(p.stop for p in parts)
        d = X.shape[1] if X is not None else Y.shape[1]
        if X is not None:
            out_dtype = X.dtype
        elif np.issubdtype(Y.dtype, np.floating):
            out_dtype = Y.dtype
        else:  # pragma: no cover - integer Y normalised by kernels
            out_dtype = np.dtype(np.float32)
        Z_block = np.zeros((w1 - w0, d), dtype=out_dtype)
        # Same call shape as the shm worker loop: the plan's own
        # partitions against the full CSR through out=/row_offset=, so
        # the arithmetic (and therefore the bytes) cannot differ.
        cfg.execute(
            A,
            X,
            Y,
            parts=parts,
            num_threads=self.threads,
            block_size=spec["block_size"],
            strategy=spec["strategy"],
            out=Z_block,
            row_offset=w0,
        )
        return Z_block, w0, w1


# ---------------------------------------------------------------------- #
# Controller (runtime side)
# ---------------------------------------------------------------------- #
class _RemoteHost:
    """Controller-side record of one registered worker host."""

    def __init__(
        self,
        host_id,
        name,
        slots,
        threads,
        sock,
        rfile,
        address,
        supports_delta=False,
    ):
        self.host_id = host_id
        self.name = name
        self.slots = max(int(slots), 1)
        self.threads = int(threads)
        self.sock = sock
        self.rfile = rfile
        self.address = address
        #: whether the agent advertised OP_LOAD_DELTA support in REGISTER
        self.supports_delta = bool(supports_delta)
        self.lock = threading.Lock()
        self.loaded: set = set()
        self.alive = True
        self.runs = 0
        self.strikes = 0
        self._next_id = 1

    def next_request_id(self) -> int:
        rid = self._next_id
        self._next_id += 1
        return rid

    def close(self) -> None:
        try:
            self.rfile.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


def _contiguous_chunks(
    group: Sequence[ShardAssignment],
) -> List[List[ShardAssignment]]:
    """Split a routed group at row-contiguity breaks.

    First-round groups are contiguous by construction
    (:func:`~repro.runtime.shard.route_shards`), but a retry round can
    hand one survivor the groups of several non-adjacent lost hosts.
    Executing each contiguous chunk as its own RUN keeps the returned
    blocks tight — no zero-filled gap rows shipped over the wire.
    """
    chunks: List[List[ShardAssignment]] = [[group[0]]]
    for a in group[1:]:
        if a.parts[0].start == chunks[-1][-1].parts[-1].stop:
            chunks[-1].append(a)
        else:
            chunks.append([a])
    return chunks


class _ChunkJob:
    """One contiguous chunk of a dispatch round — the unit of hedging.

    The chunk's row ranges may be completed by its host *or* by an
    in-parent hedge; ``lock`` serialises the two so exactly one writes
    ``Z`` and claims ``winner`` (both compute bitwise-identical bytes,
    the lock just makes "first completion wins" observable).
    """

    __slots__ = (
        "assignments",
        "parts",
        "nnz",
        "lock",
        "done",
        "winner",
        "started_at",
        "hedged",
    )

    def __init__(self, assignments: Sequence[ShardAssignment]) -> None:
        self.assignments = list(assignments)
        self.parts = [
            [int(p.start), int(p.stop), int(p.nnz)]
            for a in assignments
            for p in a.parts
        ]
        self.nnz = sum(a.nnz for a in assignments)
        self.lock = threading.Lock()
        self.done = False
        self.winner: Optional[str] = None
        self.started_at: Optional[float] = None
        self.hedged = False


class RemoteController:
    """Admits remote worker hosts and routes shard groups across them.

    Owned by :class:`~repro.runtime.runtime.KernelRuntime` (created when
    ``remote_port=`` is set).  Failure semantics extend the shm pool's:

    * a host that drops mid-exchange (EOF, reset, mid-frame cut) or times
      out is declared **lost** — its shard group is re-routed across the
      surviving hosts and the matrix is re-shipped where needed;
    * when no hosts survive, the unfinished assignments are *returned* to
      the caller, which executes them in-parent — the batch completes
      either way, it never hangs and never returns a partial ``Z``;
    * an agent-side kernel *exception* (as opposed to a death) is
      deterministic and propagates as :class:`~repro.errors.WorkerError`
      without retry, matching :class:`~repro.runtime.workers.WorkerPool`.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_s: float = 2.0,
        heartbeat_strikes: int = 3,
        ping_timeout_s: float = _PING_TIMEOUT,
        timeout: float = 60.0,
        token: Optional[str] = None,
        max_payload: int = WORKER_MAX_PAYLOAD,
        failure_threshold: int = 3,
        failure_window_s: float = 30.0,
        quarantine_s: float = 5.0,
        hedge: bool = True,
        hedge_quantile: float = 0.9,
        hedge_factor: float = 4.0,
        hedge_min_s: float = 0.25,
        hedge_min_samples: int = 3,
        min_run_timeout_s: float = 5.0,
        timeout_slack: float = 8.0,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if heartbeat_strikes < 1:
            raise ValueError(
                f"heartbeat_strikes must be >= 1, got {heartbeat_strikes}"
            )
        self.heartbeat_s = heartbeat_s
        self.heartbeat_strikes = int(heartbeat_strikes)
        self.ping_timeout_s = float(ping_timeout_s)
        self.timeout = timeout
        #: Shared secret every REGISTER must carry (constant-time
        #: compared).  ``None`` admits any peer — acceptable on the
        #: loopback default bind, mandatory to set when binding a
        #: cross-machine interface.
        self.token = token
        self.max_payload = int(max_payload)
        #: Circuit breaker keyed by host *name*: a flapper re-registers
        #: under a fresh host_id but the same name, so the breaker still
        #: recognises it and holds it out after K losses in the window.
        self.health = HealthTracker(
            failure_threshold=failure_threshold,
            failure_window_s=failure_window_s,
            quarantine_s=quarantine_s,
        )
        self.hedge = bool(hedge)
        self.hedge_quantile = float(hedge_quantile)
        self.hedge_factor = float(hedge_factor)
        self.hedge_min_s = float(hedge_min_s)
        self.hedge_min_samples = int(hedge_min_samples)
        self.min_run_timeout_s = float(min_run_timeout_s)
        self.timeout_slack = float(timeout_slack)
        self._injector = FaultInjector(fault_plan) if fault_plan else None
        #: Observed seconds-per-nnz of completed RUNs — feeds both the
        #: nnz-scaled per-RUN reply timeouts and the hedge deadlines.
        self._nnz_samples: "deque[float]" = deque(maxlen=128)
        self._samples_lock = threading.Lock()
        self._hedge_configs: Dict[tuple, object] = {}
        self._hedge_exec = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-remote-hedge"
        )
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, int(port)))
        self._listener.listen(16)
        self.host = host
        self.port = self._listener.getsockname()[1]
        self._hosts: "OrderedDict[int, _RemoteHost]" = OrderedDict()
        self._hosts_lock = threading.Lock()
        self._next_host_id = 1
        self._closed = threading.Event()
        self.hosts_admitted = 0
        self.hosts_lost = 0
        self.batches = 0
        self.retries = 0
        self.parent_fallbacks = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.hedge_errors = 0
        self.registrations_rejected = 0
        self.delta_ships = 0
        self.delta_fallbacks = 0
        #: Dynamic-graph delta sources: ship key → (base ship key, splice
        #: payload).  Small LRU — a delta is only useful while its version
        #: is the one being executed.
        self._delta_sources: "OrderedDict[str, Tuple[str, dict, Dict[str, np.ndarray]]]" = (
            OrderedDict()
        )
        self._delta_lock = threading.Lock()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-remote-accept", daemon=True
        )
        self._accept_thread.start()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="repro-remote-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()

    # ------------------------------------------------------------------ #
    # Host admission + liveness
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                sock, address = self._listener.accept()
            except OSError:
                return
            if self._closed.is_set():
                # Accepted while shutting down (including the wake-up
                # connection ``close()`` makes).  Never admit: a WELCOME
                # from a dying controller would wedge the agent in a
                # serve loop nobody drives.  Sever so it retries and
                # lands on the replacement controller instead.
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                sock.close()
                return
            try:
                sock.settimeout(self.timeout)
                rfile = sock.makefile("rb")
                frame = WORKER_CODEC.read_frame(
                    rfile, max_payload=self.max_payload
                )
                if frame is None:
                    raise ConnectionError("agent hung up before registering")
                opcode, _, payload = frame
                if opcode != OP_REGISTER:
                    raise ProtocolError(
                        f"expected REGISTER, got opcode 0x{opcode:02x}"
                    )
                meta, _ = decode_payload(payload)
                if self.token is not None and not hmac.compare_digest(
                    str(meta.get("token") or ""), self.token
                ):
                    sock.sendall(
                        WORKER_CODEC.pack_frame(
                            OP_ERROR,
                            0,
                            error_payload(
                                403,
                                "registration rejected: bad or missing "
                                "token (start the worker with --token)",
                            ),
                        )
                    )
                    raise ConnectionError("agent rejected: bad token")
                peer_name = str(meta.get("name", ""))
                if peer_name and not self.health.allow(peer_name):
                    # Circuit open: a flapping host does not get back in
                    # just by reconnecting.  503 tells the agent this is
                    # transient (back off and retry — the retry that
                    # lands after the quarantine period is the probe).
                    self.registrations_rejected += 1
                    sock.sendall(
                        WORKER_CODEC.pack_frame(
                            OP_ERROR,
                            0,
                            error_payload(
                                503,
                                f"host {peer_name!r} is quarantined after "
                                "repeated failures; retry later",
                            ),
                        )
                    )
                    raise ConnectionError("agent rejected: quarantined")
                with self._hosts_lock:
                    if self._closed.is_set():
                        # close() ran while this handshake was in
                        # flight; its record sweep is done, so admitting
                        # now would welcome the agent into a dead
                        # controller.  Sever instead (the except arm).
                        raise ConnectionError("controller shutting down")
                    host_id = self._next_host_id
                    self._next_host_id += 1
                    record = _RemoteHost(
                        host_id=host_id,
                        name=str(meta.get("name", f"host-{host_id}")),
                        slots=int(meta.get("slots", 1)),
                        threads=int(meta.get("threads", 1)),
                        sock=sock,
                        rfile=rfile,
                        address=address,
                        supports_delta=bool(meta.get("delta")),
                    )
                    self._hosts[host_id] = record
                    self.hosts_admitted += 1
                sock.sendall(
                    WORKER_CODEC.pack_frame(
                        OP_WELCOME, 0, encode_payload({"host_id": host_id})
                    )
                )
            except (ProtocolError, ConnectionError, OSError, socket.timeout):
                # The makefile() reader may still hold an io-ref on the
                # socket, so close() alone would leave the fd (and the
                # peer's connection) open; shutdown() severs it for real.
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    def _heartbeat_loop(self) -> None:
        while not self._closed.wait(self.heartbeat_s):
            for record in self.live_hosts():
                if not record.lock.acquire(blocking=False):
                    continue  # mid-exchange; that path handles failures
                try:
                    self._request(
                        record,
                        OP_PING,
                        {},
                        None,
                        reply_timeout=self.ping_timeout_s,
                    )
                except socket.timeout:
                    # Slow, not provably gone (a GC pause, a CPU spike):
                    # one strike.  The host's eventual late reply is
                    # skipped as stale by ``_request``, so a recovered
                    # host resynchronises instead of being evicted.
                    record.strikes += 1
                    if record.strikes >= self.heartbeat_strikes:
                        self._mark_lost(
                            record,
                            f"missed {record.strikes} heartbeats",
                        )
                except (
                    WorkerCrashError,
                    ProtocolError,
                    ConnectionError,
                    OSError,
                ):
                    # EOF/reset/desync: the connection is gone for real —
                    # no strike count rescues a dead socket.
                    self._mark_lost(record, "heartbeat connection failure")
                else:
                    record.strikes = 0
                finally:
                    record.lock.release()

    def _mark_lost(self, record: _RemoteHost, why: str) -> None:
        with self._hosts_lock:
            if not record.alive:
                return
            record.alive = False
            self._hosts.pop(record.host_id, None)
            self.hosts_lost += 1
        record.close()
        self.health.record_failure(record.name)

    def live_hosts(self) -> List[_RemoteHost]:
        with self._hosts_lock:
            return [h for h in self._hosts.values() if h.alive]

    def total_slots(self) -> int:
        return sum(h.slots for h in self.live_hosts())

    def wait_for_hosts(self, count: int, timeout: float = 30.0) -> int:
        """Block until ``count`` hosts registered (or the timeout hits)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            live = len(self.live_hosts())
            if live >= count:
                return live
            time.sleep(0.02)
        return len(self.live_hosts())

    # ------------------------------------------------------------------ #
    # Per-host request/reply
    # ------------------------------------------------------------------ #
    def _request(
        self,
        record: _RemoteHost,
        opcode: int,
        meta: dict,
        arrays,
        *,
        reply_timeout: Optional[float] = None,
    ) -> Tuple[dict, Dict[str, np.ndarray]]:
        """One exchange with ``record`` (caller holds ``record.lock``).

        Connection-level failures raise ``ConnectionError``/``OSError``;
        agent-reported errors raise :class:`WorkerError` (or return the
        error meta for the caller when it carries ``missing_key``).
        """
        rid = record.next_request_id()
        record.sock.settimeout(
            self.timeout if reply_timeout is None else reply_timeout
        )
        record.sock.sendall(
            WORKER_CODEC.pack_frame(opcode, rid, encode_payload(meta, arrays))
        )
        while True:
            reply_op, reply_id, payload = _recv_reply(
                record.rfile, self.max_payload
            )
            if reply_id != rid:
                if reply_id < rid:
                    # A late reply to an exchange that timed out earlier
                    # (e.g. a heartbeat strike).  Request ids are
                    # monotonic per host, so it cannot belong to any
                    # future exchange: skip it and keep reading.
                    continue
                # A reply from the *future* means the framing is
                # desynchronised beyond repair; drop the host.
                raise ConnectionError(
                    f"out-of-order reply {reply_id} (expected {rid})"
                )
            reply_meta, reply_arrays = decode_payload(payload)
            if reply_op == OP_RESULT:
                return reply_meta, reply_arrays
            if reply_op == OP_ERROR:
                if reply_meta.get("missing_key"):
                    return reply_meta, reply_arrays
                raise WorkerError(
                    f"remote worker {record.name!r} failed:\n"
                    f"{reply_meta.get('error', '')}"
                )
            raise ConnectionError(
                f"unexpected reply opcode 0x{reply_op:02x}"
            )

    def _ensure_loaded(self, record: _RemoteHost, key: str, A: CSRMatrix) -> None:
        if key in record.loaded:
            return
        if self._try_delta_ship(record, key):
            record.loaded.add(key)
            return
        meta, arrays = encode_csr(A)
        meta["key"] = key
        self._request(record, OP_LOAD, meta, arrays)
        record.loaded.add(key)

    def _try_delta_ship(self, record: _RemoteHost, key: str) -> bool:
        """Ship ``key`` as a dirty-row delta when possible.

        Requires a registered delta source for ``key``, an agent that
        advertised the capability, and the base version still resident on
        that agent.  Any miss — old agent, evicted base, agent-side
        error — returns ``False`` and the caller performs a full ship;
        a transport failure propagates like any other exchange.
        """
        if not record.supports_delta:
            return False
        with self._delta_lock:
            source = self._delta_sources.get(key)
        if source is None:
            return False
        base_key, meta, arrays = source
        if base_key not in record.loaded:
            self.delta_fallbacks += 1
            return False
        reply_meta, _ = self._request(record, OP_LOAD_DELTA, meta, arrays)
        if reply_meta.get("missing_key"):
            # The agent evicted the base after our bookkeeping said it
            # was resident: keep both views consistent and full-ship.
            record.loaded.discard(base_key)
            self.delta_fallbacks += 1
            return False
        self.delta_ships += 1
        return True

    # ------------------------------------------------------------------ #
    # Dynamic-graph surface
    # ------------------------------------------------------------------ #
    def register_delta(
        self,
        key: str,
        base_key: str,
        rows: np.ndarray,
        counts: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> None:
        """Record that ``key`` can be shipped as a splice over ``base_key``.

        The next :meth:`_ensure_loaded` of ``key`` on a delta-capable host
        that still holds ``base_key`` sends only the dirty rows (new
        LOAD_DELTA opcode); everything else falls back to a full ship.
        """
        meta, arrays = encode_csr_delta(base_key, rows, counts, indices, data)
        meta["key"] = str(key)
        with self._delta_lock:
            self._delta_sources[str(key)] = (str(base_key), meta, arrays)
            while len(self._delta_sources) > 8:
                self._delta_sources.popitem(last=False)

    def drop_matrix(self, fingerprint: str) -> int:
        """Unship every key of ``fingerprint``'s lineage from every live
        host (and forget its delta sources); returns keys dropped.

        Best-effort per host: a host that fails the exchange is marked
        lost through the normal machinery, never retried here.
        """
        dropped = 0
        with self._delta_lock:
            for key in [
                k
                for k in self._delta_sources
                if fingerprint_covers(fingerprint, k)
                or fingerprint_covers(fingerprint, self._delta_sources[k][0])
            ]:
                del self._delta_sources[key]
        for record in self.live_hosts():
            with record.lock:
                if not record.alive:
                    continue
                doomed = [
                    key
                    for key in record.loaded
                    if fingerprint_covers(fingerprint, key)
                ]
                for key in doomed:
                    try:
                        self._request(
                            record, OP_DROP, {"key": key}, None,
                            reply_timeout=self.ping_timeout_s,
                        )
                    except (
                        WorkerError,
                        ProtocolError,
                        ConnectionError,
                        OSError,
                        socket.timeout,
                    ):
                        self._mark_lost(record, f"drop of {key!r} failed")
                        break
                    record.loaded.discard(key)
                    dropped += 1
        return dropped

    def _sec_per_nnz(self, quantile: float) -> Optional[float]:
        """A quantile of the observed seconds-per-nnz throughput samples."""
        with self._samples_lock:
            if len(self._nnz_samples) < self.hedge_min_samples:
                return None
            samples = sorted(self._nnz_samples)
        return samples[min(len(samples) - 1, int(quantile * len(samples)))]

    def _run_timeout(self, nnz: int) -> float:
        """Reply window for a RUN shipping ``nnz`` — scaled by observed
        throughput so stragglers on small jobs are detected in seconds,
        not after the fixed 60 s worst-case cap."""
        rate = self._sec_per_nnz(0.9)
        if rate is None:
            return self.timeout
        predicted = rate * max(nnz, 1) * self.timeout_slack
        return min(self.timeout, max(self.min_run_timeout_s, predicted))

    def _hedge_deadline_s(self, nnz: int) -> Optional[float]:
        """How long a chunk may stay outstanding before it is hedged
        (``None`` while disabled or the throughput history is cold)."""
        if not self.hedge:
            return None
        rate = self._sec_per_nnz(self.hedge_quantile)
        if rate is None:
            return None
        predicted = rate * max(nnz, 1) * self.hedge_factor
        return min(self.timeout, max(self.hedge_min_s, predicted))

    def _run_group(
        self,
        record: _RemoteHost,
        key: str,
        A: CSRMatrix,
        spec_meta: dict,
        job: _ChunkJob,
        X: Optional[np.ndarray],
        Y: Optional[np.ndarray],
        Z: np.ndarray,
    ) -> None:
        """Execute one contiguous chunk on ``record``, writing into ``Z``."""
        if self._injector is not None:
            fault = self._injector.step()
            if fault is not None:
                if fault.kind == "delay":
                    time.sleep(fault.arg)
                else:
                    # Simulate a partition from the controller's side of
                    # the wire: the dispatch path marks the host lost and
                    # the normal retry machinery takes over.
                    raise ConnectionError(
                        f"injected controller fault {fault.kind!r}"
                    )
        parts = job.parts
        meta = {
            "key": key,
            "spec": spec_meta,
            "parts": parts,
            "y_same_as_x": bool(X is not None and Y is X),
        }
        arrays: Dict[str, np.ndarray] = {}
        if X is not None:
            arrays["x"] = np.asarray(X)
        if Y is not None and Y is not X:
            arrays["y"] = np.asarray(Y)
        run_timeout = self._run_timeout(job.nnz)
        with record.lock:
            if not record.alive:
                raise ConnectionError(f"host {record.name!r} already lost")
            self._ensure_loaded(record, key, A)
            started = time.monotonic()
            reply_meta, reply_arrays = self._request(
                record, OP_RUN, meta, arrays, reply_timeout=run_timeout
            )
            if reply_meta.get("missing_key"):
                # Evicted agent-side between our LOAD bookkeeping and the
                # RUN (LRU pressure): re-ship once and retry.
                record.loaded.discard(key)
                self._ensure_loaded(record, key, A)
                started = time.monotonic()
                reply_meta, reply_arrays = self._request(
                    record, OP_RUN, meta, arrays, reply_timeout=run_timeout
                )
                if reply_meta.get("missing_key"):
                    raise WorkerError(
                        f"remote worker {record.name!r} cannot hold matrix "
                        f"{key!r} (matrix_cache too small?)"
                    )
            elapsed = time.monotonic() - started
            record.runs += 1
        with self._samples_lock:
            self._nnz_samples.append(elapsed / max(job.nnz, 1))
        self.health.record_success(record.name)
        w0, w1 = int(reply_meta["w0"]), int(reply_meta["w1"])
        block = reply_arrays["z"]
        if block.shape != (w1 - w0, Z.shape[1]):
            raise WorkerError(
                f"remote worker {record.name!r} returned a "
                f"{block.shape} block for rows [{w0}, {w1})"
            )
        # Scatter only the row ranges this group actually covers.  A
        # group with a row gap (possible on retry re-routing) comes back
        # as a block zero-filled over [w0, w1); a full-span write would
        # overwrite rows other hosts already completed with those zeros.
        # The chunk lock makes "first completion wins" exact when a
        # hedge raced us — both sides compute identical bytes, but only
        # the winner writes and claims the chunk.
        with job.lock:
            if job.done:
                return
            for start, stop, _nnz in parts:
                Z[start:stop] = block[start - w0 : stop - w0]
            job.done = True
            job.winner = record.name

    def _hedge_job(
        self,
        job: _ChunkJob,
        A: CSRMatrix,
        spec_meta: dict,
        X: Optional[np.ndarray],
        Y: Optional[np.ndarray],
        Z: np.ndarray,
    ) -> None:
        """Speculatively execute ``job`` in-parent (tail-at-scale hedging).

        Runs through the same :func:`build_worker_config` dispatch the
        agents use, so the hedge's bytes are identical to the straggler's
        eventual reply — whichever completes first wins the chunk.
        Best-effort: a hedge failure leaves the chunk to the primary
        path and the retry rounds.
        """
        try:
            from ..core.partition import RowPartition

            spec = spec_from_meta(spec_meta)
            cfg_key = config_cache_key(spec)
            cfg = self._hedge_configs.get(cfg_key)
            if cfg is None:
                cfg = build_worker_config(spec, num_threads=1)
                self._hedge_configs[cfg_key] = cfg
            parts = [RowPartition(s, e, n) for s, e, n in job.parts]
            w0 = min(p.start for p in parts)
            w1 = max(p.stop for p in parts)
            d = X.shape[1] if X is not None else Y.shape[1]
            if X is not None:
                out_dtype = X.dtype
            elif np.issubdtype(Y.dtype, np.floating):
                out_dtype = Y.dtype
            else:  # pragma: no cover - integer Y normalised by kernels
                out_dtype = np.dtype(np.float32)
            block = np.zeros((w1 - w0, d), dtype=out_dtype)
            cfg.execute(
                A,
                X,
                Y,
                parts=parts,
                num_threads=1,
                block_size=spec["block_size"],
                strategy=spec["strategy"],
                out=block,
                row_offset=w0,
            )
            with job.lock:
                if job.done:
                    return
                for start, stop, _nnz in job.parts:
                    Z[start:stop] = block[start - w0 : stop - w0]
                job.done = True
                job.winner = "parent-hedge"
            self.hedge_wins += 1
        except Exception:
            self.hedge_errors += 1

    # ------------------------------------------------------------------ #
    # Batch dispatch
    # ------------------------------------------------------------------ #
    def run_assignments(
        self,
        key: str,
        A: CSRMatrix,
        spec_meta: dict,
        assignments: Sequence[ShardAssignment],
        X: Optional[np.ndarray],
        Y: Optional[np.ndarray],
        Z: np.ndarray,
    ) -> List[ShardAssignment]:
        """Execute ``assignments`` across live hosts, writing into ``Z``.

        Groups are routed by slot weight, dispatched concurrently (one
        thread per host), and re-routed across survivors when a host is
        lost mid-batch.  Returns the assignments that could **not** be
        completed because no live host remained — the caller executes
        those in-parent, so the batch always completes.
        """
        remaining = [a for a in assignments if a.parts]
        if not remaining:
            return []
        self.batches += 1
        first_round = True
        while remaining:
            hosts = self.live_hosts()
            if not hosts:
                self.parent_fallbacks += 1
                return remaining
            if not first_round:
                self.retries += 1
            first_round = False
            # Retry rounds rebuild ``remaining`` from thread-completion
            # order; re-sort by row start so the routed groups stay
            # row-ordered and route_shards' contiguity reasoning holds.
            remaining.sort(key=lambda a: a.parts[0].start)
            plan = ShardPlan(
                num_shards=len(remaining),
                assignments=tuple(remaining),
                total_nnz=sum(a.nnz for a in remaining),
            )
            groups = route_shards(plan, [h.slots for h in hosts])
            busy = [
                (record, group)
                for record, group in zip(hosts, groups)
                if group
            ]
            # One RUN per contiguous chunk: a merged retry group may
            # span row gaps that other hosts' finished work fills.  Each
            # chunk is a _ChunkJob — the unit the hedger can steal.
            host_jobs = [
                (record, [_ChunkJob(c) for c in _contiguous_chunks(group)])
                for record, group in busy
            ]
            all_jobs = [job for _, jobs in host_jobs for job in jobs]
            failed_jobs: List[_ChunkJob] = []
            failed_lock = threading.Lock()

            def dispatch(record: _RemoteHost, jobs: List[_ChunkJob]):
                for index, job in enumerate(jobs):
                    if job.done:
                        continue  # a hedge already completed this chunk
                    job.started_at = time.monotonic()
                    try:
                        self._run_group(
                            record, key, A, spec_meta, job, X, Y, Z
                        )
                    except (
                        ProtocolError,
                        ConnectionError,
                        OSError,
                        socket.timeout,
                    ) as exc:
                        self._mark_lost(record, str(exc))
                        with failed_lock:
                            failed_jobs.extend(jobs[index:])
                        return

            hedge_futures: List = []
            try:
                with ThreadPoolExecutor(
                    max_workers=len(host_jobs),
                    thread_name_prefix="repro-remote-dispatch",
                ) as pool:
                    pending = {
                        pool.submit(dispatch, record, jobs)
                        for record, jobs in host_jobs
                    }
                    while pending:
                        done, pending = _futures_wait(
                            pending,
                            timeout=0.05 if self.hedge else None,
                        )
                        for fut in done:
                            fut.result()
                        if pending and self.hedge:
                            self._maybe_hedge(
                                all_jobs, A, spec_meta, X, Y, Z,
                                hedge_futures,
                            )
            finally:
                # Never leave a hedge thread writing into Z after this
                # call returns (or raises): the caller may reuse the
                # buffer.  Hedges are short local computes.
                for fut in hedge_futures:
                    try:
                        fut.result()
                    except Exception:  # pragma: no cover - defensive
                        pass
            # A chunk whose host died may still have been rescued by a
            # hedge; only genuinely incomplete chunks go to the retry
            # round.
            remaining = [
                a
                for job in failed_jobs
                if not job.done
                for a in job.assignments
            ]
        return []

    def _maybe_hedge(
        self,
        jobs: Sequence[_ChunkJob],
        A: CSRMatrix,
        spec_meta: dict,
        X: Optional[np.ndarray],
        Y: Optional[np.ndarray],
        Z: np.ndarray,
        hedge_futures: List,
    ) -> None:
        """Hedge every started, unfinished chunk past its deadline."""
        now = time.monotonic()
        for job in jobs:
            if job.done or job.hedged or job.started_at is None:
                continue
            deadline = self._hedge_deadline_s(job.nnz)
            if deadline is None or now - job.started_at < deadline:
                continue
            job.hedged = True
            self.hedges += 1
            hedge_futures.append(
                self._hedge_exec.submit(
                    self._hedge_job, job, A, spec_meta, X, Y, Z
                )
            )

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Controller accounting for ``KernelRuntime.stats()`` and logs."""
        hosts = self.live_hosts()
        return {
            "port": self.port,
            "hosts": [
                {
                    "name": h.name,
                    "slots": h.slots,
                    "threads": h.threads,
                    "runs": h.runs,
                    "loaded_matrices": len(h.loaded),
                }
                for h in hosts
            ],
            "total_slots": sum(h.slots for h in hosts),
            "hosts_admitted": self.hosts_admitted,
            "hosts_lost": self.hosts_lost,
            "batches": self.batches,
            "retries": self.retries,
            "parent_fallbacks": self.parent_fallbacks,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "hedge_errors": self.hedge_errors,
            "registrations_rejected": self.registrations_rejected,
            "delta_ships": self.delta_ships,
            "delta_fallbacks": self.delta_fallbacks,
            **self.health.stats(),
        }

    def close(self, *, notify: bool = True) -> None:
        """Stop accepting, dismiss agents, close every connection.

        ``notify=False`` skips the EXIT frames — the connections are just
        severed, so agents observe a *disconnect* and keep retrying with
        backoff.  The chaos harness and the restart-recovery tests use
        this to simulate a controller crash rather than a clean
        shutdown.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        # Closing the listener does NOT wake a thread blocked in
        # accept() on Linux — the in-flight syscall keeps the listening
        # socket alive, so the port would keep completing handshakes and
        # a reconnecting agent could be admitted by this half-dead
        # controller (and then hang in a serve loop nobody drives).  A
        # throwaway self-connection forces accept() to return; the loop
        # re-checks ``_closed`` and exits without admitting anyone.
        try:
            wake_host = self.host if self.host not in ("", "0.0.0.0") else "127.0.0.1"
            wake = socket.create_connection((wake_host, self.port), timeout=0.5)
            wake.close()
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        for record in self.live_hosts():
            with record.lock:
                if notify:
                    try:
                        self._request(
                            record, OP_EXIT, {}, None, reply_timeout=1.0
                        )
                    except (
                        WorkerError,
                        ProtocolError,
                        ConnectionError,
                        OSError,
                        socket.timeout,
                    ):
                        pass
                record.close()
        with self._hosts_lock:
            self._hosts.clear()
        self._hedge_exec.shutdown(wait=True)
        self._accept_thread.join(timeout=1.0)
        self._heartbeat_thread.join(timeout=self.heartbeat_s + 1.0)

    def __enter__(self) -> "RemoteController":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RemoteController(port={self.port}, "
            f"hosts={len(self.live_hosts())}, lost={self.hosts_lost})"
        )
