"""Transport-neutral codec for the worker execution protocol.

The sharded execution tier speaks one logical protocol over two
transports: duplex pipes to local :class:`~repro.runtime.workers.WorkerPool`
processes (operands ride in shared memory) and framed TCP to remote
:mod:`~repro.runtime.remote` worker hosts (operands ride as npy blobs on
:mod:`repro.framing` frames).  This module holds everything both sides
must agree on so the transports can never drift:

* the TCP opcodes and the ``b"RK"`` :class:`~repro.framing.FrameCodec`;
* CSR and run-spec serialisation (JSON meta + named arrays — no pickles
  cross the network);
* the worker-side config rebuild (:func:`build_worker_config`) and its
  cache key (:func:`config_cache_key`), shared by the shm worker loop and
  the remote agent so a row executes through the *same* dispatch config
  whichever host it lands on.

Determinism note: a run spec carries everything data-dependent the parent
resolved (autotuned block size, the row/edge strategy choice), so rebuilt
configs execute exactly the kernel a single-process call would — the
bitwise-identity contract across shard counts extends across hosts.
"""

from __future__ import annotations

import pickle
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.patterns import OpPattern
from ..framing import FrameCodec
from ..sparse import CSRMatrix

__all__ = [
    "WORKER_MAGIC",
    "WORKER_VERSION",
    "WORKER_CODEC",
    "WORKER_MAX_PAYLOAD",
    "OP_REGISTER",
    "OP_WELCOME",
    "OP_PING",
    "OP_LOAD",
    "OP_DROP",
    "OP_RUN",
    "OP_EXIT",
    "OP_LOAD_DELTA",
    "OP_RESULT",
    "OP_ERROR",
    "encode_csr",
    "decode_csr",
    "encode_csr_delta",
    "splice_csr_delta",
    "plan_spec_from_plan",
    "remote_spec_meta",
    "spec_from_meta",
    "build_worker_config",
    "config_cache_key",
]

WORKER_MAGIC = b"RK"
WORKER_VERSION = 1

#: Default per-frame payload cap for the worker transport (both sides).
#: Frames carry whole CSRs and operand blocks, so the bound is generous —
#: but it must exist: a forged 4-byte length field must never drive an
#: unbounded allocation.  Override per agent/controller for bigger jobs.
WORKER_MAX_PAYLOAD = 1 << 30

#: agent → controller, once per connection: {"name", "slots", "threads", "pid"}
OP_REGISTER = 0x01
#: controller → agent, the registration ack: {"host_id"}
OP_WELCOME = 0x02
#: controller → agent heartbeat; answered with an empty OP_RESULT
OP_PING = 0x03
#: controller → agent: cache a CSR under meta["key"] (idempotent)
OP_LOAD = 0x10
#: controller → agent: release the CSR under meta["key"]
OP_DROP = 0x11
#: controller → agent: execute meta["parts"] row-ranges of meta["key"]
OP_RUN = 0x12
#: controller → agent: leave the serve loop
OP_EXIT = 0x13
#: controller → agent: cache meta["key"] by splicing dirty rows onto the
#: already-loaded CSR under meta["base_key"] (dynamic-graph re-ship; the
#: payload is proportional to the dirty rows, not the matrix).  Agents
#: advertise support with ``"delta": 1`` in REGISTER; the controller
#: falls back to a full OP_LOAD for agents that don't, or when the base
#: was evicted (ERROR {missing_key: base_key}).
OP_LOAD_DELTA = 0x14
#: success reply (payload depends on the request opcode)
OP_RESULT = 0x20
#: failure reply: {"status", "error"} (+ "missing_key" for evicted CSRs)
OP_ERROR = 0x21

#: The worker transport's frame codec — same mechanics as the serving
#: wire protocol (:data:`repro.serve.wire.WIRE_CODEC`), different magic.
WORKER_CODEC = FrameCodec(WORKER_MAGIC, WORKER_VERSION)


# ---------------------------------------------------------------------- #
# CSR serialisation
# ---------------------------------------------------------------------- #
def encode_csr(A: CSRMatrix) -> Tuple[dict, Dict[str, np.ndarray]]:
    """``A`` as (meta, arrays) for one LOAD payload."""
    meta = {"nrows": int(A.nrows), "ncols": int(A.ncols)}
    arrays = {
        "indptr": np.asarray(A.indptr),
        "indices": np.asarray(A.indices),
        "data": np.asarray(A.data),
    }
    return meta, arrays


def decode_csr(meta: dict, arrays: Dict[str, np.ndarray]) -> CSRMatrix:
    """Rebuild the CSR a LOAD payload carries (validated on arrival).

    ``check=False`` mirrors the shm worker: the parent validated this
    matrix when it was constructed and the npy codec is bitwise-faithful.
    """
    return CSRMatrix(
        int(meta["nrows"]),
        int(meta["ncols"]),
        arrays["indptr"],
        arrays["indices"],
        arrays["data"],
        check=False,
    )


def encode_csr_delta(
    base_key: str,
    rows: np.ndarray,
    counts: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
) -> Tuple[dict, Dict[str, np.ndarray]]:
    """A dirty-row splice as (meta, arrays) for one LOAD_DELTA payload.

    ``rows``/``counts`` name the replaced rows and their new lengths;
    ``indices``/``data`` carry the new rows' contents concatenated in row
    order — the same arguments :func:`repro.sparse.delta.splice_rows`
    takes, so both sides splice through the one shared primitive.
    """
    meta = {"base_key": str(base_key)}
    arrays = {
        "rows": np.ascontiguousarray(rows, dtype=np.int64),
        "counts": np.ascontiguousarray(counts, dtype=np.int64),
        "indices": np.ascontiguousarray(indices, dtype=np.int64),
        "data": np.ascontiguousarray(data),
    }
    return meta, arrays


def splice_csr_delta(base: CSRMatrix, arrays: Dict[str, np.ndarray]) -> CSRMatrix:
    """Rebuild the new matrix version a LOAD_DELTA payload describes."""
    from ..sparse.delta import splice_rows

    return splice_rows(
        base,
        arrays["rows"],
        arrays["counts"],
        arrays["indices"],
        arrays["data"],
    )


# ---------------------------------------------------------------------- #
# Run specs
# ---------------------------------------------------------------------- #
def plan_spec_from_plan(plan) -> Optional[Dict[str, object]]:
    """The picklable execution spec of a :class:`~repro.runtime.plan.KernelPlan`.

    Workers rebuild the dispatch config from this spec; the parent resolves
    everything data-dependent (autotuned block size, the row/edge strategy
    choice) *before* shipping, so every worker executes exactly the kernel a
    single-process call would.  Returns ``None`` when the pattern cannot be
    pickled (user-supplied lambda operators) — callers fall back to
    in-process execution.
    """
    spec = {
        "op_pattern": plan.op_pattern,
        "backend": plan.backend,
        "block_size": plan.block_size,
        "strategy": plan.strategy,
    }
    try:
        pickle.dumps(spec["op_pattern"])
    except Exception:
        return None
    return spec


_PATTERN_SLOTS = ("vop", "rop", "sop", "mop", "aop")


def remote_spec_meta(spec: Optional[Dict[str, object]]) -> Optional[dict]:
    """A run spec as JSON-able RUN meta, or ``None`` if not remotable.

    The network transport is stricter than the pipe transport: patterns
    cross as their five operator *names*, so a pattern is remotable only
    when every slot is a registered-operator name (every built-in pattern
    is).  Callable operators — even picklable ones — stay host-local.
    """
    if spec is None:
        return None
    pattern: OpPattern = spec["op_pattern"]
    slots = {slot: getattr(pattern, slot) for slot in _PATTERN_SLOTS}
    if not all(isinstance(value, str) for value in slots.values()):
        return None
    return {
        "pattern": {"name": pattern.name, **slots},
        "backend": spec["backend"],
        "block_size": spec["block_size"],
        "strategy": spec["strategy"],
    }


def spec_from_meta(meta: dict) -> Dict[str, object]:
    """Rebuild the worker-side run spec a RUN meta describes."""
    pattern = dict(meta["pattern"])
    op_pattern = OpPattern(
        name=str(pattern["name"]),
        **{slot: str(pattern[slot]) for slot in _PATTERN_SLOTS},
    )
    block_size = meta["block_size"]
    return {
        "op_pattern": op_pattern,
        "backend": str(meta["backend"]),
        "block_size": None if block_size is None else int(block_size),
        "strategy": str(meta["strategy"]),
    }


# ---------------------------------------------------------------------- #
# Worker-side config rebuild (shared by shm workers and remote agents)
# ---------------------------------------------------------------------- #
def build_worker_config(spec: Dict[str, object], *, num_threads: int = 1):
    """Rebuild the dispatch config a run spec describes (worker side)."""
    from .plan import make_config

    op_pattern = spec["op_pattern"]
    return make_config(
        op_pattern,
        op_pattern.resolved(),
        backend=spec["backend"],
        block_size=spec["block_size"],
        strategy=spec["strategy"],
        num_threads=num_threads,
    )


def config_cache_key(spec: Dict[str, object]) -> tuple:
    """Hashable identity of a run spec's dispatch config."""
    from .plan import pattern_key

    return (
        pattern_key(spec["op_pattern"].resolved()),
        spec["backend"],
        spec["block_size"],
        spec["strategy"],
    )
