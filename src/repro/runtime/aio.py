"""Asyncio bridge from coroutines to the runtime's pool/worker futures.

The :class:`~repro.runtime.runtime.KernelRuntime` is a synchronous,
thread-and-process engine: ``submit``/``submit_sharded`` hand back
:class:`concurrent.futures.Future` objects resolved by the shared thread
pool or the worker pool's background dispatcher, and ``run_batch`` blocks
the calling thread for the duration of the batch.  The serving subsystem
(:mod:`repro.serve`) lives in an asyncio event loop, where blocking either
kind of call would stall every connection.  This module is the one place
the two worlds meet:

* :func:`wrap_runtime_future` — await a pool/worker future from a
  coroutine without blocking the loop;
* :func:`run_batch_async` — run :meth:`KernelRuntime.run_batch` on an
  executor thread and await the results;
* :func:`submit_sharded_async` — plan on the caller (so plan-cache
  accounting stays ordered, exactly like the sync API) and await the
  worker tier's future.

Nothing here changes scheduling: the same partitions, the same shard
assignment and the same kernels run whether a call arrives through the
sync API or through this bridge, so the bitwise-identity contract of the
runtime carries over to async callers unchanged.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor, Future
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["wrap_runtime_future", "run_batch_async", "submit_sharded_async"]


def wrap_runtime_future(
    future: "Future[np.ndarray]",
    *,
    loop: Optional[asyncio.AbstractEventLoop] = None,
) -> "asyncio.Future[np.ndarray]":
    """An awaitable view of a runtime ``concurrent.futures.Future``.

    Works for both flavours the runtime produces: futures backed by the
    shared thread pool (``submit``) and futures resolved by the worker
    pool's dispatcher thread (``submit_sharded``), including the
    already-completed futures the fallback paths return.
    """
    return asyncio.wrap_future(future, loop=loop)


async def run_batch_async(
    runtime,
    requests: Sequence,
    *,
    executor: Optional[Executor] = None,
) -> List[np.ndarray]:
    """Await :meth:`KernelRuntime.run_batch` without blocking the loop.

    The batch executes on ``executor`` (the loop's default thread pool when
    ``None``); results come back in request order with the same bitwise
    guarantees as the sync call.
    """
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(executor, runtime.run_batch, list(requests))


async def submit_sharded_async(runtime, A, X=None, Y=None, **plan_opts) -> np.ndarray:
    """Plan-and-await one sharded execution from a coroutine.

    Planning happens synchronously on the loop thread (it is a cache
    lookup after the first call); the kernel work itself runs on the
    worker processes — or, without a worker pool, on the loop's default
    executor so the fallback cannot stall the loop either.
    """
    if runtime.workers is not None:
        return await wrap_runtime_future(
            runtime.submit_sharded(A, X, Y, **plan_opts)
        )
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(
        None, lambda: runtime.run_sharded(A, X, Y, **plan_opts)
    )
