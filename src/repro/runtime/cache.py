"""LRU cache of FusedMM execution plans.

One entry per ``(matrix fingerprint, pattern, backend, num_threads,
block_size, strategy, autotune)`` combination — the full key under which a
plan's resolution, partitioning and tuning decisions are valid.  Repeated
calls on the same adjacency (the every-epoch training-loop case) hit the
cache and skip straight to kernel execution.

The cache is bounded and evicts least-recently-used plans; hit/miss/
eviction counts are tracked so tests and dashboards can observe cache
effectiveness.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

__all__ = ["CacheStats", "PlanCache"]


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time accounting of a :class:`PlanCache`."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reports and logs."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": round(self.hit_rate, 4),
        }


class PlanCache:
    """Thread-safe LRU mapping of plan keys to execution plans."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    def get(self, key: Hashable):
        """Return the cached plan for ``key`` (marking it most-recently
        used) or ``None`` on a miss."""
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return plan

    def put(self, key: Hashable, plan) -> None:
        """Insert a plan, evicting the least-recently-used entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = plan
                return
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = plan

    def clear(self) -> None:
        """Drop every cached plan (counters are kept)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Tuple[Hashable, ...]:
        """Snapshot of the cached keys, LRU-first."""
        with self._lock:
            return tuple(self._entries.keys())

    def stats(self) -> CacheStats:
        """Current hit/miss/eviction accounting."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )
