"""LRU cache of FusedMM execution plans.

One entry per ``(matrix fingerprint, pattern, backend, num_threads,
block_size, strategy, autotune, reorder)`` combination — the full key
under which a plan's resolution, partitioning, tuning and locality
(vertex-reordering) decisions are valid.  Repeated calls on the same
adjacency (the every-epoch training-loop case) hit the cache and skip
straight to kernel execution; asking for a different ``reorder=`` strategy
is a different plan, so bitwise-exact (``"none"``) and reordered plans
coexist without invalidating each other.

The cache is bounded twice — by entry count and by *retained bytes* —
and evicts least-recently-used plans.  The byte bound exists for the
locality tier: a reordered plan pins a permuted copy of its adjacency
plus compacted panels (roughly 2× the matrix), so a count bound alone
would let a serving loop over many large graphs grow without limit.
Entries report their weight through an optional ``retained_bytes()``
method; plans without one weigh zero.  Hit/miss/eviction counts are
tracked so tests and dashboards can observe cache effectiveness.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

__all__ = ["CacheStats", "PlanCache"]


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time accounting of a :class:`PlanCache`."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    retained_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reports and logs."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "retained_bytes": self.retained_bytes,
            "hit_rate": round(self.hit_rate, 4),
        }


#: Default ceiling on the bytes cached plans may retain (permuted
#: matrices + panels of the locality tier).  The most-recent entry is
#: always kept even when it alone exceeds the budget — a cache that
#: refused the plan just built would defeat its purpose.
DEFAULT_BYTE_BUDGET = 2 * 1024 * 1024 * 1024


class PlanCache:
    """Thread-safe LRU mapping of plan keys to execution plans."""

    def __init__(
        self, capacity: int = 64, *, byte_budget: int = DEFAULT_BYTE_BUDGET
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        if byte_budget < 1:
            raise ValueError(f"byte_budget must be >= 1, got {byte_budget}")
        self.capacity = capacity
        self.byte_budget = byte_budget
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        # Entry weights, computed once at insert (plans are immutable
        # after build — weighing panel lists on every put/stats would be
        # O(entries × panels)).
        self._weights: Dict[Hashable, int] = {}
        self._retained = 0
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @staticmethod
    def _weight(plan) -> int:
        weigh = getattr(plan, "retained_bytes", None)
        return int(weigh()) if callable(weigh) else 0

    # ------------------------------------------------------------------ #
    def get(self, key: Hashable):
        """Return the cached plan for ``key`` (marking it most-recently
        used) or ``None`` on a miss."""
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return plan

    def put(self, key: Hashable, plan) -> None:
        """Insert a plan, evicting least-recently-used entries while the
        cache is over its entry count or its retained-byte budget."""
        weight = self._weight(plan)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = plan
                self._retained += weight - self._weights[key]
                self._weights[key] = weight
                return
            self._entries[key] = plan
            self._weights[key] = weight
            self._retained += weight
            while len(self._entries) > 1 and (
                len(self._entries) > self.capacity
                or self._retained > self.byte_budget
            ):
                evicted, _ = self._entries.popitem(last=False)
                self._retained -= self._weights.pop(evicted)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every cached plan (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._weights.clear()
            self._retained = 0

    # ------------------------------------------------------------------ #
    # Fingerprint-targeted operations (dynamic graphs / leak fix)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _key_fingerprint(key: Hashable) -> str:
        return str(getattr(key, "fingerprint", "") or "")

    @staticmethod
    def _covers(fingerprint: str, key_fp: str) -> bool:
        """Whether ``key_fp`` belongs to ``fingerprint``'s lineage.

        Matches the fingerprint itself, its derived keys
        (``<fp>|reorder=...``) and — when given a bare lineage hash — its
        versioned descendants (``<fp>@vN`` and their derived keys), so one
        call can retire a whole graph or exactly one superseded version.
        """
        if not key_fp or not fingerprint:
            return False
        return (
            key_fp == fingerprint
            or key_fp.startswith(fingerprint + "|")
            or key_fp.startswith(fingerprint + "@")
        )

    def evict_fingerprint(self, fingerprint: str) -> int:
        """Drop every plan keyed on ``fingerprint`` (or a key derived from
        it); returns the number of entries removed."""
        with self._lock:
            doomed = [
                key
                for key in self._entries
                if self._covers(fingerprint, self._key_fingerprint(key))
            ]
            for key in doomed:
                del self._entries[key]
                self._retained -= self._weights.pop(key)
                self._evictions += 1
            return len(doomed)

    def entries_for(self, fingerprint: str) -> Tuple[Tuple[Hashable, object], ...]:
        """Snapshot of ``(key, plan)`` pairs in ``fingerprint``'s lineage."""
        with self._lock:
            return tuple(
                (key, plan)
                for key, plan in self._entries.items()
                if self._covers(fingerprint, self._key_fingerprint(key))
            )

    def bytes_for(self, fingerprint: str) -> Dict[str, int]:
        """``{"plans": n, "plan_bytes": b}`` retained for one lineage."""
        with self._lock:
            keys = [
                key
                for key in self._entries
                if self._covers(fingerprint, self._key_fingerprint(key))
            ]
            return {
                "plans": len(keys),
                "plan_bytes": sum(self._weights[key] for key in keys),
            }

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Tuple[Hashable, ...]:
        """Snapshot of the cached keys, LRU-first."""
        with self._lock:
            return tuple(self._entries.keys())

    def stats(self) -> CacheStats:
        """Current hit/miss/eviction accounting."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
                retained_bytes=self._retained,
            )
