"""Batched kernel runtime: plan caching, request batching, epoch streams.

This package is the serving/scheduling layer above :mod:`repro.core`:

``fingerprint``  content hashes of sparse matrices (plan-cache keys)
``cache``        bounded LRU of execution plans with hit/miss accounting
``plan``         matrix-bound execution plans (resolution + tuning + parts)
``batch``        request packing (block-diagonal) and scheduling metadata
``shard``        nnz-balanced assignment of plan partitions to worker shards
``workers``      persistent multiprocessing pool with shared-memory CSR
``codec``        transport-neutral worker protocol (specs, CSR payloads)
``remote``       distributed tier: TCP worker hosts + in-runtime controller
``dynamic``      dynamic graphs: versioned delta overlays with incremental
                 plan/panel/shard invalidation
``options``      :class:`RuntimeOptions` — the shared kernel-knob dataclass
``runtime``      :class:`KernelRuntime` — run / submit / run_batch / epochs
                 / run_sharded / submit_sharded
``aio``          asyncio bridge: await pool/worker futures and run_batch
                 from coroutines (the serving subsystem's entry point)

Typical usage::

    from repro.runtime import KernelRuntime, KernelRequest

    rt = KernelRuntime(num_threads=4, cache_size=32)
    Z = rt.run(A, X, pattern="sigmoid_embedding")      # planned + cached
    outs = rt.run_batch([KernelRequest(A_i, X_i) for ...])
    stream = rt.epochs(A, pattern="gcn")
    for epoch in range(50):
        H = stream.step(H)
"""

from .aio import run_batch_async, submit_sharded_async, wrap_runtime_future
from .batch import KernelRequest, PackedBatch, pack_requests
from .cache import CacheStats, PlanCache
from .dynamic import DynamicGraph, GraphVersion, MutationResult, refresh_plan
from .fingerprint import (
    clear_fingerprint_memo,
    derived_fingerprint,
    fingerprint_covers,
    fingerprint_memo_info,
    matrix_fingerprint,
    pin_fingerprint,
)
from .options import RuntimeOptions
from .plan import KernelPlan, PlanKey, build_plan, pattern_key
from .remote import RemoteController, WorkerAgent
from .runtime import EpochStream, KernelRuntime
from .shard import ShardAssignment, ShardPlan, assign_shards, route_shards
from .workers import WorkerPool, default_start_method

__all__ = [
    "KernelRuntime",
    "EpochStream",
    "RuntimeOptions",
    "ShardPlan",
    "ShardAssignment",
    "assign_shards",
    "route_shards",
    "WorkerPool",
    "WorkerAgent",
    "RemoteController",
    "default_start_method",
    "KernelRequest",
    "KernelPlan",
    "PlanKey",
    "PlanCache",
    "CacheStats",
    "PackedBatch",
    "pack_requests",
    "pattern_key",
    "build_plan",
    "DynamicGraph",
    "GraphVersion",
    "MutationResult",
    "refresh_plan",
    "matrix_fingerprint",
    "derived_fingerprint",
    "pin_fingerprint",
    "fingerprint_covers",
    "fingerprint_memo_info",
    "clear_fingerprint_memo",
    "wrap_runtime_future",
    "run_batch_async",
    "submit_sharded_async",
]
