"""Structural fingerprints of sparse matrices.

The plan cache of :mod:`repro.runtime` keys execution plans on the
*content* of the adjacency matrix, not on object identity: two ``CSRMatrix``
instances holding the same rows/columns/values map to the same plan, and a
matrix that is rebuilt between epochs still hits the cache.

Hashing is O(nnz) (one pass over ``indptr``/``indices``/``data`` with
BLAKE2b), which is far cheaper than a kernel call (O(nnz × d)) but not
free; fingerprints are therefore memoised per matrix *instance* using weak
references, so the common case — the same adjacency object re-submitted
every epoch — hashes exactly once.

Matrices are treated as immutable once they have been handed to the
runtime: mutating ``A.data`` in place after a call will not invalidate the
memoised fingerprint (rebuild the matrix, or call
:func:`matrix_fingerprint` with ``use_memo=False``, if you must).
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from typing import Dict

from ..sparse import CSRMatrix, as_csr

__all__ = [
    "matrix_fingerprint",
    "derived_fingerprint",
    "pin_fingerprint",
    "fingerprint_covers",
    "fingerprint_memo_info",
    "clear_fingerprint_memo",
]

_MEMO: Dict[int, str] = {}
_MEMO_LOCK = threading.Lock()


def _evict(obj_id: int) -> None:
    with _MEMO_LOCK:
        _MEMO.pop(obj_id, None)


def _compute(A: CSRMatrix) -> str:
    h = hashlib.blake2b(digest_size=16)
    h.update(f"csr:{A.nrows}:{A.ncols}:{A.nnz}".encode())
    h.update(A.indptr.tobytes())
    h.update(A.indices.tobytes())
    h.update(f"dtype:{A.data.dtype.str}".encode())
    h.update(A.data.tobytes())
    return h.hexdigest()


def matrix_fingerprint(A, *, use_memo: bool = True) -> str:
    """Content hash of a sparse matrix (shape, structure and values).

    Accepts anything :func:`repro.sparse.as_csr` accepts.  The result is a
    32-character hex digest, stable across processes and platforms for
    identical CSR content.
    """
    A = as_csr(A)
    if not use_memo:
        return _compute(A)
    obj_id = id(A)
    with _MEMO_LOCK:
        cached = _MEMO.get(obj_id)
    if cached is not None:
        return cached
    digest = _compute(A)
    try:
        weakref.finalize(A, _evict, obj_id)
    except TypeError:  # pragma: no cover - non-weakref-able matrix type
        return digest
    with _MEMO_LOCK:
        _MEMO[obj_id] = digest
    return digest


def pin_fingerprint(A, fingerprint: str) -> str:
    """Pin an explicit fingerprint for a matrix *instance*.

    The dynamic-graph tier names each materialised version with a
    **versioned** fingerprint (``<lineage>@v<N>``) instead of a content
    hash: the lineage is stable across compaction (same edge set, new
    representation) and cheap to derive (no O(nnz) hashing per mutation).
    Pinning seeds the per-instance memo, so every cache tier that calls
    :func:`matrix_fingerprint` — plan cache, reorder memo, worker ship
    keys, remote host LRUs — keys this instance on the versioned name.
    The pin lives exactly as long as the instance (weakref-backed).
    """
    A = as_csr(A)
    obj_id = id(A)
    try:
        weakref.finalize(A, _evict, obj_id)
    except TypeError:  # pragma: no cover - non-weakref-able matrix type
        return fingerprint
    with _MEMO_LOCK:
        _MEMO[obj_id] = str(fingerprint)
    return fingerprint


def derived_fingerprint(fingerprint: str, tag: str) -> str:
    """Key for a matrix *derived deterministically* from a fingerprinted one.

    The locality tier ships the reordered adjacency to the shard workers
    under ``derived_fingerprint(fp, "reorder=degree")`` and the like: the
    permuted matrix is a pure function of (content, strategy), so deriving
    the key is exact and avoids re-hashing O(nnz) bytes that the original
    fingerprint already covers.
    """
    return f"{fingerprint}|{tag}"


def fingerprint_covers(fingerprint: str, key: str) -> bool:
    """Whether cache/ship key ``key`` belongs to ``fingerprint``'s lineage.

    True for the fingerprint itself, keys derived from it
    (``<fp>|reorder=...``) and versioned descendants (``<fp>@vN`` plus
    *their* derived keys).  Every tier that unships by fingerprint — plan
    cache, worker shared memory, remote host LRUs — uses this one
    predicate so the notion of "belongs to that graph" cannot drift.
    """
    if not fingerprint or not key:
        return False
    return (
        key == fingerprint
        or key.startswith(fingerprint + "|")
        or key.startswith(fingerprint + "@")
    )


def fingerprint_memo_info() -> Dict[str, int]:
    """Number of live memoised fingerprints (for tests and diagnostics)."""
    with _MEMO_LOCK:
        return {"memoized": len(_MEMO)}


def clear_fingerprint_memo() -> None:
    """Drop all memoised fingerprints (mainly for tests)."""
    with _MEMO_LOCK:
        _MEMO.clear()
