"""Execution plans: the unit the batched kernel runtime caches.

A :class:`KernelPlan` is everything about a FusedMM call that does *not*
depend on the feature matrices:

* the resolved operator pattern (Table III row or user overrides),
* the chosen backend kind and concrete kernel callable (the same
  specialized → generated → optimized → generic resolution order as
  :func:`repro.core.fused.fusedmm`),
* the effective blocking strategy and edge-block size (autotuned once when
  requested),
* the nnz-balanced row partitioning of the bound adjacency,
* the **locality tier** (``reorder=``): a vertex permutation of the bound
  adjacency (:mod:`repro.sparse.reorder`) plus pre-compacted cache-blocked
  row panels.  The permutation and the panels are computed once at plan
  build (memoised next to the matrix fingerprint); every execution
  permutes the operands, runs the panels against compact cache-resident
  operand slices, and maps the output back to the original vertex order —
  callers never see permuted data.

Plans are built once per ``(matrix fingerprint, pattern, backend,
num_threads, block_size, strategy, autotune, reorder)`` key and then
executed many times — every epoch of a training loop, every request of a
batch — via :meth:`KernelPlan.execute`, which accepts an explicit
partition list and a shared thread pool so the runtime controls
scheduling.

Reordered execution re-associates each row's neighbour accumulation (the
columns are re-sorted under the new numbering), so its results are
*allclose*-equivalent to the natural ordering rather than bitwise
identical; ``reorder="none"`` (the default) leaves every existing bitwise
guarantee untouched.
"""

from __future__ import annotations

import math
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..core import jit as jit_backend
from ..core.autotune import (
    ReorderTuning,
    TuningResult,
    autotune,
    autotune_reorder,
    cached_reorder_tuning,
)
from ..core.codegen import compile_kernel, supports_pattern
from ..core.fused import BACKENDS
from ..core.generic import fusedmm_generic
from ..core.optimized import DEFAULT_BLOCK_SIZE, fusedmm_optimized
from ..core.partition import RowPartition, part1d
from ..core.patterns import OpPattern, ResolvedPattern
from ..core.specialized import get_specialized_kernel, spmm_kernel
from ..errors import BackendError
from ..sparse import CSRMatrix, as_csr
from ..sparse.reorder import (
    REORDER_STRATEGIES,
    PanelBlock,
    ReorderResult,
    average_bandwidth,
    build_panels,
    cache_block_partitions,
    memoize_reorder,
    reorder_matrix,
    validate_reorder,
)
from .fingerprint import matrix_fingerprint

__all__ = [
    "KernelPlan",
    "PlanKey",
    "pattern_key",
    "build_plan",
    "make_config",
    "effective_strategy",
]


def pattern_key(resolved: ResolvedPattern) -> Tuple[Tuple[str, str], ...]:
    """Hashable identity of a resolved pattern (its five operator names)."""
    return tuple(sorted(resolved.op_names().items()))


@dataclass(frozen=True)
class PlanKey:
    """Full cache key of an execution plan."""

    fingerprint: str
    pattern: Tuple[Tuple[str, str], ...]
    backend: str
    num_threads: int
    block_size: int  # 0 = backend default / autotuned
    strategy: str
    autotune: bool
    #: vertex-reordering strategy of the locality tier ("none" = natural
    #: order, bitwise-exact legacy path)
    reorder: str = "none"


@dataclass
class KernelPlan:
    """A reusable, matrix-bound FusedMM execution plan."""

    key: PlanKey
    op_pattern: OpPattern
    resolved: ResolvedPattern
    #: "jit" | "specialized" | "generated" | "optimized" | "generic"
    kind: str
    #: requested backend ("auto" keeps the generic fallback of fusedmm())
    backend: str
    block_size: int
    strategy: str
    num_threads: int
    nnz: int
    shape: Tuple[int, int]
    #: nnz-balanced partitions used when the runtime splits this job
    #: (cache-blocked panel boundaries when the plan is reordered)
    partitions: Sequence[RowPartition] = field(default_factory=list)
    #: number of split tasks the runtime schedules for this job
    nsplit: int = 1
    tuning: Optional[TuningResult] = None
    #: concrete kernel callable for specialized/generated kinds
    kernel: Optional[Callable] = None
    #: resolved locality strategy ("none" keeps the legacy bitwise path)
    reorder: str = "none"
    #: ``perm[new] = old`` / ``inv_perm[old] = new`` vertex permutation
    perm: Optional[np.ndarray] = field(default=None, repr=False)
    inv_perm: Optional[np.ndarray] = field(default=None, repr=False)
    #: the symmetrically permuted adjacency the reordered path executes
    reordered: Optional[CSRMatrix] = field(default=None, repr=False)
    #: pre-compacted cache-blocked panels of ``reordered``
    panels: Sequence[PanelBlock] = field(default_factory=list, repr=False)
    #: measured reorder sweep (when ``reorder="auto"`` was requested)
    reorder_tuning: Optional[ReorderTuning] = None
    #: mean |row − col| of ``reordered`` when the permutation was attached —
    #: the dynamic-graph tier carries the permutation across mutations only
    #: while the mutated matrix stays within a factor of this bound
    reorder_bandwidth: Optional[float] = None
    #: times this plan has been executed
    calls: int = 0
    _calls_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # ------------------------------------------------------------------ #
    @property
    def supports_parts(self) -> bool:
        """Whether the plan's kernel accepts an explicit partition list
        (everything except the pure-Python reference backend does)."""
        return self.kind != "generic"

    @property
    def is_spmm_like(self) -> bool:
        """Whether the pattern ignores X (pure A·Y aggregation)."""
        return self.resolved.is_spmm_like

    def retained_bytes(self) -> int:
        """Bytes this plan pins beyond bookkeeping.

        Natural-order plans hold no matrix data (the caller owns the
        adjacency), so they weigh nothing; reordered plans retain the
        permuted CSR copy, the permutation arrays and the compacted panel
        sub-CSRs.  The plan LRU uses this to bound its total footprint.
        """
        if self.reordered is None:
            return 0
        total = self.reordered.memory_bytes() + 2 * 8 * self.reordered.nrows
        for panel in self.panels:
            if panel.matrix is not None:
                # Count only the panel's fresh allocations: its localised
                # index and indptr arrays plus the distinct-column map.
                # The value array is a view into ``reordered.data`` —
                # already counted above.
                total += (
                    8 * panel.matrix.nnz
                    + 8 * (panel.matrix.nrows + 1)
                    + 8 * panel.cols.shape[0]
                )
        return total

    # ------------------------------------------------------------------ #
    def matches_bound(self, A) -> bool:
        """Whether ``A`` has the exact content this plan was built for.

        Cheap shape/nnz pre-check, then the (per-instance memoised)
        content fingerprint — so the common same-object-every-epoch case
        costs a dict lookup.  Derived matrices (minibatch slices, sampled
        negatives) fail here and execute on the direct path.
        """
        if not self.key.fingerprint:
            return False
        A = as_csr(A)
        if A.shape != self.shape or A.nnz != self.nnz:
            return False
        return matrix_fingerprint(A) == self.key.fingerprint

    def permute_operands(self, X, Y):
        """``(X[perm], Y[perm])`` with ``Y is X`` aliasing preserved."""
        perm = self.perm
        Xp = None if X is None else np.ascontiguousarray(X[perm])
        if Y is None:
            Yp = None
        elif Y is X:
            Yp = Xp
        else:
            Yp = np.ascontiguousarray(Y[perm])
        return Xp, Yp

    def execute(
        self,
        A,
        X,
        Y=None,
        *,
        parts: Optional[Sequence[RowPartition]] = None,
        pool: Optional[ThreadPoolExecutor] = None,
        num_threads: Optional[int] = None,
        block_size: Optional[int] = None,
        strategy: Optional[str] = None,
        out: Optional[np.ndarray] = None,
        row_offset: int = 0,
    ) -> np.ndarray:
        """Run the planned kernel on (possibly new) operands.

        ``A`` is usually the matrix the plan was built for (or another
        instance with identical content); minibatch row slices and sampled
        negative matrices may also be passed — the resolution and dispatch
        decisions still apply, only the partitioning is recomputed by the
        kernel when ``parts`` is not given.  Reordered plans detect the
        bound matrix by fingerprint and route it through the locality
        tier; derived matrices always run on the direct (natural-order)
        path.

        ``out=``/``row_offset=`` pass straight through to the kernels'
        shared output surface: shard workers hand in a view of their row
        range of the shared output segment, so no worker ever allocates a
        full ``(nrows, d)`` result.  On the reordered path the permuted
        result is scattered back into the requested window, so callers see
        original vertex order either way.  ``parts``/``block_size``/
        ``strategy`` overrides only apply to the direct path: a reordered
        plan's blocking *is* its pre-compacted panels, so the overrides
        are ignored when the bound matrix routes through the locality
        tier (execute on a ``reorder="none"`` plan to A/B blocking
        parameters).
        """
        with self._calls_lock:
            self.calls += 1
        if (
            self.reorder != "none"
            and self.reordered is not None
            and self.matches_bound(A)
        ):
            return self._execute_reordered(
                X,
                Y,
                pool=pool,
                num_threads=num_threads,
                out=out,
                row_offset=row_offset,
            )
        return self._kernel_call(
            A,
            X,
            Y,
            parts=parts,
            pool=pool,
            num_threads=num_threads,
            block_size=block_size,
            strategy=strategy,
            out=out,
            row_offset=row_offset,
        )

    # ------------------------------------------------------------------ #
    def _execute_reordered(
        self,
        X,
        Y,
        *,
        pool: Optional[ThreadPoolExecutor] = None,
        num_threads: Optional[int] = None,
        out: Optional[np.ndarray] = None,
        row_offset: int = 0,
    ) -> np.ndarray:
        """The locality tier: permute operands once, run the pre-compacted
        cache-blocked panels, map the output back to original order.

        Each panel call gathers its distinct destination rows into a
        compact buffer sized for the panel budget, so the per-edge gathers
        hit cache instead of walking the full dense operand.  Panels write
        disjoint row ranges of the permuted output, so they fan out over
        the shared pool exactly like natural-order partitions.
        """
        Ap = self.reordered
        Xp, Yp = self.permute_operands(X, Y)
        ref = Xp if Xp is not None else Yp
        Zp = np.empty((Ap.nrows, ref.shape[1]), dtype=ref.dtype)

        def run_panel(panel: PanelBlock) -> None:
            zw = Zp[panel.start : panel.stop]
            if panel.matrix is None:
                # Compaction skipped (panel touches ~every column): run a
                # windowed call on the full permuted matrix instead.
                self._kernel_call(
                    Ap,
                    Xp,
                    Yp,
                    num_threads=1,
                    out=zw,
                    row_offset=panel.start,
                )
                return
            Xs = None if Xp is None else Xp[panel.start : panel.stop]
            Ys = (Yp if Yp is not None else Xp)[panel.cols]
            self._kernel_call(
                panel.matrix, Xs, Ys, num_threads=1, out=zw, row_offset=0
            )

        nt = self.num_threads if num_threads is None else num_threads
        if pool is not None and nt > 1 and len(self.panels) > 1:
            futures = [pool.submit(run_panel, p) for p in self.panels]
            for fut in futures:
                fut.result()
        else:
            for panel in self.panels:
                run_panel(panel)

        if out is None:
            return Zp[self.inv_perm]
        out[...] = Zp[self.inv_perm[row_offset : row_offset + out.shape[0]]]
        return out

    # ------------------------------------------------------------------ #
    def _kernel_call(
        self,
        A,
        X,
        Y=None,
        *,
        parts: Optional[Sequence[RowPartition]] = None,
        pool: Optional[ThreadPoolExecutor] = None,
        num_threads: Optional[int] = None,
        block_size: Optional[int] = None,
        strategy: Optional[str] = None,
        out: Optional[np.ndarray] = None,
        row_offset: int = 0,
    ) -> np.ndarray:
        """Direct dispatch of the resolved kernel (no reorder handling).

        Does not touch the ``calls`` counter — :meth:`execute` counts one
        per planned execution, while this method also runs once per panel
        on the reordered path and for build-time sweep trials.
        """
        nt = self.num_threads if num_threads is None else num_threads
        bs = self.block_size if block_size is None else block_size

        if self.kind == "generic":
            return fusedmm_generic(
                A, X, Y, pattern=self.op_pattern, out=out, row_offset=row_offset
            )

        if self.kind in ("jit", "specialized", "generated"):
            if X is None:
                if not self.is_spmm_like:
                    raise BackendError(
                        f"pattern {self.resolved.name!r} needs source features X"
                    )
                if self.kind == "jit":
                    return self.kernel(
                        A,
                        None,
                        Y,
                        block_size=bs,
                        num_threads=nt,
                        parts=parts,
                        pool=pool,
                        out=out,
                        row_offset=row_offset,
                    )
                return spmm_kernel(
                    A,
                    Y,
                    block_size=bs,
                    num_threads=nt,
                    parts=parts,
                    pool=pool,
                    out=out,
                    row_offset=row_offset,
                )
            return self.kernel(
                A,
                X,
                Y,
                block_size=bs,
                num_threads=nt,
                parts=parts,
                pool=pool,
                out=out,
                row_offset=row_offset,
            )

        # optimized (with the same last-resort fallback as fusedmm())
        try:
            return fusedmm_optimized(
                A,
                X,
                Y,
                pattern=self.op_pattern,
                strategy=self.strategy if strategy is None else strategy,
                block_size=bs,
                num_threads=nt,
                parts=parts,
                pool=pool,
                out=out,
                row_offset=row_offset,
            )
        except Exception:
            if self.backend == "optimized":
                raise
            return fusedmm_generic(
                A, X, Y, pattern=self.op_pattern, out=out, row_offset=row_offset
            )

    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, object]:
        """Human-readable plan summary (for logs, reports and tests)."""
        info = {
            "pattern": self.resolved.name,
            "ops": self.resolved.op_names(),
            "backend": self.backend,
            "kind": self.kind,
            "strategy": self.strategy,
            "block_size": self.block_size,
            "num_threads": self.num_threads,
            "nsplit": self.nsplit,
            "partitions": len(self.partitions),
            "nnz": self.nnz,
            "shape": self.shape,
            "calls": self.calls,
            "fingerprint": self.key.fingerprint,
            "reorder": self.reorder,
        }
        if self.reorder != "none":
            info["panels"] = len(self.panels)
            info["compacted_panels"] = sum(
                1 for p in self.panels if p.matrix is not None
            )
        if self.reorder_tuning is not None:
            info["reorder_tuning"] = self.reorder_tuning.as_dict()
        if self.tuning is not None:
            info["tuning"] = self.tuning.as_dict()
        return info


# ---------------------------------------------------------------------- #
def make_config(
    op_pattern: OpPattern,
    resolved: ResolvedPattern,
    *,
    backend: str = "auto",
    block_size: Optional[int] = None,
    strategy: str = "auto",
    num_threads: int = 1,
) -> KernelPlan:
    """A matrix-independent dispatch config (a plan without a matrix).

    Used by :meth:`KernelRuntime.run_batch` for small one-shot requests:
    resolution and backend dispatch are still amortised (the config is
    cached per pattern/backend/blocking tuple), but no fingerprint is
    computed and the plan LRU is not churned by throwaway matrices.
    """
    if backend not in BACKENDS:
        raise BackendError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    kind, kernel = _resolve_kind(resolved, backend)
    key = PlanKey(
        fingerprint="",
        pattern=pattern_key(resolved),
        backend=backend,
        num_threads=num_threads,
        block_size=block_size or 0,
        strategy=strategy,
        autotune=False,
    )
    return KernelPlan(
        key=key,
        op_pattern=op_pattern,
        resolved=resolved,
        kind=kind,
        backend=backend,
        block_size=block_size or DEFAULT_BLOCK_SIZE,
        strategy=strategy,
        num_threads=num_threads,
        nnz=0,
        shape=(0, 0),
        partitions=[],
        nsplit=1,
        kernel=kernel,
    )


def _auto_strategy(A) -> str:
    """The data-dependent row/edge choice of ``fusedmm_optimized('auto')``."""
    return "row" if A.avg_degree() >= 32 else "edge"


def effective_strategy(plan: KernelPlan, A) -> str:
    """The blocking strategy a standalone call on ``A`` would pick."""
    if plan.kind == "optimized" and plan.strategy == "auto":
        return _auto_strategy(A)
    return plan.strategy


def _resolve_kind(resolved: ResolvedPattern, backend: str, *, allow_jit: bool = True):
    """Mirror the fusedmm() backend resolution order; returns (kind, kernel).

    ``allow_jit=False`` skips the JIT tier for ``auto`` — used when the
    autotuner measured the NumPy kernels as faster for this problem.
    """
    if backend == "generic":
        return "generic", None
    if backend == "jit" or (
        backend == "auto"
        and allow_jit
        and jit_backend.jit_available()
        and jit_backend.jit_supports_pattern(resolved)
    ):
        # get_jit_kernel raises BackendError for unsupported explicit "jit";
        # auto only lands here when the pattern is supported.
        return "jit", jit_backend.get_jit_kernel(resolved)
    if backend in ("specialized", "auto"):
        kernel = get_specialized_kernel(resolved)
        if kernel is not None:
            return "specialized", kernel
        if backend == "specialized":
            raise BackendError(
                f"no specialized kernel exists for pattern {resolved.name!r}; "
                "use backend='optimized' or 'auto'"
            )
    if backend in ("generated", "auto"):
        if supports_pattern(resolved):
            return "generated", compile_kernel(resolved)
        if backend == "generated":
            raise BackendError(
                f"the code generator has no templates for pattern {resolved.name!r} "
                f"(ops {resolved.op_names()}); use backend='optimized' or 'auto'"
            )
    return "optimized", None


def build_plan(
    A: CSRMatrix,
    key: PlanKey,
    op_pattern: OpPattern,
    resolved: ResolvedPattern,
    *,
    split_nnz: int,
    max_split: int,
    autotune_dim: int = 128,
) -> KernelPlan:
    """Construct (and, when requested, autotune) a plan for ``A``.

    ``split_nnz``/``max_split`` define the runtime's nnz-aware split policy:
    the number of partitions depends only on the matrix, never on how many
    worker threads happen to be available, so results are bitwise identical
    across thread counts.
    """
    if key.backend not in BACKENDS:
        raise BackendError(
            f"unknown backend {key.backend!r}; expected one of {BACKENDS}"
        )
    kind, kernel = _resolve_kind(resolved, key.backend)

    block_size = key.block_size or DEFAULT_BLOCK_SIZE
    strategy = key.strategy
    if kind == "optimized" and strategy == "auto":
        # Resolve the data-dependent choice once so packed/split executions
        # replay the exact same kernel as a standalone call would.
        strategy = _auto_strategy(A)

    tuning: Optional[TuningResult] = None
    if key.autotune and kind != "generic":
        rng = np.random.default_rng(0)
        d = autotune_dim
        X = rng.standard_normal((A.nrows, d)).astype(np.float32)
        Y = (
            X
            if A.nrows == A.ncols
            else rng.standard_normal((A.ncols, d)).astype(np.float32)
        )
        tuning = autotune(
            A,
            X,
            Y,
            pattern=op_pattern,
            num_threads=key.num_threads,
            # The jit candidate only competes when the requested backend
            # allows the tier; a forced optimized/specialized/generated
            # backend keeps the classic row/edge sweep.
            strategies=None if key.backend in ("auto", "jit") else ("row", "edge"),
        )
        if tuning.strategy == "jit":
            kind, kernel = "jit", jit_backend.get_jit_kernel(resolved)
            strategy = "auto"
        else:
            if kind == "jit" and key.backend == "auto":
                # The NumPy kernels measured faster: demote auto's jit
                # preference for this plan (explicit backend="jit" is
                # honoured regardless of the sweep).
                kind, kernel = _resolve_kind(resolved, "auto", allow_jit=False)
            strategy = tuning.strategy
        if key.block_size == 0:
            block_size = tuning.block_size

    nsplit = max(1, min(max_split, math.ceil(A.nnz / max(split_nnz, 1))))
    partitions = part1d(A, nsplit)

    plan = KernelPlan(
        key=key,
        op_pattern=op_pattern,
        resolved=resolved,
        kind=kind,
        backend=key.backend,
        block_size=block_size,
        strategy=strategy,
        num_threads=key.num_threads,
        nnz=A.nnz,
        shape=A.shape,
        partitions=partitions,
        nsplit=nsplit,
        tuning=tuning,
        kernel=kernel,
    )
    _apply_reorder(plan, A, key, autotune_dim=autotune_dim, nsplit=nsplit)
    return plan


# ---------------------------------------------------------------------- #
# Locality tier (reorder=) plan construction
# ---------------------------------------------------------------------- #
def _reorder_eligible(plan: KernelPlan, A: CSRMatrix) -> bool:
    """The locality tier needs a square matrix with edges and a non-
    reference kernel (the generic backend keeps Algorithm-1 semantics)."""
    return A.nrows == A.ncols and A.nnz > 0 and plan.kind != "generic"


def _attach_reorder(
    plan: KernelPlan,
    A: CSRMatrix,
    strategy: str,
    *,
    autotune_dim: int,
    nsplit: int,
    memoize: bool = True,
) -> None:
    """Bind the permuted matrix + compacted panels for ``strategy``.

    ``memoize=False`` keeps throwaway sweep candidates out of the reorder
    memo — losing strategies' permuted matrices must not stay pinned in
    memory for the process lifetime.
    """
    memo_key = plan.key.fingerprint or None if memoize else None
    result = reorder_matrix(A, strategy, memo_key=memo_key)
    parts = cache_block_partitions(
        result.matrix, dim=autotune_dim, min_parts=nsplit
    )
    plan.reorder = strategy
    plan.perm = result.perm
    plan.inv_perm = result.inv_perm
    plan.reordered = result.matrix
    plan.reorder_bandwidth = average_bandwidth(result.matrix)
    plan.panels = build_panels(result.matrix, parts)
    plan.partitions = parts
    # One schedulable task per panel: the runtime's split path fans the
    # panels out over the shared pool whenever there is more than one.
    plan.nsplit = len(parts)


def _apply_reorder(
    plan: KernelPlan, A: CSRMatrix, key: PlanKey, *, autotune_dim: int, nsplit: int
) -> None:
    """Resolve ``key.reorder`` on the freshly built plan.

    * ``"none"`` — nothing to do (the bitwise-exact legacy path).
    * explicit strategy — always applied (when the matrix is eligible).
    * ``"auto"`` — a measured sweep: every candidate (including
      ``"none"``) runs one complete planned call — operand permutation,
      compacted panel execution, inverse mapping — on synthetic features
      of the autotune dimension, and the fastest wins.  The sweep result
      is cached per (fingerprint, kernel config) and probed before any
      trial plan is constructed, so rebuilding the plan neither
      re-measures nor re-permutes; only the winning strategy's
      permutation enters the reorder memo — losers are garbage-collected.

    Ineligible matrices (rectangular, empty, or the generic reference
    backend) silently fall back to ``"none"`` — the knob is a performance
    hint, not a semantic switch.
    """
    strategy = key.reorder
    if strategy == "none":
        return
    validate_reorder(strategy)
    if not _reorder_eligible(plan, A):
        return
    if strategy != "auto":
        _attach_reorder(plan, A, strategy, autotune_dim=autotune_dim, nsplit=nsplit)
        return

    # Measured selection.  The sweep result is cached per (fingerprint,
    # kernel config): probe that cache *before* constructing any trial
    # plan, so a rebuilt plan (LRU eviction, second runtime) reuses the
    # verdict without re-permuting or re-compacting the losing candidates.
    memo_key = (
        key.fingerprint,
        key.pattern,
        plan.kind,
        plan.strategy,
        plan.block_size,
        autotune_dim,
    )
    sweep = cached_reorder_tuning(memo_key, REORDER_STRATEGIES)
    trial_plans: Dict[str, KernelPlan] = {}
    if sweep is None:
        # Candidates share the synthetic operands; every runner performs
        # the full per-epoch work of its strategy.  Trial construction
        # happens here — outside the timed runners, so repeats=1 timings
        # measure execution only — and without memoisation, so losing
        # strategies' permuted matrices are garbage-collected.
        rng = np.random.default_rng(0)
        X = rng.standard_normal((A.nrows, autotune_dim)).astype(np.float32)
        candidates: Dict[str, Callable[[], object]] = {
            "none": lambda: plan._kernel_call(A, X, X, num_threads=1)
        }
        for cand in REORDER_STRATEGIES:
            if cand == "none":
                continue
            # replace() copies every field (so future dispatch-relevant
            # fields cannot be silently dropped from the trial config).
            trial = replace(plan)
            _attach_reorder(
                trial, A, cand, autotune_dim=autotune_dim, nsplit=nsplit,
                memoize=False,
            )
            trial_plans[cand] = trial
            candidates[cand] = (
                lambda t=trial: t._execute_reordered(X, X)
            )
        sweep = autotune_reorder(candidates, memo_key=memo_key)
    plan.reorder_tuning = sweep
    if sweep.strategy == "none":
        return
    winner = trial_plans.get(sweep.strategy)
    if winner is not None:
        # Transplant the just-measured trial instead of recomputing the
        # permutation/panels, and memoise its reordering for future plans.
        plan.reorder = winner.reorder
        plan.perm = winner.perm
        plan.inv_perm = winner.inv_perm
        plan.reordered = winner.reordered
        plan.reorder_bandwidth = winner.reorder_bandwidth
        plan.panels = winner.panels
        plan.partitions = winner.partitions
        plan.nsplit = winner.nsplit
        if key.fingerprint:
            memoize_reorder(
                key.fingerprint,
                ReorderResult(
                    strategy=winner.reorder,
                    matrix=winner.reordered,
                    perm=winner.perm,
                    inv_perm=winner.inv_perm,
                ),
            )
    else:
        # Cached sweep verdict, no trials built: one (memoised) rebuild.
        _attach_reorder(
            plan, A, sweep.strategy, autotune_dim=autotune_dim, nsplit=nsplit
        )
