"""Execution plans: the unit the batched kernel runtime caches.

A :class:`KernelPlan` is everything about a FusedMM call that does *not*
depend on the feature matrices:

* the resolved operator pattern (Table III row or user overrides),
* the chosen backend kind and concrete kernel callable (the same
  specialized → generated → optimized → generic resolution order as
  :func:`repro.core.fused.fusedmm`),
* the effective blocking strategy and edge-block size (autotuned once when
  requested),
* the nnz-balanced row partitioning of the bound adjacency.

Plans are built once per ``(matrix fingerprint, pattern, backend,
num_threads, block_size, strategy, autotune)`` key and then executed many
times — every epoch of a training loop, every request of a batch — via
:meth:`KernelPlan.execute`, which accepts an explicit partition list and a
shared thread pool so the runtime controls scheduling.
"""

from __future__ import annotations

import math
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..core import jit as jit_backend
from ..core.autotune import TuningResult, autotune
from ..core.codegen import compile_kernel, supports_pattern
from ..core.fused import BACKENDS
from ..core.generic import fusedmm_generic
from ..core.optimized import DEFAULT_BLOCK_SIZE, fusedmm_optimized
from ..core.partition import RowPartition, part1d
from ..core.patterns import OpPattern, ResolvedPattern
from ..core.specialized import get_specialized_kernel, spmm_kernel
from ..errors import BackendError
from ..sparse import CSRMatrix

__all__ = [
    "KernelPlan",
    "PlanKey",
    "pattern_key",
    "build_plan",
    "make_config",
    "effective_strategy",
]


def pattern_key(resolved: ResolvedPattern) -> Tuple[Tuple[str, str], ...]:
    """Hashable identity of a resolved pattern (its five operator names)."""
    return tuple(sorted(resolved.op_names().items()))


@dataclass(frozen=True)
class PlanKey:
    """Full cache key of an execution plan."""

    fingerprint: str
    pattern: Tuple[Tuple[str, str], ...]
    backend: str
    num_threads: int
    block_size: int  # 0 = backend default / autotuned
    strategy: str
    autotune: bool


@dataclass
class KernelPlan:
    """A reusable, matrix-bound FusedMM execution plan."""

    key: PlanKey
    op_pattern: OpPattern
    resolved: ResolvedPattern
    #: "jit" | "specialized" | "generated" | "optimized" | "generic"
    kind: str
    #: requested backend ("auto" keeps the generic fallback of fusedmm())
    backend: str
    block_size: int
    strategy: str
    num_threads: int
    nnz: int
    shape: Tuple[int, int]
    #: nnz-balanced partitions used when the runtime splits this job
    partitions: Sequence[RowPartition] = field(default_factory=list)
    #: number of split tasks the runtime schedules for this job
    nsplit: int = 1
    tuning: Optional[TuningResult] = None
    #: concrete kernel callable for specialized/generated kinds
    kernel: Optional[Callable] = None
    #: times this plan has been executed
    calls: int = 0
    _calls_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # ------------------------------------------------------------------ #
    @property
    def supports_parts(self) -> bool:
        """Whether the plan's kernel accepts an explicit partition list
        (everything except the pure-Python reference backend does)."""
        return self.kind != "generic"

    @property
    def is_spmm_like(self) -> bool:
        """Whether the pattern ignores X (pure A·Y aggregation)."""
        return self.resolved.is_spmm_like

    # ------------------------------------------------------------------ #
    def execute(
        self,
        A,
        X,
        Y=None,
        *,
        parts: Optional[Sequence[RowPartition]] = None,
        pool: Optional[ThreadPoolExecutor] = None,
        num_threads: Optional[int] = None,
        block_size: Optional[int] = None,
        strategy: Optional[str] = None,
        out: Optional[np.ndarray] = None,
        row_offset: int = 0,
    ) -> np.ndarray:
        """Run the planned kernel on (possibly new) operands.

        ``A`` is usually the matrix the plan was built for (or another
        instance with identical content); minibatch row slices and sampled
        negative matrices may also be passed — the resolution and dispatch
        decisions still apply, only the partitioning is recomputed by the
        kernel when ``parts`` is not given.

        ``out=``/``row_offset=`` pass straight through to the kernels'
        shared output surface: shard workers hand in a view of their row
        range of the shared output segment, so no worker ever allocates a
        full ``(nrows, d)`` result.
        """
        nt = self.num_threads if num_threads is None else num_threads
        bs = self.block_size if block_size is None else block_size
        with self._calls_lock:
            self.calls += 1

        if self.kind == "generic":
            return fusedmm_generic(
                A, X, Y, pattern=self.op_pattern, out=out, row_offset=row_offset
            )

        if self.kind in ("jit", "specialized", "generated"):
            if X is None:
                if not self.is_spmm_like:
                    raise BackendError(
                        f"pattern {self.resolved.name!r} needs source features X"
                    )
                if self.kind == "jit":
                    return self.kernel(
                        A,
                        None,
                        Y,
                        block_size=bs,
                        num_threads=nt,
                        parts=parts,
                        pool=pool,
                        out=out,
                        row_offset=row_offset,
                    )
                return spmm_kernel(
                    A,
                    Y,
                    block_size=bs,
                    num_threads=nt,
                    parts=parts,
                    pool=pool,
                    out=out,
                    row_offset=row_offset,
                )
            return self.kernel(
                A,
                X,
                Y,
                block_size=bs,
                num_threads=nt,
                parts=parts,
                pool=pool,
                out=out,
                row_offset=row_offset,
            )

        # optimized (with the same last-resort fallback as fusedmm())
        try:
            return fusedmm_optimized(
                A,
                X,
                Y,
                pattern=self.op_pattern,
                strategy=self.strategy if strategy is None else strategy,
                block_size=bs,
                num_threads=nt,
                parts=parts,
                pool=pool,
                out=out,
                row_offset=row_offset,
            )
        except Exception:
            if self.backend == "optimized":
                raise
            return fusedmm_generic(
                A, X, Y, pattern=self.op_pattern, out=out, row_offset=row_offset
            )

    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, object]:
        """Human-readable plan summary (for logs, reports and tests)."""
        info = {
            "pattern": self.resolved.name,
            "ops": self.resolved.op_names(),
            "backend": self.backend,
            "kind": self.kind,
            "strategy": self.strategy,
            "block_size": self.block_size,
            "num_threads": self.num_threads,
            "nsplit": self.nsplit,
            "partitions": len(self.partitions),
            "nnz": self.nnz,
            "shape": self.shape,
            "calls": self.calls,
            "fingerprint": self.key.fingerprint,
        }
        if self.tuning is not None:
            info["tuning"] = self.tuning.as_dict()
        return info


# ---------------------------------------------------------------------- #
def make_config(
    op_pattern: OpPattern,
    resolved: ResolvedPattern,
    *,
    backend: str = "auto",
    block_size: Optional[int] = None,
    strategy: str = "auto",
    num_threads: int = 1,
) -> KernelPlan:
    """A matrix-independent dispatch config (a plan without a matrix).

    Used by :meth:`KernelRuntime.run_batch` for small one-shot requests:
    resolution and backend dispatch are still amortised (the config is
    cached per pattern/backend/blocking tuple), but no fingerprint is
    computed and the plan LRU is not churned by throwaway matrices.
    """
    if backend not in BACKENDS:
        raise BackendError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    kind, kernel = _resolve_kind(resolved, backend)
    key = PlanKey(
        fingerprint="",
        pattern=pattern_key(resolved),
        backend=backend,
        num_threads=num_threads,
        block_size=block_size or 0,
        strategy=strategy,
        autotune=False,
    )
    return KernelPlan(
        key=key,
        op_pattern=op_pattern,
        resolved=resolved,
        kind=kind,
        backend=backend,
        block_size=block_size or DEFAULT_BLOCK_SIZE,
        strategy=strategy,
        num_threads=num_threads,
        nnz=0,
        shape=(0, 0),
        partitions=[],
        nsplit=1,
        kernel=kernel,
    )


def _auto_strategy(A) -> str:
    """The data-dependent row/edge choice of ``fusedmm_optimized('auto')``."""
    return "row" if A.avg_degree() >= 32 else "edge"


def effective_strategy(plan: KernelPlan, A) -> str:
    """The blocking strategy a standalone call on ``A`` would pick."""
    if plan.kind == "optimized" and plan.strategy == "auto":
        return _auto_strategy(A)
    return plan.strategy


def _resolve_kind(resolved: ResolvedPattern, backend: str, *, allow_jit: bool = True):
    """Mirror the fusedmm() backend resolution order; returns (kind, kernel).

    ``allow_jit=False`` skips the JIT tier for ``auto`` — used when the
    autotuner measured the NumPy kernels as faster for this problem.
    """
    if backend == "generic":
        return "generic", None
    if backend == "jit" or (
        backend == "auto"
        and allow_jit
        and jit_backend.jit_available()
        and jit_backend.jit_supports_pattern(resolved)
    ):
        # get_jit_kernel raises BackendError for unsupported explicit "jit";
        # auto only lands here when the pattern is supported.
        return "jit", jit_backend.get_jit_kernel(resolved)
    if backend in ("specialized", "auto"):
        kernel = get_specialized_kernel(resolved)
        if kernel is not None:
            return "specialized", kernel
        if backend == "specialized":
            raise BackendError(
                f"no specialized kernel exists for pattern {resolved.name!r}; "
                "use backend='optimized' or 'auto'"
            )
    if backend in ("generated", "auto"):
        if supports_pattern(resolved):
            return "generated", compile_kernel(resolved)
        if backend == "generated":
            raise BackendError(
                f"the code generator has no templates for pattern {resolved.name!r} "
                f"(ops {resolved.op_names()}); use backend='optimized' or 'auto'"
            )
    return "optimized", None


def build_plan(
    A: CSRMatrix,
    key: PlanKey,
    op_pattern: OpPattern,
    resolved: ResolvedPattern,
    *,
    split_nnz: int,
    max_split: int,
    autotune_dim: int = 128,
) -> KernelPlan:
    """Construct (and, when requested, autotune) a plan for ``A``.

    ``split_nnz``/``max_split`` define the runtime's nnz-aware split policy:
    the number of partitions depends only on the matrix, never on how many
    worker threads happen to be available, so results are bitwise identical
    across thread counts.
    """
    if key.backend not in BACKENDS:
        raise BackendError(
            f"unknown backend {key.backend!r}; expected one of {BACKENDS}"
        )
    kind, kernel = _resolve_kind(resolved, key.backend)

    block_size = key.block_size or DEFAULT_BLOCK_SIZE
    strategy = key.strategy
    if kind == "optimized" and strategy == "auto":
        # Resolve the data-dependent choice once so packed/split executions
        # replay the exact same kernel as a standalone call would.
        strategy = _auto_strategy(A)

    tuning: Optional[TuningResult] = None
    if key.autotune and kind != "generic":
        rng = np.random.default_rng(0)
        d = autotune_dim
        X = rng.standard_normal((A.nrows, d)).astype(np.float32)
        Y = (
            X
            if A.nrows == A.ncols
            else rng.standard_normal((A.ncols, d)).astype(np.float32)
        )
        tuning = autotune(
            A,
            X,
            Y,
            pattern=op_pattern,
            num_threads=key.num_threads,
            # The jit candidate only competes when the requested backend
            # allows the tier; a forced optimized/specialized/generated
            # backend keeps the classic row/edge sweep.
            strategies=None if key.backend in ("auto", "jit") else ("row", "edge"),
        )
        if tuning.strategy == "jit":
            kind, kernel = "jit", jit_backend.get_jit_kernel(resolved)
            strategy = "auto"
        else:
            if kind == "jit" and key.backend == "auto":
                # The NumPy kernels measured faster: demote auto's jit
                # preference for this plan (explicit backend="jit" is
                # honoured regardless of the sweep).
                kind, kernel = _resolve_kind(resolved, "auto", allow_jit=False)
            strategy = tuning.strategy
        if key.block_size == 0:
            block_size = tuning.block_size

    nsplit = max(1, min(max_split, math.ceil(A.nnz / max(split_nnz, 1))))
    partitions = part1d(A, nsplit)

    return KernelPlan(
        key=key,
        op_pattern=op_pattern,
        resolved=resolved,
        kind=kind,
        backend=key.backend,
        block_size=block_size,
        strategy=strategy,
        num_threads=key.num_threads,
        nnz=A.nnz,
        shape=A.shape,
        partitions=partitions,
        nsplit=nsplit,
        tuning=tuning,
        kernel=kernel,
    )
