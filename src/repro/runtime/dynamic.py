"""Dynamic graphs: live edge mutation over the runtime's cache stack.

:class:`DynamicGraph` is the mutable handle the serving layer holds per
registered graph.  Internally every state is an immutable pair — a
:class:`~repro.sparse.delta.DeltaCSR` snapshot plus its materialised
canonical CSR — named by a **versioned fingerprint** ``<lineage>@v<N>``
(pinned via :func:`~repro.runtime.fingerprint.pin_fingerprint`, so every
cache tier keys on the version automatically).  Readers resolve one
snapshot and keep it for the whole request: mutations swap the current
pointer atomically and can never tear an in-flight computation.

Mutations invalidate *incrementally* instead of flushing:

* **plans** — every cached plan of the old version is refreshed in place
  (:func:`refresh_plan`): backend resolution, autotuned block size and
  strategy carry over, only the nnz-balanced partitions are recomputed.
* **reorder** — the vertex permutation is *carried* while the mutated
  matrix's mean bandwidth stays within ``carry_factor`` × the bandwidth
  measured when the permutation was attached; the permuted copy is then
  patched by splicing just the dirty rows (columns mapped through the
  existing ``inv_perm``) and only panels overlapping a dirty row are
  re-compacted — clean :class:`~repro.sparse.reorder.PanelBlock` objects
  are reused as-is.  Past the bound, the permutation is recomputed from
  scratch (the graph has drifted from the layout the sweep measured).
* **shards** — the remote tier gets a delta source per mutated ship key
  (:meth:`~repro.runtime.remote.RemoteController.register_delta`), so
  the next sharded run re-ships only the dirty rows (``OP_LOAD_DELTA``)
  to agents that still hold the previous version; everything else falls
  back to a full ship.

Correctness contract (tested property-style in ``tests/test_dynamic.py``
and end-to-end by the mutation smoke): a kernel executed against the
overlay is **bitwise identical** to the same kernel on a CSR freshly
rebuilt from the same edge set — at every version, at every compaction
point, across backends and shard counts, local or remote.  (Reordered
execution stays allclose-equivalent, exactly as for static graphs.)
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.partition import RowPartition, part1d
from ..sparse import CSRMatrix, as_csr
from ..sparse.delta import CompactionPolicy, DeltaCSR, splice_rows
from ..sparse.reorder import (
    ReorderResult,
    average_bandwidth,
    build_panels,
    drop_reorder_memo,
    memoize_reorder,
    reorder_memo_bytes,
)
from .fingerprint import derived_fingerprint, matrix_fingerprint, pin_fingerprint
from .plan import KernelPlan, PlanKey, _attach_reorder

__all__ = [
    "DEFAULT_CARRY_FACTOR",
    "DynamicGraph",
    "GraphVersion",
    "MutationResult",
    "permuted_rows_payload",
    "refresh_plan",
    "rows_payload",
]

#: A carried permutation is kept while the spliced permuted matrix's mean
#: bandwidth stays within this factor of the bandwidth measured when the
#: permutation was attached.  The reference never moves while carrying, so
#: drift cannot compound batch over batch.
DEFAULT_CARRY_FACTOR = 4.0


# ---------------------------------------------------------------------- #
# Row payloads (shared by the plan refresh and the delta-ship path)
# ---------------------------------------------------------------------- #
def rows_payload(
    A: CSRMatrix, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(rows, counts, indices, data)`` of ``rows`` as found in ``A``.

    The splice arguments :func:`~repro.sparse.delta.splice_rows` (and the
    ``OP_LOAD_DELTA`` wire payload) expect: applying this payload to any
    matrix that agrees with ``A`` on every *other* row reproduces ``A``
    bitwise.
    """
    rows = np.unique(np.asarray(rows, dtype=np.int64))
    indptr = A.indptr
    counts = (indptr[rows + 1] - indptr[rows]).astype(np.int64)
    chunks_i: List[np.ndarray] = []
    chunks_d: List[np.ndarray] = []
    for r in rows:
        lo, hi = int(indptr[r]), int(indptr[r + 1])
        chunks_i.append(A.indices[lo:hi])
        chunks_d.append(A.data[lo:hi])
    indices = (
        np.concatenate(chunks_i) if chunks_i else np.empty(0, dtype=np.int64)
    )
    data = np.concatenate(chunks_d) if chunks_d else np.empty(0, dtype=A.data.dtype)
    return rows, counts, indices, data


def permuted_rows_payload(
    A_new: CSRMatrix,
    dirty_rows: np.ndarray,
    perm: np.ndarray,
    inv_perm: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The dirty rows of ``A_new`` expressed in permuted coordinates.

    Row ``r`` of the natural-order matrix lives at permuted row
    ``inv_perm[r]``; its columns map through ``inv_perm`` and are re-sorted
    to canonical CSR order under the new numbering — exactly what
    :func:`~repro.sparse.reorder.permute_symmetric` would produce for those
    rows, without touching the clean ones.
    """
    dirty = np.unique(np.asarray(dirty_rows, dtype=np.int64))
    pr = np.sort(inv_perm[dirty])
    src = perm[pr]
    indptr = A_new.indptr
    counts = (indptr[src + 1] - indptr[src]).astype(np.int64)
    chunks_i: List[np.ndarray] = []
    chunks_d: List[np.ndarray] = []
    for s in src:
        lo, hi = int(indptr[s]), int(indptr[s + 1])
        cols = inv_perm[A_new.indices[lo:hi]]
        order = np.argsort(cols, kind="stable")
        chunks_i.append(cols[order])
        chunks_d.append(A_new.data[lo:hi][order])
    indices = (
        np.concatenate(chunks_i) if chunks_i else np.empty(0, dtype=np.int64)
    )
    data = (
        np.concatenate(chunks_d) if chunks_d else np.empty(0, dtype=A_new.data.dtype)
    )
    return pr, counts, indices, data


# ---------------------------------------------------------------------- #
# Plan refresh
# ---------------------------------------------------------------------- #
def refresh_plan(
    plan: KernelPlan,
    A_new: CSRMatrix,
    new_key: PlanKey,
    dirty_rows: Optional[np.ndarray],
    *,
    split_nnz: int,
    max_split: int,
    autotune_dim: int = 128,
    carry_factor: float = DEFAULT_CARRY_FACTOR,
    carry_cache: Optional[Dict[str, Tuple[CSRMatrix, np.ndarray]]] = None,
) -> Tuple[KernelPlan, Dict[str, object]]:
    """Rebind a cached plan to the next version of its matrix.

    Everything expensive that does not depend on the sparsity *values* is
    reused verbatim: backend resolution, the concrete kernel, autotune
    results, the blocking strategy.  Recomputed per call: the nnz-balanced
    partitions (O(nrows)) and — for reordered plans — the carried permuted
    matrix (O(dirty nnz) splice) with only the dirty panels re-compacted.

    ``carry_cache`` (shared across the plans of one mutation batch) maps a
    reorder strategy to its already-spliced permuted matrix, so several
    plans on the same graph pay the splice once.

    Returns ``(new_plan, info)`` where ``info`` carries the per-plan
    invalidation accounting (``panels_rebuilt``/``panels_reused``,
    ``carried``) and — for carried reorders — a ``derived`` entry the
    caller uses to register a dirty-shard delta source for the permuted
    ship key.
    """
    A_new = as_csr(A_new)
    nsplit = max(1, min(max_split, math.ceil(A_new.nnz / max(split_nnz, 1))))
    partitions = part1d(A_new, nsplit)
    new_plan = replace(
        plan,
        key=new_key,
        nnz=A_new.nnz,
        shape=A_new.shape,
        partitions=partitions,
        nsplit=nsplit,
        calls=0,
        _calls_lock=threading.Lock(),
    )
    info: Dict[str, object] = {
        "reorder": "none",
        "carried": False,
        "panels_rebuilt": 0,
        "panels_reused": 0,
        "derived": None,
    }
    if plan.reorder == "none" or plan.reordered is None or plan.perm is None:
        return new_plan, info
    info["reorder"] = plan.reorder

    carried = False
    Ap_new: Optional[CSRMatrix] = None
    pr: Optional[np.ndarray] = None
    if dirty_rows is not None:
        cached = None if carry_cache is None else carry_cache.get(plan.reorder)
        if cached is not None:
            Ap_new, pr = cached
        else:
            pr, counts, idx, dat = permuted_rows_payload(
                A_new, dirty_rows, plan.perm, plan.inv_perm
            )
            Ap_new = splice_rows(plan.reordered, pr, counts, idx, dat)
            if carry_cache is not None:
                carry_cache[plan.reorder] = (Ap_new, pr)
        reference = (
            plan.reorder_bandwidth
            if plan.reorder_bandwidth is not None
            else average_bandwidth(plan.reordered)
        )
        carried = average_bandwidth(Ap_new) <= carry_factor * (reference + 1.0)

    if not carried:
        # Drifted past the carry bound (or dirty rows unknown): recompute
        # the permutation for the new version from scratch.
        _attach_reorder(
            new_plan, A_new, plan.reorder, autotune_dim=autotune_dim, nsplit=nsplit
        )
        return new_plan, info

    # Carried: same permutation, spliced permuted matrix, dirty-panel
    # rebuild.  Panel boundaries stay (they are row ranges, still a
    # contiguous cover); per-panel nnz is refreshed from the new indptr.
    indptr = Ap_new.indptr
    parts = [
        RowPartition(p.start, p.stop, int(indptr[p.stop] - indptr[p.start]))
        for p in plan.partitions
    ]
    panels = []
    rebuilt = reused = 0
    for old_panel, part in zip(plan.panels, parts):
        lo = int(np.searchsorted(pr, part.start))
        hi = int(np.searchsorted(pr, part.stop))
        if lo < hi:
            panels.append(build_panels(Ap_new, [part])[0])
            rebuilt += 1
        else:
            # No dirty row in [start, stop): the old panel's localised
            # sub-CSR still holds exactly this row range's content.
            panels.append(old_panel)
            reused += 1
    new_plan.reordered = Ap_new
    new_plan.panels = panels
    new_plan.partitions = parts
    new_plan.nsplit = len(parts)
    # Keep the attach-time bandwidth as the carry reference so repeated
    # small batches cannot ratchet the bound upward.
    new_plan.reorder_bandwidth = plan.reorder_bandwidth
    if new_key.fingerprint:
        memoize_reorder(
            new_key.fingerprint,
            ReorderResult(
                strategy=plan.reorder,
                matrix=Ap_new,
                perm=plan.perm,
                inv_perm=plan.inv_perm,
            ),
        )
    info["carried"] = True
    info["panels_rebuilt"] = rebuilt
    info["panels_reused"] = reused
    info["derived"] = {
        "strategy": plan.reorder,
        "matrix": Ap_new,
        "perm_rows": pr,
    }
    return new_plan, info


# ---------------------------------------------------------------------- #
# The per-graph handle
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class GraphVersion:
    """One immutable graph state: overlay + materialised canonical CSR.

    Readers resolve a version once (request admission, epoch start) and
    use it unlocked for the whole computation — the mutation path only
    ever *replaces* the current version, never edits one.
    """

    version: int
    fingerprint: str
    delta: DeltaCSR
    matrix: CSRMatrix


@dataclass(frozen=True)
class MutationResult:
    """What one :meth:`DynamicGraph.apply_edges` call did."""

    version: int
    fingerprint: str
    inserted: int
    updated: int
    deleted: int
    ignored_deletes: int
    touched_rows: int
    compacted: bool
    nnz: int
    plans_refreshed: int = 0
    panels_rebuilt: int = 0
    panels_reused: int = 0
    reorders_carried: int = 0
    reorders_rebuilt: int = 0
    delta_sources: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "fingerprint": self.fingerprint,
            "inserted": self.inserted,
            "updated": self.updated,
            "deleted": self.deleted,
            "ignored_deletes": self.ignored_deletes,
            "touched_rows": self.touched_rows,
            "compacted": self.compacted,
            "nnz": self.nnz,
            "plans_refreshed": self.plans_refreshed,
            "panels_rebuilt": self.panels_rebuilt,
            "panels_reused": self.panels_reused,
            "reorders_carried": self.reorders_carried,
            "reorders_rebuilt": self.reorders_rebuilt,
            "delta_sources": self.delta_sources,
        }


class DynamicGraph:
    """A mutable graph whose versions flow through the runtime's caches.

    ``runtime=None`` gives a standalone overlay (versions, compaction,
    bitwise materialisation) with no cache plumbing — the sparse tier
    alone.  With a :class:`~repro.runtime.runtime.KernelRuntime` attached,
    every mutation refreshes that runtime's cached plans for this graph,
    registers dirty-shard delta sources on its remote controller and
    releases the superseded version from the local cache tiers.
    """

    def __init__(
        self,
        base,
        *,
        runtime=None,
        policy: Optional[CompactionPolicy] = None,
        carry_factor: float = DEFAULT_CARRY_FACTOR,
        lineage: Optional[str] = None,
    ) -> None:
        base = as_csr(base)
        self.runtime = runtime
        self.carry_factor = float(carry_factor)
        # The lineage is the *content* hash of the original base — stable
        # across every subsequent version and compaction, so one release
        # call covers the graph's whole cache footprint.
        self.lineage = str(lineage) if lineage else matrix_fingerprint(base)
        delta = DeltaCSR(base, self.lineage, policy=policy)
        pin_fingerprint(base, delta.fingerprint)
        self._lock = threading.Lock()
        self._current = GraphVersion(delta.version, delta.fingerprint, delta, base)
        self._prev_fp: Optional[str] = None
        self._counters: Dict[str, int] = {
            "mutations": 0,
            "edges_inserted": 0,
            "edges_updated": 0,
            "edges_deleted": 0,
            "compactions": 0,
            "plans_refreshed": 0,
            "panels_rebuilt": 0,
            "panels_reused": 0,
            "reorders_carried": 0,
            "reorders_rebuilt": 0,
            "delta_sources": 0,
        }
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        return self._current.version

    @property
    def fingerprint(self) -> str:
        return self._current.fingerprint

    @property
    def matrix(self) -> CSRMatrix:
        """The current version's materialised canonical CSR."""
        return self._current.matrix

    @property
    def nnz(self) -> int:
        return self._current.delta.nnz

    @property
    def shape(self) -> Tuple[int, int]:
        return self._current.delta.shape

    def snapshot(self) -> GraphVersion:
        """The current immutable version (safe to use unlocked)."""
        with self._lock:
            return self._current

    def row(self, u: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(cols, vals)`` of row ``u`` at the current version."""
        return self._current.delta.row(u)

    # ------------------------------------------------------------------ #
    def apply_edges(self, insert=None, delete=None) -> MutationResult:
        """Apply one edge batch and swap in the next version.

        Deletes apply first, then inserts **upsert** (an existing edge's
        weight is replaced).  The new version is fully built — overlay,
        materialised CSR, refreshed plans, delta sources — before the
        current pointer moves, so concurrent readers only ever see
        complete versions.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("DynamicGraph is closed")
            cur = self._current
            new_delta, batch = cur.delta.apply(insert=insert, delete=delete)
            compacted = False
            if new_delta.should_compact():
                new_delta = new_delta.compacted()
                compacted = True
            new_A = new_delta.materialize()
            fp = new_delta.fingerprint
            pin_fingerprint(new_A, fp)

            info: Dict[str, object] = {}
            sources = 0
            rt = self.runtime
            if rt is not None:
                info = rt.update_matrix(
                    cur.fingerprint,
                    new_A,
                    fp,
                    batch.touched_rows,
                    carry_factor=self.carry_factor,
                )
                sources = self._register_delta_sources(
                    cur.fingerprint, fp, new_A, batch.touched_rows, info
                )
                # The superseded version leaves the *local* tiers now; its
                # remote copies stay one more round — they are the base the
                # delta source above splices onto.  The round after, the
                # grandparent version is released everywhere.
                rt.release_matrix(cur.fingerprint, remote=False)
                if self._prev_fp is not None:
                    rt.release_matrix(self._prev_fp)
            else:
                drop_reorder_memo(cur.fingerprint)

            self._prev_fp = cur.fingerprint
            self._current = GraphVersion(new_delta.version, fp, new_delta, new_A)

            result = MutationResult(
                version=new_delta.version,
                fingerprint=fp,
                inserted=batch.inserted,
                updated=batch.updated,
                deleted=batch.deleted,
                ignored_deletes=batch.ignored_deletes,
                touched_rows=int(batch.touched_rows.size),
                compacted=compacted,
                nnz=new_delta.nnz,
                plans_refreshed=int(info.get("plans_refreshed", 0)),
                panels_rebuilt=int(info.get("panels_rebuilt", 0)),
                panels_reused=int(info.get("panels_reused", 0)),
                reorders_carried=int(info.get("reorders_carried", 0)),
                reorders_rebuilt=int(info.get("reorders_rebuilt", 0)),
                delta_sources=sources,
            )
            c = self._counters
            c["mutations"] += 1
            c["edges_inserted"] += result.inserted
            c["edges_updated"] += result.updated
            c["edges_deleted"] += result.deleted
            if compacted:
                c["compactions"] += 1
            c["plans_refreshed"] += result.plans_refreshed
            c["panels_rebuilt"] += result.panels_rebuilt
            c["panels_reused"] += result.panels_reused
            c["reorders_carried"] += result.reorders_carried
            c["reorders_rebuilt"] += result.reorders_rebuilt
            c["delta_sources"] += sources
            return result

    def _register_delta_sources(
        self,
        old_fp: str,
        new_fp: str,
        new_A: CSRMatrix,
        touched_rows: np.ndarray,
        info: Dict[str, object],
    ) -> int:
        """Give the remote tier a dirty-row splice per mutated ship key."""
        rt = self.runtime
        controller = None if rt is None else rt.controller
        if controller is None:
            return 0
        touched = np.asarray(touched_rows, dtype=np.int64)
        if touched.size == 0:
            return 0
        sources = 0
        rows, counts, idx, dat = rows_payload(new_A, touched)
        controller.register_delta(new_fp, old_fp, rows, counts, idx, dat)
        sources += 1
        for d in info.get("derived") or []:
            matrix, pr = d.get("matrix"), d.get("perm_rows")
            if matrix is None or pr is None:
                continue
            tag = f"reorder={d['strategy']}"
            rows, counts, idx, dat = rows_payload(matrix, pr)
            controller.register_delta(
                derived_fingerprint(new_fp, tag),
                derived_fingerprint(old_fp, tag),
                rows,
                counts,
                idx,
                dat,
            )
            sources += 1
        return sources

    # ------------------------------------------------------------------ #
    def memory(self) -> Dict[str, object]:
        """Byte accounting for this graph across every tier it occupies.

        ``base_bytes``/``delta_bytes`` come from the overlay,
        ``materialized_bytes`` is the current version's spliced CSR (zero
        right after compaction, when the base *is* the materialisation),
        ``plan_bytes`` what the attached runtime's plan cache retains for
        this version, ``reorder_bytes`` the memoised permuted copies.
        """
        with self._lock:
            cur = self._current
        mem = cur.delta.memory()
        out: Dict[str, object] = {
            "fingerprint": cur.fingerprint,
            "version": cur.version,
            "nnz": cur.delta.nnz,
            "base_bytes": mem["base_bytes"],
            "delta_bytes": mem["delta_bytes"],
            "delta_rows": mem["delta_rows"],
            "delta_nnz": mem["delta_nnz"],
            "log_ops": mem["log_ops"],
            "compactions": mem["compactions"],
            "materialized_bytes": (
                0 if cur.matrix is cur.delta.base else cur.matrix.memory_bytes()
            ),
            "plans": 0,
            "plan_bytes": 0,
            "reorder_bytes": 0,
        }
        rt = self.runtime
        if rt is not None:
            plan_mem = rt.plan_bytes(cur.fingerprint)
            out["plans"] = plan_mem["plans"]
            out["plan_bytes"] = plan_mem["plan_bytes"]
        out["reorder_bytes"] = reorder_memo_bytes(cur.fingerprint)
        out["total_bytes"] = int(
            out["base_bytes"]
            + out["delta_bytes"]
            + out["materialized_bytes"]
            + out["plan_bytes"]
            + out["reorder_bytes"]
        )
        return out

    def stats(self) -> Dict[str, object]:
        """Mutation counters + the current version's memory accounting."""
        with self._lock:
            counters = dict(self._counters)
        return {**counters, **self.memory()}

    # ------------------------------------------------------------------ #
    def close(self) -> Dict[str, int]:
        """Release this graph's entire cache footprint (every version and
        derived key, across plan cache, reorder memo, worker shared
        memory and remote hosts).  Idempotent."""
        with self._lock:
            if self._closed:
                return {}
            self._closed = True
            if self.runtime is not None:
                return self.runtime.release_matrix(self.lineage)
            drop_reorder_memo(self.lineage)
            return {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicGraph(fingerprint={self.fingerprint!r}, "
            f"nnz={self.nnz}, shape={self.shape})"
        )
