"""Persistent multi-process worker pool for sharded kernel execution.

:class:`WorkerPool` owns N long-lived ``multiprocessing`` worker processes
and the shared-memory segments they read.  The design goals, in order:

* **Ship the matrix once.**  A CSR matrix is placed in
  :mod:`multiprocessing.shared_memory` segments (``indptr``, ``indices``,
  ``data``) the first time it is used and workers attach zero-copy; every
  subsequent ``run``/``submit`` on the same matrix sends only segment
  names and row ranges — the adjacency is never re-pickled.
* **Plan once per worker.**  Workers cache their resolved dispatch configs
  keyed by (pattern, backend, block size, strategy), so repeated calls skip
  pattern resolution and backend dispatch exactly as the parent's plan
  cache does.
* **Fail loudly, never hang.**  The parent polls worker liveness while
  waiting for replies: a crashed worker (OOM kill, segfault, ``kill -9``)
  raises :class:`~repro.errors.WorkerCrashError` promptly and the pool
  respawns the dead worker so later calls still work.

Operands ``X``/``Y`` change per call and are passed through per-call
shared-memory segments as well (one bulk copy each, no pickling); every
worker writes its shard's rows *directly* into its row range of the shared
output segment through the kernels' ``out=``/``row_offset=`` surface —
no worker ever allocates a full ``(nrows, d)`` output and there is no
post-hoc copy.  (Kernels still accumulate each row in float64 before the
single cast into the segment, so sharded results stay bitwise identical
to the in-process path; executing on a row-sliced matrix instead would
shift the edge-block grid and break that identity.)

Workers that can use the Numba JIT tier warm its kernel cache once at
spawn (:func:`repro.core.jit.warmup`), so the first real request never
pays compilation latency; with ``cache=True`` the machine code persists
on disk across worker generations.

The protocol is deliberately tiny — four message types over one duplex
pipe per worker::

    ("load", key, csr_meta)                    attach + cache a shared CSR
    ("drop", key)                              release a cached CSR
    ("run",  key, spec, x, y, z, parts)        execute assigned partitions
    ("exit",)                                  leave the loop

with replies ``("ok", payload)`` or ``("err", traceback_text)``.
"""

from __future__ import annotations

import multiprocessing
import threading
import traceback
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.partition import RowPartition
from ..errors import WorkerCrashError, WorkerError
from ..sparse import CSRMatrix
from .codec import build_worker_config, config_cache_key, plan_spec_from_plan
from .shard import ShardPlan

__all__ = ["WorkerPool", "default_start_method", "plan_spec_from_plan"]

#: Seconds between liveness checks while waiting for a worker reply.
_POLL_INTERVAL = 0.05


def default_start_method() -> str:
    """``fork`` where available (cheap, inherits the imported package),
    ``spawn`` otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# ---------------------------------------------------------------------- #
# Shared-memory plumbing
# ---------------------------------------------------------------------- #
def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without re-registering it for cleanup.

    The parent owns every segment's lifetime (it created and will unlink
    it).  Python 3.13 can opt out of tracking with ``track=False``; on
    older versions the attach-side registration lands in the same resource
    tracker the parent already registered the name with, which is a
    harmless duplicate — workers must *not* unregister it, or the parent's
    later unlink would race the tracker.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13 path (exercised in CI)
        return shared_memory.SharedMemory(name=name)


class _SharedArray:
    """Parent-side owner of one ndarray in a shared-memory segment."""

    def __init__(self, array: np.ndarray) -> None:
        array = np.ascontiguousarray(array)
        self.shm = shared_memory.SharedMemory(
            create=True, size=max(int(array.nbytes), 1)
        )
        self.meta = {
            "name": self.shm.name,
            "shape": tuple(array.shape),
            "dtype": array.dtype.str,
        }
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=self.shm.buf)
        view[...] = array

    @classmethod
    def empty(cls, shape: Tuple[int, ...], dtype) -> "_SharedArray":
        self = cls.__new__(cls)
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        self.shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        self.meta = {"name": self.shm.name, "shape": tuple(shape), "dtype": dtype.str}
        return self

    def ndarray(self) -> np.ndarray:
        return np.ndarray(
            self.meta["shape"], dtype=np.dtype(self.meta["dtype"]), buffer=self.shm.buf
        )

    def destroy(self) -> None:
        try:
            self.shm.close()
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


def _array_meta_to_ndarray(meta, segments: List[shared_memory.SharedMemory]):
    """Worker-side view of a parent array; appends the segment for cleanup."""
    shm = _attach(meta["name"])
    segments.append(shm)
    return np.ndarray(meta["shape"], dtype=np.dtype(meta["dtype"]), buffer=shm.buf)


class _SharedCSR:
    """Parent-side owner of one CSR matrix in shared memory (three segments)."""

    def __init__(self, A: CSRMatrix) -> None:
        self._indptr = _SharedArray(A.indptr)
        self._indices = _SharedArray(A.indices)
        self._data = _SharedArray(A.data)
        self.meta = {
            "nrows": A.nrows,
            "ncols": A.ncols,
            "indptr": self._indptr.meta,
            "indices": self._indices.meta,
            "data": self._data.meta,
        }

    def destroy(self) -> None:
        for seg in (self._indptr, self._indices, self._data):
            seg.destroy()


# ---------------------------------------------------------------------- #
# Worker process
# ---------------------------------------------------------------------- #
def _worker_main(conn) -> None:  # pragma: no cover - runs in child processes
    """Worker loop: attach matrices, cache configs, execute shards."""
    # Warm the JIT kernel cache once at spawn (no-op without numba): the
    # first sharded request on a jit/auto plan then hits compiled code
    # immediately instead of paying compilation latency mid-call.
    try:
        from ..core.jit import warmup

        warmup()
    except Exception:
        pass
    matrices: Dict[str, Tuple[CSRMatrix, List[shared_memory.SharedMemory]]] = {}
    configs: Dict[tuple, object] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        try:
            cmd = msg[0]
            if cmd == "exit":
                conn.send(("ok", None))
                break
            elif cmd == "ping":
                conn.send(("ok", "pong"))
            elif cmd == "load":
                _, key, meta = msg
                if key not in matrices:
                    segments: List[shared_memory.SharedMemory] = []
                    indptr = _array_meta_to_ndarray(meta["indptr"], segments)
                    indices = _array_meta_to_ndarray(meta["indices"], segments)
                    data = _array_meta_to_ndarray(meta["data"], segments)
                    A = CSRMatrix(
                        meta["nrows"], meta["ncols"], indptr, indices, data, check=False
                    )
                    matrices[key] = (A, segments)
                conn.send(("ok", None))
            elif cmd == "drop":
                _, key = msg
                entry = matrices.pop(key, None)
                if entry is not None:
                    A, segments = entry
                    del A
                    for shm in segments:
                        try:
                            shm.close()
                        except BufferError:
                            pass
                conn.send(("ok", None))
            elif cmd == "run":
                _, key, spec, x_meta, y_meta, z_meta, raw_parts = msg
                A, _segs = matrices[key]
                cfg_key = config_cache_key(spec)
                cfg = configs.get(cfg_key)
                if cfg is None:
                    cfg = build_worker_config(spec)
                    configs[cfg_key] = cfg
                ephemeral: List[shared_memory.SharedMemory] = []
                try:
                    X = (
                        None
                        if x_meta is None
                        else _array_meta_to_ndarray(x_meta, ephemeral)
                    )
                    if y_meta == "same_as_x":
                        Y = X
                    elif y_meta is None:
                        Y = None
                    else:
                        Y = _array_meta_to_ndarray(y_meta, ephemeral)
                    Z_out = _array_meta_to_ndarray(z_meta, ephemeral)
                    parts = [RowPartition(*p) for p in raw_parts]
                    # Write straight into this shard's row range of the
                    # shared output segment: no full-size (nrows, d)
                    # allocation, no post-hoc copy.  Kernels accumulate
                    # each row in float64 and cast once, so the bytes are
                    # identical to the in-process astype path.
                    w0 = min(p.start for p in parts)
                    w1 = max(p.stop for p in parts)
                    cfg.execute(
                        A,
                        X,
                        Y,
                        parts=parts,
                        num_threads=1,
                        block_size=spec["block_size"],
                        strategy=spec["strategy"],
                        out=Z_out[w0:w1],
                        row_offset=w0,
                    )
                    del X, Y, Z_out
                finally:
                    for shm in ephemeral:
                        try:
                            shm.close()
                        except BufferError:
                            pass
                conn.send(("ok", None))
            else:
                conn.send(("err", f"unknown command {cmd!r}"))
        except Exception:
            try:
                conn.send(("err", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break


# ---------------------------------------------------------------------- #
# Parent-side pool
# ---------------------------------------------------------------------- #
class WorkerPool:
    """A fixed-size pool of persistent kernel worker processes.

    Parameters
    ----------
    processes:
        Number of worker processes (at least 1).
    start_method:
        ``multiprocessing`` start method; default
        :func:`default_start_method` (``fork`` on Linux).
    timeout:
        Optional per-call ceiling in seconds while waiting for a worker
        reply; ``None`` waits indefinitely (liveness is still polled, so a
        *dead* worker raises promptly either way).  A timed-out worker is
        restarted — its late reply must never desynchronise the pipe.
    matrix_cache:
        Maximum number of matrices kept registered in shared memory at
        once (LRU-evicted beyond that), bounding ``/dev/shm`` usage in
        long-running serving loops over many distinct adjacencies.
    """

    def __init__(
        self,
        processes: int,
        *,
        start_method: Optional[str] = None,
        timeout: Optional[float] = None,
        matrix_cache: int = 16,
    ) -> None:
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        if matrix_cache < 1:
            raise ValueError(f"matrix_cache must be >= 1, got {matrix_cache}")
        self.processes = processes
        self.timeout = timeout
        self.matrix_cache = matrix_cache
        self._ctx = multiprocessing.get_context(start_method or default_start_method())
        self._procs: List[Optional[multiprocessing.Process]] = [None] * processes
        self._conns: List[Optional[object]] = [None] * processes
        self._loaded: List[Set[str]] = [set() for _ in range(processes)]
        self._matrices: "OrderedDict[str, _SharedCSR]" = OrderedDict()
        self._lock = threading.RLock()
        self._dispatcher: Optional[ThreadPoolExecutor] = None
        self._closed = False
        self.restarts = 0
        # Start the shared-memory resource tracker *before* forking: workers
        # must inherit the parent's tracker, or each would lazily spawn its
        # own on first attach — and a worker-private tracker unlinks every
        # segment it saw (including still-registered matrices) as soon as
        # that worker exits.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - platform without the tracker
            pass
        for i in range(processes):
            self._spawn(i)

    # ------------------------------------------------------------------ #
    def _spawn(self, i: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"repro-shard-{i}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[i] = proc
        self._conns[i] = parent_conn
        self._loaded[i] = set()

    def _restart(self, i: int) -> None:
        proc, conn = self._procs[i], self._conns[i]
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if proc is not None:
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
            proc.join(timeout=1.0)
        self.restarts += 1
        self._spawn(i)

    # ------------------------------------------------------------------ #
    def _send(self, i: int, msg: tuple) -> None:
        conn, proc = self._conns[i], self._procs[i]
        try:
            conn.send(msg)
        except (BrokenPipeError, OSError):
            raise WorkerCrashError(
                f"shard worker {i} (pid {getattr(proc, 'pid', '?')}) died "
                "before the request could be sent"
            )

    def _recv(self, i: int):
        """Wait for worker ``i``'s reply, polling liveness so a crashed
        worker raises instead of hanging."""
        conn, proc = self._conns[i], self._procs[i]
        waited = 0.0
        while not conn.poll(_POLL_INTERVAL):
            waited += _POLL_INTERVAL
            if not proc.is_alive():
                raise WorkerCrashError(
                    f"shard worker {i} (pid {proc.pid}) crashed with exit code "
                    f"{proc.exitcode} while executing a request"
                )
            if self.timeout is not None and waited >= self.timeout:
                # The worker is alive but late.  Its eventual reply would
                # desynchronise the request/reply framing (the next call
                # would consume this call's stale reply), so replace the
                # worker before raising.
                self._restart(i)
                raise WorkerError(
                    f"shard worker {i} (pid {proc.pid}) did not reply within "
                    f"{self.timeout:.1f}s; the worker was restarted"
                )
        try:
            status, payload = conn.recv()
        except (EOFError, OSError):
            raise WorkerCrashError(
                f"shard worker {i} (pid {proc.pid}) closed its pipe mid-reply"
            )
        if status == "err":
            raise WorkerError(f"shard worker {i} failed:\n{payload}")
        return payload

    def _broadcast(self, workers: Sequence[int], msg: tuple) -> None:
        """Send one message to several workers and collect every reply,
        restarting any worker that crashed before re-raising."""
        sent: List[int] = []
        first_error: Optional[BaseException] = None
        crashed: List[int] = []
        for i in workers:
            try:
                self._send(i, msg)
                sent.append(i)
            except WorkerCrashError as exc:
                crashed.append(i)
                first_error = first_error or exc
        for i in sent:
            try:
                self._recv(i)
            except WorkerCrashError as exc:
                crashed.append(i)
                first_error = first_error or exc
            except WorkerError as exc:
                first_error = first_error or exc
        for i in crashed:
            self._restart(i)
        if first_error is not None:
            raise first_error

    # ------------------------------------------------------------------ #
    # Matrix registry
    # ------------------------------------------------------------------ #
    def register_matrix(self, key: str, A: CSRMatrix) -> None:
        """Place ``A`` in shared memory under ``key`` (idempotent).

        The registry is a bounded LRU: registering beyond ``matrix_cache``
        evicts the least-recently-used matrix (workers drop it, segments
        are unlinked), so serving loops over many distinct adjacencies
        cannot exhaust ``/dev/shm``.
        """
        with self._lock:
            self._check_open()
            if key in self._matrices:
                self._matrices.move_to_end(key)
                return
            self._matrices[key] = _SharedCSR(A)
            while len(self._matrices) > self.matrix_cache:
                oldest = next(iter(self._matrices))
                self.release_matrix(oldest)

    def release_matrix(self, key: str) -> None:
        """Drop ``key`` from every worker and unlink its segments."""
        with self._lock:
            shared = self._matrices.pop(key, None)
            if shared is None:
                return
            holders = [i for i in range(self.processes) if key in self._loaded[i]]
            for i in holders:
                self._loaded[i].discard(key)
            try:
                self._broadcast(holders, ("drop", key))
            finally:
                shared.destroy()

    def _ensure_loaded(self, workers: Sequence[int], key: str) -> None:
        shared = self._matrices[key]
        missing = [i for i in workers if key not in self._loaded[i]]
        if missing:
            self._broadcast(missing, ("load", key, shared.meta))
            for i in missing:
                self._loaded[i].add(key)

    def release_fingerprint(self, fingerprint: str) -> int:
        """Drop every registered matrix whose key belongs to
        ``fingerprint``'s lineage (the key itself, ``<fp>|...`` derived
        keys, ``<fp>@vN`` versioned keys); returns the number released.

        The dynamic-graph tier calls this when a version is superseded or
        a graph dropped, so dead CSRs stop pinning ``/dev/shm``.
        """
        from .fingerprint import fingerprint_covers

        with self._lock:
            doomed = [
                key
                for key in self._matrices
                if fingerprint_covers(fingerprint, key)
            ]
            for key in doomed:
                self.release_matrix(key)
            return len(doomed)

    def matrix_keys(self) -> Tuple[str, ...]:
        """Snapshot of the registered shared-memory matrix keys."""
        with self._lock:
            return tuple(self._matrices.keys())

    @property
    def registered_matrices(self) -> int:
        """Number of matrices currently held in shared memory."""
        with self._lock:
            return len(self._matrices)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run_sharded(
        self,
        key: str,
        A: CSRMatrix,
        spec: Dict[str, object],
        shard_plan: ShardPlan,
        X: Optional[np.ndarray],
        Y: Optional[np.ndarray],
        *,
        keep: bool = True,
    ) -> np.ndarray:
        """Execute one kernel call, its shards fanned out over the workers.

        ``shard_plan.num_shards`` must not exceed the pool size; shard ``s``
        runs on worker ``s``.  With ``keep=False`` the matrix's shared
        segments are torn down right after the call (one-shot matrices,
        e.g. sampled negatives).
        """
        if shard_plan.num_shards > self.processes:
            raise WorkerError(
                f"shard plan wants {shard_plan.num_shards} shards but the "
                f"pool has only {self.processes} workers"
            )
        with self._lock:
            self._check_open()
            self.register_matrix(key, A)
            busy = [a.shard for a in shard_plan.assignments if a.parts]
            try:
                self._ensure_loaded(busy, key)

                d = X.shape[1] if X is not None else Y.shape[1]
                if X is not None:
                    out_dtype = X.dtype
                elif np.issubdtype(Y.dtype, np.floating):
                    out_dtype = Y.dtype
                else:  # pragma: no cover - integer Y normalised by kernels
                    out_dtype = np.dtype(np.float32)

                ephemeral: List[_SharedArray] = []
                try:
                    x_meta = None
                    if X is not None:
                        shared_x = _SharedArray(X)
                        ephemeral.append(shared_x)
                        x_meta = shared_x.meta
                    if Y is None:
                        y_meta = None
                    elif X is not None and Y is X:
                        y_meta = "same_as_x"
                    else:
                        shared_y = _SharedArray(Y)
                        ephemeral.append(shared_y)
                        y_meta = shared_y.meta
                    shared_z = _SharedArray.empty((A.nrows, d), out_dtype)
                    ephemeral.append(shared_z)

                    sent: List[int] = []
                    first_error: Optional[BaseException] = None
                    crashed: List[int] = []
                    for a in shard_plan.assignments:
                        if not a.parts:
                            continue
                        raw_parts = [(p.start, p.stop, p.nnz) for p in a.parts]
                        msg = (
                            "run",
                            key,
                            spec,
                            x_meta,
                            y_meta,
                            shared_z.meta,
                            raw_parts,
                        )
                        try:
                            self._send(a.shard, msg)
                            sent.append(a.shard)
                        except WorkerCrashError as exc:
                            crashed.append(a.shard)
                            first_error = first_error or exc
                    for i in sent:
                        try:
                            self._recv(i)
                        except WorkerCrashError as exc:
                            crashed.append(i)
                            first_error = first_error or exc
                        except WorkerError as exc:
                            first_error = first_error or exc
                    for i in crashed:
                        self._restart(i)
                    if first_error is not None:
                        raise first_error
                    return np.array(shared_z.ndarray(), copy=True)
                finally:
                    for seg in ephemeral:
                        seg.destroy()
            finally:
                if not keep:
                    self.release_matrix(key)

    def submit_sharded(self, *args, **kwargs) -> "Future[np.ndarray]":
        """Asynchronous :meth:`run_sharded`; returns a future.

        Dispatch happens on a single background thread, so async and
        synchronous calls are serialised onto the same worker pipes.
        """
        with self._lock:
            self._check_open()
            if self._dispatcher is None:
                self._dispatcher = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-shard-dispatch"
                )
            return self._dispatcher.submit(self.run_sharded, *args, **kwargs)

    def ping(self) -> int:
        """Round-trip every worker; returns the number that answered."""
        with self._lock:
            self._check_open()
            self._broadcast(list(range(self.processes)), ("ping",))
            return self.processes

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _check_open(self) -> None:
        if self._closed:
            raise WorkerError("worker pool is closed")

    def stats(self) -> Dict[str, object]:
        """Pool accounting for logs and tests."""
        with self._lock:
            return {
                "processes": self.processes,
                "alive": sum(
                    1 for p in self._procs if p is not None and p.is_alive()
                ),
                "restarts": self.restarts,
                "registered_matrices": len(self._matrices),
            }

    def kill_worker(self, i: int) -> None:
        """Hard-kill worker ``i`` (crash-handling tests only)."""
        proc = self._procs[i]
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)

    def close(self) -> None:
        """Shut down workers and unlink every shared segment."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._dispatcher is not None:
                self._dispatcher.shutdown(wait=True)
                self._dispatcher = None
            for i, (proc, conn) in enumerate(zip(self._procs, self._conns)):
                if conn is None or proc is None:
                    continue
                try:
                    if proc.is_alive():
                        conn.send(("exit",))
                        if conn.poll(1.0):
                            conn.recv()
                except (BrokenPipeError, OSError):
                    pass
                try:
                    conn.close()
                except OSError:
                    pass
                proc.join(timeout=1.0)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=1.0)
                self._procs[i] = None
                self._conns[i] = None
            for shared in self._matrices.values():
                shared.destroy()
            self._matrices.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkerPool(processes={self.processes}, "
            f"matrices={len(self._matrices)}, restarts={self.restarts})"
        )
