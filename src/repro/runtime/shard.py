"""Shard planning: distributing a plan's partitions over worker processes.

The multi-process execution tier reuses :attr:`KernelPlan.partitions` — the
nnz-balanced 1-D row partitions every plan already carries — as its unit of
distribution, exactly as the single-process runtime reuses them as its unit
of thread scheduling.  A :class:`ShardPlan` groups those partitions into
``num_shards`` contiguous, nnz-balanced shards; each shard is executed by
one worker process of :class:`repro.runtime.workers.WorkerPool`.

Reordered plans (the ``reorder=`` locality tier) hand in the cache-panel
partitions of the *permuted* matrix: hub-heavy rows are spread by the
renumbering, so the panel nnz distribution is flatter and the resulting
shard skew (:meth:`ShardPlan.balance`) drops relative to the natural
ordering — the workers then execute the permuted matrix and the parent
maps the gathered output back to original vertex order.

Determinism
-----------
Sharding never re-partitions and never re-blocks: every shard executes its
partitions with the *original* :class:`~repro.core.partition.RowPartition`
objects against the *full* CSR matrix, and the edge-blocked kernels align
their blocks to the absolute edge grid of that matrix.  A row is therefore
processed with exactly the same gathers, segment reductions and
accumulation order no matter which shard (or thread, or the main process)
it lands in — results are bitwise identical to a sequential
single-process :func:`~repro.core.fused.fusedmm` call.  The test suite
asserts this for 1, 2 and 4 shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.partition import RowPartition
from ..errors import PartitionError

__all__ = ["ShardAssignment", "ShardPlan", "assign_shards", "route_shards"]


@dataclass(frozen=True)
class ShardAssignment:
    """The partitions one worker shard executes.

    Attributes
    ----------
    shard:
        Shard index in ``[0, num_shards)``.
    parts:
        The partitions assigned to this shard, in row order.  These are the
        plan's own :class:`RowPartition` objects — never recomputed ones.
    nnz:
        Total nonzeros of the shard (its computational weight).
    """

    shard: int
    parts: Tuple[RowPartition, ...]
    nnz: int

    @property
    def num_rows(self) -> int:
        """Total rows covered by this shard."""
        return sum(p.num_rows for p in self.parts)

    def __len__(self) -> int:  # pragma: no cover - convenience
        return len(self.parts)


@dataclass(frozen=True)
class ShardPlan:
    """A complete assignment of a plan's partitions to worker shards.

    Built by :func:`assign_shards`; consumed by
    :meth:`repro.runtime.workers.WorkerPool.run_sharded` and by
    :meth:`KernelRuntime.run_sharded`.  The assignment is a *partition* of
    the input list: every input :class:`RowPartition` appears in exactly one
    shard, in its original order (asserted by a hypothesis property test).
    """

    num_shards: int
    assignments: Tuple[ShardAssignment, ...]
    total_nnz: int

    @property
    def busy_shards(self) -> int:
        """Number of shards that received at least one nonzero of work."""
        return sum(1 for a in self.assignments if a.parts)

    def balance(self) -> float:
        """Load-balance factor: max shard nnz over mean busy-shard nnz."""
        sizes = [a.nnz for a in self.assignments if a.parts]
        if not sizes or self.total_nnz == 0:
            return 1.0
        mean = self.total_nnz / len(sizes)
        return float(max(sizes) / max(mean, 1e-12))

    def describe(self) -> Dict[str, object]:
        """Summary for logs, benchmarks and tests."""
        return {
            "num_shards": self.num_shards,
            "busy_shards": self.busy_shards,
            "total_nnz": self.total_nnz,
            "shard_nnz": [a.nnz for a in self.assignments],
            "shard_parts": [len(a.parts) for a in self.assignments],
            "balance": round(self.balance(), 4),
        }


def assign_shards(
    partitions: Sequence[RowPartition], num_shards: int
) -> ShardPlan:
    """Group ``partitions`` into ``num_shards`` contiguous nnz-balanced shards.

    The grouping mirrors :func:`~repro.core.partition.part1d` one level up:
    cumulative-nnz targets are placed at ``i * total / num_shards`` and each
    boundary snaps to the nearest partition edge at or past its target.
    Contiguity is deliberate — each shard covers one contiguous row range of
    ``Z``, so the parent can hand every worker a disjoint slice of the
    shared output buffer.

    The result is a partition of the input: no :class:`RowPartition` is
    lost, duplicated or reordered.  Shards may be empty when there are fewer
    partitions than shards (or when trailing partitions hold no work).
    """
    if num_shards <= 0:
        raise PartitionError(f"num_shards must be positive, got {num_shards}")
    parts = list(partitions)
    total_nnz = sum(p.nnz for p in parts)

    # Cumulative nnz at each partition boundary: cum[i] = nnz of parts[:i].
    cum = np.zeros(len(parts) + 1, dtype=np.int64)
    if parts:
        np.cumsum([p.nnz for p in parts], out=cum[1:])

    if total_nnz > 0:
        targets = (
            np.arange(1, num_shards, dtype=np.float64) * total_nnz
        ) / num_shards
        cuts = np.searchsorted(cum, targets, side="left").astype(np.int64)
    else:
        # No work at all: spread the (empty) partitions evenly by count.
        targets = (
            np.arange(1, num_shards, dtype=np.float64) * len(parts)
        ) / num_shards
        cuts = np.ceil(targets).astype(np.int64)
    cuts = np.clip(cuts, 0, len(parts))
    boundaries = np.concatenate(([0], cuts, [len(parts)]))
    boundaries = np.maximum.accumulate(boundaries)

    assignments: List[ShardAssignment] = []
    for s in range(num_shards):
        lo, hi = int(boundaries[s]), int(boundaries[s + 1])
        chunk = tuple(parts[lo:hi])
        assignments.append(
            ShardAssignment(shard=s, parts=chunk, nnz=sum(p.nnz for p in chunk))
        )
    return ShardPlan(
        num_shards=num_shards,
        assignments=tuple(assignments),
        total_nnz=total_nnz,
    )


def route_shards(
    shard_plan: ShardPlan, weights: Sequence[int]
) -> List[List[ShardAssignment]]:
    """Route a plan's shards to owners (hosts/pools) by capacity weight.

    ``weights[i]`` is owner ``i``'s slot count; owner ``i`` receives a
    *contiguous* group of shard assignments sized so that each group's nnz
    tracks its owner's share of the total capacity (cumulative-nnz targets
    snapped to shard edges — the same discipline :func:`assign_shards`
    applies one level down).  Contiguity means each owner covers one
    contiguous row range of the output, so a lost owner's work can be
    re-routed (or recomputed) as a single block.

    Zero-weight owners receive empty groups.  The routing never splits or
    reorders a shard, so executing the routed groups is executing the
    original plan — determinism is untouched.
    """
    if not weights or all(w <= 0 for w in weights):
        raise PartitionError("route_shards needs at least one positive weight")
    busy = [a for a in shard_plan.assignments if a.parts]
    total_nnz = sum(a.nnz for a in busy)
    total_weight = sum(max(int(w), 0) for w in weights)

    groups: List[List[ShardAssignment]] = []
    cursor = 0
    consumed = 0.0
    target = 0.0
    for w in weights:
        share = max(int(w), 0) / total_weight
        target += share * total_nnz
        group: List[ShardAssignment] = []
        # Greedily take shards while this owner is still under target;
        # always take at least one when work and weight remain, so no
        # trailing owner is starved by rounding.
        while cursor < len(busy) and (
            consumed + busy[cursor].nnz <= target
            or (not group and share > 0)
        ):
            if not group and share == 0:
                break
            group.append(busy[cursor])
            consumed += busy[cursor].nnz
            cursor += 1
            if consumed >= target:
                break
        groups.append(group)
    # Rounding may leave trailing shards; the last positive-weight owner
    # absorbs them (keeps its group contiguous).
    if cursor < len(busy):
        last = max(i for i, w in enumerate(weights) if w > 0)
        groups[last].extend(busy[cursor:])
    return groups
