"""The batched FusedMM kernel runtime.

:class:`KernelRuntime` is the serving layer the apps and benchmarks sit
on.  It owns

* an LRU **plan cache** (:mod:`repro.runtime.cache`) keyed by matrix
  fingerprint + kernel configuration, so repeated calls on the same
  adjacency skip pattern resolution, backend dispatch, partitioning and
  autotuning entirely;
* a shared **thread pool** reused across calls (the per-call executor of
  :func:`repro.core.parallel.run_partitioned` is bypassed);
* an **nnz-aware scheduler** (:meth:`run_batch`): large jobs are split
  over their plan's 1-D partitions and fanned out, small compatible jobs
  are packed into one block-diagonal kernel invocation
  (:mod:`repro.runtime.batch`);
* a **streaming epoch API** (:meth:`epochs`) that training loops bind once
  per adjacency and then drive with new feature matrices every epoch or
  minibatch;
* a **sharded multi-process tier** (:meth:`run_sharded` /
  :meth:`submit_sharded`, enabled with ``processes=``): the plan's 1-D
  partitions are grouped into nnz-balanced shards
  (:mod:`repro.runtime.shard`) and executed by a persistent pool of worker
  processes (:mod:`repro.runtime.workers`) that hold the CSR matrix in
  shared memory — the escape hatch from the GIL for kernels too small to
  amortise NumPy's internal threading;
* a **locality tier** (``reorder=``): plans can bind a vertex-reordered
  copy of the adjacency plus cache-blocked, column-compacted row panels
  (:mod:`repro.sparse.reorder`), computed once per matrix fingerprint and
  replayed every epoch — outputs are transparently mapped back to the
  original vertex order.

Determinism
-----------
Scheduling decisions (split counts, partition boundaries, packing, shard
assignment) depend only on the requests themselves — never on how many
worker threads or processes the runtime happens to own — so results are
bitwise identical across thread *and* shard counts, extending the
invariant documented in :mod:`repro.core.parallel`.  The locality tier
(``reorder=`` other than ``"none"``) deliberately trades the *bitwise*
part for throughput: reordered results are allclose-equivalent (exact at
float64 up to reassociation) and remain deterministic for a fixed
strategy and execution path.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.parallel import available_threads
from ..core.partition import RowPartition, part1d
from ..core.patterns import OpPattern, get_pattern
from ..sparse import as_csr, drop_reorder_memo, validate_reorder
from .batch import KernelRequest, pack_group_key, pack_requests
from .cache import CacheStats, PlanCache
from .codec import build_worker_config, remote_spec_meta
from .fingerprint import derived_fingerprint, matrix_fingerprint
from .plan import (
    KernelPlan,
    PlanKey,
    build_plan,
    effective_strategy,
    make_config,
    pattern_key,
)
from .remote import RemoteController
from .shard import ShardPlan, assign_shards, route_shards
from .workers import WorkerPool, plan_spec_from_plan

__all__ = ["KernelRuntime", "EpochStream"]

#: Requests at or below this nnz are candidates for packing.
DEFAULT_PACK_NNZ = 4096
#: Packing eligibility bound on the per-request dense operand footprint
#: ``(nrows + ncols) * d``.  Packing amortises per-call dispatch overhead,
#: but enlarges the gather working set (the packed X/Y concatenate all
#: requests); beyond roughly this many feature elements per request the
#: locality loss cancels the dispatch savings (measured empirically on the
#: kernels in this repo), so bigger requests run as singles instead.
DEFAULT_PACK_DENSE_ELEMS = 6144
#: Jobs above this nnz are split into multiple partition tasks.  One part
#: is roughly two default edge blocks of work — big enough that pool
#: dispatch overhead stays negligible, small enough that mid-sized graphs
#: (tens of thousands of edges) still parallelise.  Below the threshold
#: jobs run sequentially on purpose: for NumPy kernels that small, thread
#: fan-out costs more than it saves.
DEFAULT_SPLIT_NNZ = 16384
#: Upper bound on split tasks per job (keeps partitioning deterministic
#: and bounded regardless of pool width).
DEFAULT_MAX_SPLIT = 8
#: Below this nnz the streaming paths (``epochs``/``run_on``) keep a job in
#: process even when a worker pool exists: shipping the operands through
#: shared memory costs more than the kernel itself for small matrices.
#: Explicit ``run_sharded``/``submit_sharded`` calls ignore the threshold.
DEFAULT_SHARD_MIN_NNZ = 16384


def _req_dim(req: KernelRequest) -> int:
    """Feature dimension of a (normalised) request."""
    if req.X is not None:
        return req.X.shape[1]
    if req.Y is not None:
        return req.Y.shape[1]
    return 0


class EpochStream:
    """A per-adjacency handle for epoch-style training loops.

    Created by :meth:`KernelRuntime.epochs`; holds one cached plan and
    replays it with fresh operands:

    * :meth:`step` — the full-graph call of one epoch/iteration,
    * :meth:`run_on` — the same planned kernel on a derived matrix (a
      minibatch row slice, a sampled negative adjacency) without touching
      the plan cache.
    """

    def __init__(self, runtime: "KernelRuntime", A, plan: KernelPlan) -> None:
        self._runtime = runtime
        self.A = A
        self.plan = plan
        self.epochs_run = 0
        self.kernel_seconds = 0.0

    # ------------------------------------------------------------------ #
    def step(self, X=None, Y=None) -> np.ndarray:
        """Execute one full-adjacency epoch call with the cached plan.

        When the runtime owns a worker pool (``processes=``) and the bound
        adjacency is large enough, the call runs through the sharded
        multi-process tier — bitwise identically to the in-process path
        for ``reorder="none"`` plans.  Reordered plans are allclose
        across the two paths (the in-process path executes compacted
        panels, the sharded path natural-order kernels on the permuted
        matrix), each path deterministic in itself.
        """
        t0 = time.perf_counter()
        Z = self._runtime._execute_plan_auto(self.plan, self.A, X, Y)
        self.kernel_seconds += time.perf_counter() - t0
        self.epochs_run += 1
        return Z

    __call__ = step

    def run_on(self, A_sub, X=None, Y=None) -> np.ndarray:
        """Execute the planned kernel on a derived matrix (minibatch slice,
        sampled negatives, …) — resolution and dispatch are reused, the
        partitioning is recomputed for the new matrix with the runtime's
        nnz-aware split policy (large slices fan out on the shared pool or
        the worker shards, small ones run sequentially)."""
        t0 = time.perf_counter()
        Z = self._runtime._execute_plan_on(self.plan, as_csr(A_sub), X, Y)
        self.kernel_seconds += time.perf_counter() - t0
        return Z

    def describe(self) -> Dict[str, object]:
        """Plan summary plus stream-level counters."""
        info = self.plan.describe()
        info["epochs_run"] = self.epochs_run
        info["kernel_seconds"] = round(self.kernel_seconds, 6)
        return info


@dataclass
class _ShardPrep:
    """One prepared sharded dispatch (see ``KernelRuntime._prepare_sharded``)."""

    workers: Optional[WorkerPool]
    controller: Optional[RemoteController]
    key: str
    A: object
    spec: Dict[str, object]
    spec_meta: Optional[dict]
    shard_plan: ShardPlan
    rplan: Optional[KernelPlan]
    local_slots: int
    remote_slots: int


class KernelRuntime:
    """Batched, plan-caching FusedMM execution engine.

    Parameters
    ----------
    num_threads:
        Worker threads of the shared pool; ``None``/0 means all available,
        1 disables the pool (fully sequential, still deterministic).
    cache_size:
        Capacity of the plan LRU.
    autotune:
        Default autotuning policy for new plans (overridable per call).
    reorder:
        Default locality strategy for new plans (overridable per call):
        ``"none"`` (default, bitwise-exact), an explicit strategy from
        :data:`repro.sparse.REORDER_STRATEGIES`, or ``"auto"`` (measured
        once per plan; picked only when faster).  See
        :mod:`repro.sparse.reorder`.
    pack_nnz, split_nnz, max_split:
        nnz-aware scheduling thresholds; see :mod:`repro.runtime.batch`.
    processes:
        Worker *processes* of the sharded execution tier; 0 (default)
        disables it.  Shard workers run the kernels single-threaded over
        shared-memory CSR shards; see :mod:`repro.runtime.workers`.
    shards:
        Default shard count for sharded calls (defaults to ``processes``;
        clamped to the pool size per call).
    shard_min_nnz:
        Streaming calls (``epochs().step``/``run_on``) only use the worker
        pool for matrices at or above this nnz; explicit sharded calls
        ignore it.
    worker_start_method, worker_timeout, worker_matrix_cache:
        Passed through to :class:`~repro.runtime.workers.WorkerPool`
        (start method, per-call reply ceiling, bound on matrices kept
        registered in shared memory).
    remote_port, remote_host:
        Enable the distributed tier: listen on this address for
        ``repro worker`` host registrations (``remote_port=0`` binds an
        ephemeral port, readable as ``runtime.controller.port``).
        Admitted hosts add shard capacity next to the local processes;
        see :mod:`repro.runtime.remote`.
    remote_heartbeat_s, remote_timeout:
        Liveness cadence for idle hosts and the per-exchange reply
        ceiling after which a host is declared lost and its shards are
        retried on the survivors.  RUN replies additionally get an
        nnz-scaled window derived from observed throughput, so small
        jobs detect stragglers long before this worst-case cap.
    remote_heartbeat_strikes:
        Consecutive missed heartbeat pings before an idle host is
        evicted (default 3 — one GC pause is a strike, not a loss).
    remote_hedge:
        Straggler hedging: when a dispatched chunk exceeds a
        quantile-based deadline (derived from observed per-nnz
        throughput), it is speculatively re-executed in-parent and the
        first completion wins — bitwise-safe because both sides compute
        identical row ranges (counters ``hedges``/``hedge_wins`` in
        ``stats()["remote"]``).
    remote_token:
        Shared secret ``repro worker`` hosts must present to register
        (constant-time compared).  ``None`` admits any peer — fine on
        the loopback default ``remote_host``, set it whenever the
        controller binds a cross-machine interface.

    Example
    -------
    >>> from repro.runtime import KernelRuntime
    >>> from repro.sparse import random_csr
    >>> from repro.graphs import random_features
    >>> rt = KernelRuntime(num_threads=1)
    >>> A = random_csr(100, 100, density=0.05, seed=0)
    >>> X = random_features(100, 8, seed=0)
    >>> Z = rt.run(A, X, pattern="sigmoid_embedding")   # plans + executes
    >>> Z2 = rt.run(A, X, pattern="sigmoid_embedding")  # cache hit
    >>> rt.stats()["plan_cache"]["hits"]
    1
    """

    def __init__(
        self,
        num_threads: Optional[int] = None,
        *,
        cache_size: int = 64,
        autotune: bool = False,
        autotune_dim: int = 128,
        reorder: str = "none",
        pack_small: bool = True,
        pack_nnz: int = DEFAULT_PACK_NNZ,
        pack_dense_elems: int = DEFAULT_PACK_DENSE_ELEMS,
        split_nnz: int = DEFAULT_SPLIT_NNZ,
        max_split: int = DEFAULT_MAX_SPLIT,
        processes: Optional[int] = None,
        shards: Optional[int] = None,
        shard_min_nnz: int = DEFAULT_SHARD_MIN_NNZ,
        worker_start_method: Optional[str] = None,
        worker_timeout: Optional[float] = None,
        worker_matrix_cache: int = 16,
        remote_port: Optional[int] = None,
        remote_host: str = "127.0.0.1",
        remote_heartbeat_s: float = 2.0,
        remote_heartbeat_strikes: int = 3,
        remote_timeout: float = 60.0,
        remote_token: Optional[str] = None,
        remote_hedge: bool = True,
    ) -> None:
        self.num_threads = num_threads or available_threads()
        self.autotune = autotune
        self.autotune_dim = autotune_dim
        self.reorder = validate_reorder(reorder)
        self.pack_small = pack_small
        self.pack_nnz = pack_nnz
        self.pack_dense_elems = pack_dense_elems
        self.split_nnz = split_nnz
        self.max_split = max_split
        # ``shards=N`` without ``processes=`` implies an N-worker pool.
        self.processes = int(processes or 0)
        if self.processes == 0 and shards:
            self.processes = int(shards)
        self.shards = int(shards or self.processes)
        self.shard_min_nnz = shard_min_nnz
        self.worker_start_method = worker_start_method
        self.worker_timeout = worker_timeout
        self.worker_matrix_cache = worker_matrix_cache
        self.remote_port = remote_port
        self.remote_host = remote_host
        self.remote_heartbeat_s = remote_heartbeat_s
        self.remote_heartbeat_strikes = remote_heartbeat_strikes
        self.remote_timeout = remote_timeout
        self.remote_token = remote_token
        self.remote_hedge = remote_hedge
        self._workers: Optional[WorkerPool] = None
        self._workers_lock = threading.Lock()
        self._controller: Optional[RemoteController] = None
        self._controller_lock = threading.Lock()
        self._remote_dispatcher: Optional[ThreadPoolExecutor] = None
        self._cache = PlanCache(cache_size)
        # Matrix-independent dispatch configs for one-shot batch requests
        # (unbounded is fine: one entry per pattern/backend/blocking tuple).
        self._configs: Dict[tuple, KernelPlan] = {}
        self._configs_lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        # Named live stats callables merged into stats() — the serving
        # layer attaches its coalescer here so queue/window health is
        # observable through every surface that already reads runtime
        # stats (``repro runtime stats``, the apps' ``runtime_stats()``).
        self._stats_sections: Dict[str, object] = {}
        self._counters: Dict[str, int] = {
            "requests": 0,
            "batches": 0,
            "packed_requests": 0,
            "packed_groups": 0,
            "split_jobs": 0,
            "single_jobs": 0,
            "submitted": 0,
            "sharded_jobs": 0,
            "sharded_submitted": 0,
            "remote_jobs": 0,
            "remote_fallbacks": 0,
        }
        self._closed = False

    # ------------------------------------------------------------------ #
    # Pool management
    # ------------------------------------------------------------------ #
    @property
    def pool(self) -> Optional[ThreadPoolExecutor]:
        """The shared executor (created lazily; ``None`` when sequential)."""
        if self.num_threads <= 1:
            return None
        with self._pool_lock:
            if self._pool is None and not self._closed:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.num_threads,
                    thread_name_prefix="repro-runtime",
                )
            return self._pool

    @property
    def workers(self) -> Optional[WorkerPool]:
        """The sharded-tier worker pool (created lazily; ``None`` when
        ``processes=0`` or after :meth:`close`)."""
        if self.processes <= 0:
            return None
        with self._workers_lock:
            if self._workers is None and not self._closed:
                self._workers = WorkerPool(
                    self.processes,
                    start_method=self.worker_start_method,
                    timeout=self.worker_timeout,
                    matrix_cache=self.worker_matrix_cache,
                )
            return self._workers

    @property
    def controller(self) -> Optional[RemoteController]:
        """The distributed-tier controller (created lazily when
        ``remote_port=`` is configured; ``None`` otherwise).

        Creation opens the listening socket, so worker hosts started with
        ``repro worker`` can register from then on; admitted hosts join
        the local processes as shard-execution capacity.
        """
        if self.remote_port is None:
            return None
        with self._controller_lock:
            if self._controller is None and not self._closed:
                self._controller = RemoteController(
                    host=self.remote_host,
                    port=self.remote_port,
                    heartbeat_s=self.remote_heartbeat_s,
                    heartbeat_strikes=self.remote_heartbeat_strikes,
                    timeout=self.remote_timeout,
                    token=self.remote_token,
                    hedge=self.remote_hedge,
                )
            return self._controller

    def close(self) -> None:
        """Shut down the shared pool, the worker processes and the remote
        controller; the runtime stays usable sequentially (in-process)."""
        with self._pool_lock:
            self._closed = True
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
        with self._workers_lock:
            if self._workers is not None:
                self._workers.close()
                self._workers = None
        with self._controller_lock:
            if self._controller is not None:
                self._controller.close()
                self._controller = None
            if self._remote_dispatcher is not None:
                self._remote_dispatcher.shutdown(wait=True)
                self._remote_dispatcher = None

    def __enter__(self) -> "KernelRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        # Reclaim pool threads and worker processes when a runtime owner
        # (e.g. an app instance) is garbage collected without close().
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False)
        workers = getattr(self, "_workers", None)
        if workers is not None:
            try:
                workers.close()
            except Exception:
                pass
        controller = getattr(self, "_controller", None)
        if controller is not None:
            try:
                controller.close()
            except Exception:
                pass

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def plan(
        self,
        A,
        *,
        pattern: Union[OpPattern, str] = "sigmoid_embedding",
        backend: str = "auto",
        block_size: Optional[int] = None,
        strategy: str = "auto",
        autotune: Optional[bool] = None,
        reorder: Optional[str] = None,
        **pattern_overrides,
    ) -> KernelPlan:
        """Fetch (or build and cache) the execution plan for ``A``.

        ``reorder`` selects the locality tier for this plan (default: the
        runtime's ``reorder`` setting); the permutation, panels and any
        measured sweep happen once here and are replayed by every
        execution of the cached plan.
        """
        A = as_csr(A)
        op_pattern = get_pattern(pattern, **pattern_overrides)
        resolved = op_pattern.resolved()
        key = PlanKey(
            fingerprint=matrix_fingerprint(A),
            pattern=pattern_key(resolved),
            backend=backend,
            num_threads=self.num_threads,
            block_size=block_size or 0,
            strategy=strategy,
            autotune=self.autotune if autotune is None else bool(autotune),
            reorder=self.reorder if reorder is None else reorder,
        )
        plan = self._cache.get(key)
        if plan is not None:
            return plan
        plan = build_plan(
            A,
            key,
            op_pattern,
            resolved,
            split_nnz=self.split_nnz,
            max_split=self.max_split,
            autotune_dim=self.autotune_dim,
        )
        self._cache.put(key, plan)
        return plan

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _bump(self, counter: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._counters[counter] += amount

    def _execute_plan(self, plan: KernelPlan, A, X, Y) -> np.ndarray:
        """Execute a plan with the runtime's split policy and shared pool.

        Split counts come from the plan (a function of nnz alone), so the
        arithmetic is identical whether the parts run on the pool or
        sequentially on this thread.
        """
        A = as_csr(A)
        if plan.nsplit > 1 and plan.supports_parts:
            self._bump("split_jobs")
            pool = self.pool
            return plan.execute(
                A, X, Y, parts=plan.partitions, pool=pool,
                num_threads=plan.nsplit if pool is not None else 1,
            )
        return plan.execute(A, X, Y, num_threads=1)

    def _execute_plan_on(self, plan: KernelPlan, A, X, Y) -> np.ndarray:
        """Execute a plan on a matrix other than the one it was built for
        (minibatch slices, sampled negatives) with the same nnz-aware split
        policy — recomputing the partitioning, never the dispatch.

        The split count is a function of the matrix alone, and partitions
        run on the shared pool (no per-call executors), so determinism
        across thread counts carries over to derived-matrix calls.
        """
        nsplit = max(1, min(self.max_split, -(-A.nnz // max(self.split_nnz, 1))))
        if nsplit > 1 and plan.supports_parts:
            parts = part1d(A, nsplit)
            if self._sharding_eligible(plan, A):
                Z = self._execute_plan_sharded(
                    plan, A, X, Y, parts=parts, keep=False
                )
                if Z is not None:
                    return Z
            self._bump("split_jobs")
            pool = self.pool
            return plan.execute(
                A, X, Y, parts=parts, pool=pool,
                num_threads=nsplit if pool is not None else 1,
            )
        return plan.execute(A, X, Y, num_threads=1)

    # ------------------------------------------------------------------ #
    # Sharded (multi-process / multi-host) execution
    # ------------------------------------------------------------------ #
    def _remote_capacity(self) -> int:
        """Live remote slot count (0 without a controller or hosts)."""
        controller = self.controller
        return 0 if controller is None else controller.total_slots()

    @property
    def sharded_capacity(self) -> int:
        """Total sharded-tier slots: local worker processes plus the slots
        of currently registered remote hosts.  Zero means :meth:`run_sharded`
        and :meth:`submit_sharded` will fall back to in-process execution.
        Side-effect free: does not lazily spawn the worker pool."""
        return max(0, self.processes) + self._remote_capacity()

    def _sharding_eligible(self, plan: KernelPlan, A) -> bool:
        """Whether a *streaming* call may route through the sharded tier
        (the local worker pool and/or registered remote hosts)."""
        return (
            (self.processes > 0 or self._remote_capacity() > 0)
            and plan.supports_parts
            and A.nnz >= self.shard_min_nnz
        )

    def _execute_plan_auto(self, plan: KernelPlan, A, X, Y) -> np.ndarray:
        """Epoch-stream execution: sharded tier when enabled and worthwhile,
        the in-process path otherwise — bitwise identical either way for
        ``reorder="none"`` plans, allclose for reordered ones."""
        if self._sharding_eligible(plan, A):
            Z = self._execute_plan_sharded(plan, A, X, Y)
            if Z is not None:
                return Z
        return self._execute_plan(plan, A, X, Y)

    def _prepare_sharded(
        self,
        plan: KernelPlan,
        A,
        *,
        shards: Optional[int] = None,
        parts=None,
    ) -> Optional["_ShardPrep"]:
        """Everything a sharded dispatch needs, or ``None`` when the tier
        cannot take the job (no capacity, unpicklable pattern) and the
        caller must fall back to the in-process path.

        Shared by the sync and async entry points so their scheduling can
        never drift apart.  Operands are *not* copied here — the pool
        detects ``Y is X`` aliasing on the original objects and copies
        exactly once into shared memory.

        Capacity is the local worker-process count plus the slot count of
        live remote hosts; shard counts clamp to it.  Patterns that cannot
        cross the network (non-string operator slots) keep remote capacity
        out of the count, so they still shard locally.

        For a reordered plan the tier ships the *permuted* matrix (under a
        strategy-derived key) and builds the shards from the permuted
        cache-panel partitions — reordered matrices nnz-balance better, so
        shard skew drops.  The caller permutes the operands and maps the
        gathered output back via the returned plan handle.
        """
        if not plan.supports_parts:
            return None
        spec = plan_spec_from_plan(plan)
        if spec is None:
            return None
        workers = self.workers
        controller = self.controller
        spec_meta = None
        remote_slots = 0
        if controller is not None:
            spec_meta = remote_spec_meta(spec)
            if spec_meta is not None:
                remote_slots = controller.total_slots()
        local_slots = workers.processes if workers is not None else 0
        capacity = local_slots + remote_slots
        if capacity == 0:
            return None
        A = as_csr(A)
        reordered = (
            parts is None
            and plan.reorder != "none"
            and plan.reordered is not None
            and plan.matches_bound(A)
        )
        if reordered:
            # Workers execute the permuted matrix with natural-order
            # kernels; the permuted panel boundaries are the shard units.
            A = plan.reordered
            key = derived_fingerprint(plan.key.fingerprint, f"reorder={plan.reorder}")
        else:
            key = plan.key.fingerprint if parts is None else matrix_fingerprint(A)
        partitions = plan.partitions if parts is None else parts
        nshards = self.shards if shards is None else int(shards)
        if nshards <= 0:
            nshards = capacity
        nshards = max(1, min(nshards, capacity))
        shard_plan = assign_shards(partitions, nshards)
        return _ShardPrep(
            workers=workers,
            controller=controller if remote_slots > 0 else None,
            key=key,
            A=A,
            spec=spec,
            spec_meta=spec_meta,
            shard_plan=shard_plan,
            rplan=plan if reordered else None,
            local_slots=local_slots,
            remote_slots=remote_slots,
        )

    def _run_prepared(self, prep: "_ShardPrep", X, Y, *, keep: bool) -> np.ndarray:
        """Execute a prepared shard dispatch (local pool, remote hosts, or
        a hybrid of both), without the reorder pre/post mapping."""
        if prep.controller is None:
            return prep.workers.run_sharded(
                prep.key, prep.A, prep.spec, prep.shard_plan, X, Y, keep=keep
            )
        return self._run_hybrid(prep, X, Y, keep=keep)

    def _run_hybrid(self, prep: "_ShardPrep", X, Y, *, keep: bool) -> np.ndarray:
        """Split one shard plan between the local pool and remote hosts.

        Contiguous shard groups are routed by slot weight; the local group
        runs on the worker pool concurrently with the remote dispatch.
        Assignments no surviving host could execute come back from the
        controller and run in-parent through the *same* rebuilt worker
        config, so results stay bitwise identical to a purely local
        sharded call and the batch always completes.
        """
        A = prep.A
        d = X.shape[1] if X is not None else Y.shape[1]
        if X is not None:
            out_dtype = X.dtype
        elif np.issubdtype(Y.dtype, np.floating):
            out_dtype = Y.dtype
        else:  # pragma: no cover - integer Y normalised by kernels
            out_dtype = np.dtype(np.float32)
        Z = np.zeros((A.nrows, d), dtype=out_dtype)
        local_group, remote_group = route_shards(
            prep.shard_plan, [prep.local_slots, prep.remote_slots]
        )
        local_future: Optional["Future[np.ndarray]"] = None
        if local_group and prep.workers is not None:
            local_parts = [p for a in local_group for p in a.parts]
            local_plan = assign_shards(
                local_parts, min(len(local_group), prep.workers.processes)
            )
            local_future = prep.workers.submit_sharded(
                prep.key, A, prep.spec, local_plan, X, Y, keep=keep
            )
        try:
            if remote_group:
                self._bump("remote_jobs")
                leftovers = prep.controller.run_assignments(
                    prep.key, A, prep.spec_meta, remote_group, X, Y, Z
                )
                if leftovers:
                    # Every remote host is gone: finish the lost row
                    # ranges in-parent through the same rebuilt config
                    # the workers use — complete, correct, never hung.
                    self._bump("remote_fallbacks")
                    self._execute_assignments_inline(
                        prep.spec, A, X, Y, Z, leftovers
                    )
        finally:
            if local_future is not None:
                Z_local = local_future.result()
                lo = min(p.start for a in local_group for p in a.parts)
                hi = max(p.stop for a in local_group for p in a.parts)
                Z[lo:hi] = Z_local[lo:hi]
        return Z

    @staticmethod
    def _execute_assignments_inline(spec, A, X, Y, Z, assignments) -> None:
        """Run shard assignments in-parent, writing into ``Z``.

        Executes through :func:`build_worker_config` — the exact config a
        worker would rebuild — so fallback rows are byte-for-byte what the
        lost host would have produced.
        """
        cfg = build_worker_config(spec)
        for a in assignments:
            if not a.parts:
                continue
            parts = list(a.parts)
            w0 = min(p.start for p in parts)
            w1 = max(p.stop for p in parts)
            cfg.execute(
                A,
                X,
                Y,
                parts=parts,
                num_threads=1,
                block_size=spec["block_size"],
                strategy=spec["strategy"],
                out=Z[w0:w1],
                row_offset=w0,
            )

    def _execute_plan_sharded(
        self,
        plan: KernelPlan,
        A,
        X,
        Y,
        *,
        shards: Optional[int] = None,
        parts=None,
        keep: bool = True,
    ) -> Optional[np.ndarray]:
        """Fan a plan's partitions out over worker processes and hosts.

        Returns ``None`` when the sharded tier cannot take the job so
        callers fall back to the in-process path.  The partitions — the
        plan's own, or the ``parts`` computed for a derived matrix — are
        grouped by :func:`assign_shards`; results are bitwise identical to
        the in-process execution because both run the same partitions with
        the same resolved kernel, wherever each shard lands.
        """
        prep = self._prepare_sharded(plan, A, shards=shards, parts=parts)
        if prep is None:
            return None
        rplan = prep.rplan
        if rplan is not None:
            X, Y = rplan.permute_operands(X, Y)
        self._bump("sharded_jobs")
        Z = self._run_prepared(prep, X, Y, keep=keep)
        if rplan is not None:
            Z = Z[rplan.inv_perm]
        return Z

    def shard_plan(self, A, *, shards: Optional[int] = None, **plan_opts) -> ShardPlan:
        """The shard assignment a sharded call on ``A`` would use."""
        plan = self.plan(A, **plan_opts)
        nshards = self.shards if shards is None else int(shards)
        nshards = max(1, min(nshards, self.processes or nshards))
        return assign_shards(plan.partitions, nshards)

    def run_sharded(
        self, A, X=None, Y=None, *, shards: Optional[int] = None, **plan_opts
    ) -> np.ndarray:
        """One-shot planned execution through the multi-process tier.

        Bitwise identical to :meth:`run` (and to sequential
        :func:`~repro.core.fused.fusedmm`) for ``reorder="none"`` plans;
        reordered plans are allclose to :meth:`run` — the workers execute
        natural-order kernels on the permuted matrix, deterministically
        for any shard count.  Falls back to the in-process path when the
        runtime has no worker pool (``processes=0``) or the pattern
        cannot cross a process boundary.
        """
        self._bump("requests")
        plan = self.plan(A, **plan_opts)
        Z = self._execute_plan_sharded(plan, A, X, Y, shards=shards)
        if Z is None:
            return self._execute_plan(plan, A, X, Y)
        return Z

    def submit_sharded(
        self, A, X=None, Y=None, *, shards: Optional[int] = None, **plan_opts
    ) -> "Future[np.ndarray]":
        """Asynchronous :meth:`run_sharded`; returns a future.

        Planning happens on the caller thread (cache accounting stays
        ordered); dispatch and gather run on the worker pool's background
        dispatcher.  Without a worker pool the request executes
        synchronously and a completed future is returned.
        """
        self._bump("requests")
        self._bump("sharded_submitted")
        plan = self.plan(A, **plan_opts)
        prep = self._prepare_sharded(plan, A, shards=shards)
        if prep is None:
            fut: "Future[np.ndarray]" = Future()
            try:
                fut.set_result(self._execute_plan(plan, A, X, Y))
            except BaseException as exc:  # pragma: no cover - propagated
                fut.set_exception(exc)
            return fut
        rplan = prep.rplan
        if rplan is not None:
            X, Y = rplan.permute_operands(X, Y)
        self._bump("sharded_jobs")
        if prep.controller is not None:
            # Hybrid dispatches coordinate local and remote legs, so they
            # run on their own background thread instead of the pool's
            # single dispatcher.
            with self._pool_lock:
                if self._remote_dispatcher is None:
                    self._remote_dispatcher = ThreadPoolExecutor(
                        max_workers=1,
                        thread_name_prefix="repro-remote-submit",
                    )
                dispatcher = self._remote_dispatcher
            raw = dispatcher.submit(self._run_hybrid, prep, X, Y, keep=True)
        else:
            raw = prep.workers.submit_sharded(
                prep.key, prep.A, prep.spec, prep.shard_plan, X, Y, keep=True
            )
        if rplan is None:
            return raw
        # Map the gathered permuted output back to original vertex order
        # when the worker-side future resolves.
        mapped: "Future[np.ndarray]" = Future()

        def _finish(fut: "Future[np.ndarray]") -> None:
            try:
                mapped.set_result(fut.result()[rplan.inv_perm])
            except BaseException as exc:
                mapped.set_exception(exc)

        raw.add_done_callback(_finish)
        return mapped

    def run(self, A, X=None, Y=None, **plan_opts) -> np.ndarray:
        """One-shot planned execution: ``Z = FusedMM(A, X, Y)``.

        Functionally equivalent to :func:`repro.core.fused.fusedmm` but
        amortised: the second call with the same adjacency and
        configuration skips planning entirely.
        """
        self._bump("requests")
        plan = self.plan(A, **plan_opts)
        return self._execute_plan(plan, A, X, Y)

    def submit(self, A, X=None, Y=None, **plan_opts) -> "Future[np.ndarray]":
        """Asynchronous :meth:`run`; returns a future.

        Planning (cache lookup / plan build) happens on the caller thread
        so cache accounting stays ordered; only kernel execution is
        deferred.  Without a pool the request executes synchronously and a
        completed future is returned.
        """
        self._bump("requests")
        self._bump("submitted")
        plan = self.plan(A, **plan_opts)
        A = as_csr(A)
        pool = self.pool
        if pool is None:
            fut: "Future[np.ndarray]" = Future()
            try:
                fut.set_result(plan.execute(A, X, Y, num_threads=1))
            except BaseException as exc:  # pragma: no cover - propagated to caller
                fut.set_exception(exc)
            return fut
        # Executed entirely inside one worker (no nested pool use): same
        # partition list, sequential — bitwise identical to run().
        if plan.nsplit > 1 and plan.supports_parts:
            return pool.submit(
                plan.execute, A, X, Y, parts=plan.partitions, num_threads=1
            )
        return pool.submit(plan.execute, A, X, Y, num_threads=1)

    # ------------------------------------------------------------------ #
    def _config(self, req: KernelRequest) -> KernelPlan:
        """Cached matrix-independent dispatch config for a request.

        Requests with string patterns and no overrides (the overwhelmingly
        common case) share one cached config per configuration tuple;
        anything else is resolved inline.
        """
        overrides = dict(req.overrides)
        if not isinstance(req.pattern, str) or overrides:
            op_pattern = get_pattern(req.pattern, **overrides)
            return make_config(
                op_pattern,
                op_pattern.resolved(),
                backend=req.backend,
                block_size=req.block_size,
                strategy=req.strategy,
                num_threads=self.num_threads,
            )
        key = (req.pattern, req.backend, req.block_size or 0, req.strategy)
        with self._configs_lock:
            cfg = self._configs.get(key)
        if cfg is not None:
            return cfg
        op_pattern = get_pattern(req.pattern)
        cfg = make_config(
            op_pattern,
            op_pattern.resolved(),
            backend=req.backend,
            block_size=req.block_size,
            strategy=req.strategy,
            num_threads=self.num_threads,
        )
        with self._configs_lock:
            self._configs[key] = cfg
        return cfg

    def run_batch(
        self, requests: Sequence[Union[KernelRequest, dict]]
    ) -> List[np.ndarray]:
        """Execute many requests with nnz-aware scheduling.

        Results are returned in request order and are bitwise identical to
        issuing each request as a sequential single-threaded
        :func:`~repro.core.fused.fusedmm` call with the same parameters.

        Small one-shot requests deliberately bypass the plan LRU (their
        dispatch decisions come from a matrix-independent config cache), so
        batch traffic never evicts the long-lived epoch plans.
        """
        reqs: List[KernelRequest] = [
            (r if isinstance(r, KernelRequest) else KernelRequest(**r)).normalized()
            for r in requests
        ]
        self._bump("batches")
        self._bump("requests", len(reqs))
        if not reqs:
            return []

        results: List[Optional[np.ndarray]] = [None] * len(reqs)
        pool = self.pool

        # Classify: packable smalls, splittable larges, everything else.
        plans: List[KernelPlan] = []
        groups: Dict[tuple, List[int]] = {}
        larges: List[int] = []
        singles: List[int] = []
        for i, req in enumerate(reqs):
            cfg = self._config(req)
            if req.A.nnz > self.split_nnz and cfg.supports_parts:
                # Worth a full (fingerprinted, LRU-cached) plan: the split
                # partitioning is reused on repeated submissions.  Batch
                # requests are one-shot, so the locality tier has nothing
                # to amortise against — reorder is pinned to "none", which
                # also keeps run_batch's bitwise-identity promise intact
                # under a runtime-wide reorder default.
                cfg = self.plan(
                    req.A,
                    pattern=req.pattern,
                    backend=req.backend,
                    block_size=req.block_size,
                    strategy=req.strategy,
                    reorder="none",
                    **dict(req.overrides),
                )
                larges.append(i)
            elif (
                self.pack_small
                and cfg.supports_parts
                # Packable requests must fit inside one edge block of a
                # standalone call, so a packed multi-request block replays
                # the exact same per-row arithmetic …
                and req.A.nnz <= min(self.pack_nnz, cfg.block_size)
                # … and must be small enough that the enlarged gather
                # working set doesn't cancel the dispatch savings.
                and (req.A.nrows + req.A.ncols) * _req_dim(req) <= self.pack_dense_elems
            ):
                groups.setdefault(pack_group_key(cfg, req), []).append(i)
            else:
                singles.append(i)
            plans.append(cfg)

        # Groups of one are ordinary single jobs.
        packed_groups: List[List[int]] = []
        for members in groups.values():
            if len(members) == 1:
                singles.append(members[0])
            else:
                packed_groups.append(members)

        def run_single(i: int) -> np.ndarray:
            return plans[i].execute(reqs[i].A, reqs[i].X, reqs[i].Y, num_threads=1)

        def run_packed(members: List[int]) -> List[np.ndarray]:
            packed = pack_requests([reqs[i] for i in members])
            plan = plans[members[0]]
            # Coalesce the per-request partitions into request-aligned
            # parts of roughly one planned edge block each.  Each part is
            # then processed as a single fused block (``block_size`` covers
            # the largest part): rows never straddle a block boundary —
            # every row is one segment reduction, exactly as in a
            # standalone single-threaded call — so results are bitwise
            # identical, while the gathers/einsum/reduceat vectorise over
            # whole multi-request blocks instead of per-request calls.
            # Part boundaries depend only on the requests, never on the
            # pool width, so thread-count determinism is preserved.
            target = max(plan.block_size, 1)
            parts: List[RowPartition] = []
            acc_start = acc_stop = acc_nnz = 0
            for p in packed.parts:
                if acc_nnz and acc_nnz + p.nnz > target:
                    parts.append(RowPartition(acc_start, acc_stop, acc_nnz))
                    acc_start, acc_nnz = acc_stop, 0
                acc_stop = p.stop
                acc_nnz += p.nnz
            if acc_stop > acc_start:
                parts.append(RowPartition(acc_start, acc_stop, acc_nnz))
            # One block per part: with grid-aligned blocks the only multiple
            # of ``bs`` is edge 0 when ``bs`` covers the whole packed edge
            # array, so no part is ever cut internally.
            bs = max(packed.A.nnz, 1)
            group_pool = self.pool
            Z = plan.execute(
                packed.A,
                packed.X,
                packed.Y,
                parts=parts,
                pool=group_pool,
                num_threads=len(parts) if group_pool is not None else 1,
                block_size=bs,
                strategy=effective_strategy(plan, reqs[members[0]].A),
            )
            return packed.split_result(Z)

        futures = []
        if pool is not None:
            for i in singles:
                futures.append((i, pool.submit(run_single, i)))
        # Packed groups and large jobs fan their partitions out over the
        # pool from this thread (never from inside a worker — no nested
        # waiting); singles run concurrently as ordinary pool tasks.
        for members in packed_groups:
            for i, Z in zip(members, run_packed(members)):
                results[i] = Z
        for i in larges:
            results[i] = self._execute_plan(plans[i], reqs[i].A, reqs[i].X, reqs[i].Y)
        if pool is None:
            for i in singles:
                results[i] = run_single(i)
        else:
            for i, fut in futures:
                results[i] = fut.result()

        self._bump("single_jobs", len(singles))
        self._bump("packed_groups", len(packed_groups))
        self._bump("packed_requests", sum(len(m) for m in packed_groups))
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    def epochs(self, A, **plan_opts) -> EpochStream:
        """Bind a cached plan to ``A`` for an epoch-style training loop."""
        A = as_csr(A)
        plan = self.plan(A, **plan_opts)
        return EpochStream(self, A, plan)

    # ------------------------------------------------------------------ #
    def cache_stats(self) -> CacheStats:
        """Plan-cache accounting (hits, misses, evictions, size)."""
        return self._cache.stats()

    def clear_cache(self) -> None:
        """Drop all cached plans."""
        self._cache.clear()

    def release_matrix(self, fingerprint: str, *, remote: bool = True) -> Dict[str, int]:
        """Evict every cache entry derived from ``fingerprint``'s lineage.

        Cascades through all four tiers that key on matrix fingerprints:
        cached plans, the reorder memo, worker shared-memory segments and
        remote host LRUs.  Derived keys (``<fp>|reorder=...``) and
        versioned descendants (``<fp>@vN``) are covered too — this is the
        one call sites use when a graph is dropped or superseded, so no
        tier can leak entries for matrices nothing will ask for again.
        Returns per-tier eviction counts (for stats and tests).

        ``remote=False`` skips the remote tier: the dynamic-graph path
        keeps the superseded version on agents for one more round because
        it is the splice base of the next dirty-shard delta ship.
        """
        fingerprint = str(fingerprint)
        evicted = {
            "plans": self._cache.evict_fingerprint(fingerprint),
            "reorder": drop_reorder_memo(fingerprint),
            "worker_matrices": 0,
            "remote_matrices": 0,
        }
        with self._workers_lock:
            workers = self._workers
        if workers is not None:
            evicted["worker_matrices"] = workers.release_fingerprint(fingerprint)
        if remote:
            with self._controller_lock:
                controller = self._controller
            if controller is not None:
                evicted["remote_matrices"] = controller.drop_matrix(fingerprint)
        return evicted

    def plan_bytes(self, fingerprint: str) -> Dict[str, int]:
        """Cached-plan count and retained bytes for one fingerprint lineage
        (feeds the per-graph memory accounting on ``/statz``)."""
        return self._cache.bytes_for(str(fingerprint))

    def update_matrix(
        self,
        old_fingerprint: str,
        A_new,
        new_fingerprint: Optional[str] = None,
        dirty_rows=None,
        *,
        carry_factor: Optional[float] = None,
    ) -> Dict[str, object]:
        """Refresh every cached plan of a mutated matrix version in place.

        For each plan keyed on ``old_fingerprint`` a successor keyed on
        the new fingerprint is built through
        :func:`repro.runtime.dynamic.refresh_plan` — backend resolution,
        autotune results and strategy carry over; partitions, and for
        reordered plans the spliced permuted matrix plus the dirty panels,
        are recomputed.  The old version's plans are evicted afterwards
        (nothing will ask for them again).  Returns the invalidation
        accounting, including ``derived`` entries for carried reorders so
        the dynamic-graph tier can register permuted-space delta sources.
        """
        from .dynamic import DEFAULT_CARRY_FACTOR, refresh_plan

        A_new = as_csr(A_new)
        old_fingerprint = str(old_fingerprint)
        new_fp = (
            str(new_fingerprint) if new_fingerprint else matrix_fingerprint(A_new)
        )
        factor = DEFAULT_CARRY_FACTOR if carry_factor is None else float(carry_factor)
        dirty = (
            None
            if dirty_rows is None
            else np.asarray(dirty_rows, dtype=np.int64)
        )
        info: Dict[str, object] = {
            "plans_refreshed": 0,
            "panels_rebuilt": 0,
            "panels_reused": 0,
            "reorders_carried": 0,
            "reorders_rebuilt": 0,
            "derived": [],
        }
        carry_cache: Dict[str, object] = {}
        seen_strategies: set = set()
        for key, plan in self._cache.entries_for(old_fingerprint):
            if key.fingerprint != old_fingerprint:
                continue
            new_key = replace(key, fingerprint=new_fp)
            new_plan, pinfo = refresh_plan(
                plan,
                A_new,
                new_key,
                dirty,
                split_nnz=self.split_nnz,
                max_split=self.max_split,
                autotune_dim=self.autotune_dim,
                carry_factor=factor,
                carry_cache=carry_cache,
            )
            self._cache.put(new_key, new_plan)
            info["plans_refreshed"] += 1
            info["panels_rebuilt"] += pinfo["panels_rebuilt"]
            info["panels_reused"] += pinfo["panels_reused"]
            if pinfo["reorder"] != "none":
                if pinfo["carried"]:
                    info["reorders_carried"] += 1
                    derived = pinfo.get("derived")
                    if derived is not None and derived["strategy"] not in seen_strategies:
                        seen_strategies.add(derived["strategy"])
                        info["derived"].append(derived)
                else:
                    info["reorders_rebuilt"] += 1
        self._cache.evict_fingerprint(old_fingerprint)
        return info

    def attach_stats_section(self, name: str, provider) -> None:
        """Merge ``provider()`` into :meth:`stats` under ``name``.

        Attached providers are called on every :meth:`stats` read, so
        layers built on the runtime (the serving coalescer, future queue
        tiers) surface their health through the same observability
        surfaces the runtime already has.  Re-attaching a name replaces
        the previous provider; attach ``None`` to detach.
        """
        with self._stats_lock:
            if provider is None:
                self._stats_sections.pop(name, None)
            else:
                self._stats_sections[name] = provider

    def stats(self) -> Dict[str, object]:
        """Runtime-wide counters + plan-cache stats (for logs/monitoring)."""
        with self._stats_lock:
            counters = dict(self._counters)
            sections = dict(self._stats_sections)
        with self._workers_lock:
            workers = self._workers
        with self._controller_lock:
            controller = self._controller
        extra = {name: provider() for name, provider in sections.items()}
        return {
            "plan_cache": self.cache_stats().as_dict(),
            "num_threads": self.num_threads,
            "pool_active": self._pool is not None,
            "processes": self.processes,
            "shards": self.shards,
            "reorder": self.reorder,
            "workers": None if workers is None else workers.stats(),
            "remote": None if controller is None else controller.stats(),
            **counters,
            **extra,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.cache_stats()
        return (
            f"KernelRuntime(num_threads={self.num_threads}, "
            f"plans={s.size}/{s.capacity}, hits={s.hits}, misses={s.misses})"
        )
