"""Graph container tying together adjacency structure, features and labels.

A :class:`Graph` is a thin, immutable-by-convention wrapper around a CSR
adjacency matrix plus optional node features and labels.  It is the object
the applications (:mod:`repro.apps`) and the experiments consume; the
kernels themselves only see the CSR matrix and dense feature arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..errors import ShapeError
from ..sparse import CSRMatrix, as_csr

__all__ = ["Graph", "GraphStats"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph, matching the columns of Table V."""

    name: str
    num_vertices: int
    num_edges: int
    avg_degree: float
    max_degree: int

    def as_row(self) -> Dict[str, object]:
        """Dictionary usable as a row of the regenerated Table V."""
        return {
            "graph": self.name,
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "avg_degree": round(self.avg_degree, 2),
            "max_degree": self.max_degree,
        }


@dataclass
class Graph:
    """A graph with adjacency, optional features and optional labels.

    Parameters
    ----------
    adjacency:
        CSR adjacency matrix (square for whole graphs; rectangular slices
        are produced by :meth:`subgraph`).
    features:
        Optional dense node-feature matrix with one row per vertex.
    labels:
        Optional integer class labels, one per vertex (used by the node
        classification evaluation of Section V.D).
    name:
        Human-readable name used in reports.
    """

    adjacency: CSRMatrix
    features: Optional[np.ndarray] = None
    labels: Optional[np.ndarray] = None
    name: str = "graph"
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.adjacency = as_csr(self.adjacency)
        if self.features is not None:
            self.features = np.ascontiguousarray(self.features, dtype=np.float32)
            if self.features.shape[0] != self.adjacency.nrows:
                raise ShapeError(
                    "features must have one row per vertex: "
                    f"{self.features.shape[0]} != {self.adjacency.nrows}"
                )
        if self.labels is not None:
            self.labels = np.ascontiguousarray(self.labels, dtype=np.int64)
            if self.labels.shape[0] != self.adjacency.nrows:
                raise ShapeError(
                    "labels must have one entry per vertex: "
                    f"{self.labels.shape[0]} != {self.adjacency.nrows}"
                )

    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices (rows of the adjacency matrix)."""
        return self.adjacency.nrows

    @property
    def num_edges(self) -> int:
        """Number of stored directed edges (nnz of the adjacency matrix)."""
        return self.adjacency.nnz

    @property
    def num_classes(self) -> int:
        """Number of distinct labels (0 when the graph is unlabeled)."""
        if self.labels is None or self.labels.size == 0:
            return 0
        return int(self.labels.max()) + 1

    def stats(self) -> GraphStats:
        """Summary statistics in the shape of a Table V row."""
        return GraphStats(
            name=self.name,
            num_vertices=self.num_vertices,
            num_edges=self.num_edges,
            avg_degree=self.adjacency.avg_degree(),
            max_degree=self.adjacency.max_degree(),
        )

    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return self.adjacency.row_degrees()

    def subgraph(self, rows: np.ndarray) -> "Graph":
        """Return the induced *row* slice used for minibatching: the
        adjacency rows of the requested vertices (columns untouched, so the
        result is rectangular, exactly the ``m × n`` slice of Fig. 2)."""
        rows = np.asarray(rows, dtype=np.int64)
        adj = self.adjacency.select_rows(rows)
        feats = None if self.features is None else self.features[rows]
        labels = None if self.labels is None else self.labels[rows]
        return Graph(adj, feats, labels, name=f"{self.name}[batch]", meta=dict(self.meta))

    def with_features(self, features: np.ndarray) -> "Graph":
        """Return a copy of the graph carrying the given features."""
        return Graph(self.adjacency, features, self.labels, self.name, dict(self.meta))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges}, features="
            f"{None if self.features is None else self.features.shape})"
        )
