"""Synthetic graph generators.

The paper's sensitivity study (Fig. 11a) uses RMAT graphs produced by PaRMAT
with 100K vertices and average degrees swept from 10 to 140.  PaRMAT is a
C++/GPU tool we do not have, so this module provides a self-contained RMAT
generator with the standard recursive quadrant-sampling procedure, plus the
other generators used by the dataset registry and the tests:

* :func:`rmat` — Recursive MATrix power-law generator (PaRMAT substitute).
* :func:`erdos_renyi` — uniform random graphs.
* :func:`barabasi_albert` — preferential-attachment power-law graphs (used
  to mimic the heavy-tailed degree distributions of the social-network
  datasets in Table V).
* :func:`regular_grid` — 2-D grid graphs with predictable degrees.
* :func:`star` and :func:`clique_chain` — degenerate shapes for stress
  tests of partitioning and load balancing.

Every generator takes an explicit ``seed`` and returns a symmetric,
self-loop-free :class:`~repro.sparse.csr.CSRMatrix` unless noted.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..sparse import COOMatrix, CSRMatrix

__all__ = [
    "rmat",
    "erdos_renyi",
    "barabasi_albert",
    "regular_grid",
    "star",
    "clique_chain",
    "power_law_configuration",
    "stochastic_block_model",
]


def _finalize(
    rows: np.ndarray,
    cols: np.ndarray,
    n: int,
    *,
    symmetrize: bool,
    drop_self_loops: bool = True,
    weights: np.ndarray | None = None,
) -> CSRMatrix:
    coo = COOMatrix(n, n, rows, cols, weights)
    if drop_self_loops:
        coo = coo.drop_self_loops()
    if symmetrize:
        coo = coo.symmetrize()
    else:
        coo = coo.deduplicate(op="max")
    return CSRMatrix.from_coo(coo)


def rmat(
    n: int,
    num_edges: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | None = None,
    symmetrize: bool = True,
    weighted: bool = False,
) -> CSRMatrix:
    """Generate an RMAT graph (PaRMAT substitute).

    Each edge is drawn by recursively choosing one of the four quadrants of
    the adjacency matrix with probabilities ``(a, b, c, d=1-a-b-c)`` until a
    single cell remains.  The defaults are the Graph500/PaRMAT parameters
    which yield a skewed, power-law-like degree distribution.

    Parameters
    ----------
    n:
        Number of vertices; rounded conceptually to the enclosing power of
        two for quadrant selection, out-of-range endpoints are redrawn by
        taking the modulo, which preserves the skew.
    num_edges:
        Number of edge samples drawn (the realised edge count is slightly
        lower after removing duplicates and self loops, and roughly doubles
        when ``symmetrize=True``).
    """
    if n <= 0:
        raise ShapeError("n must be positive")
    if num_edges < 0:
        raise ShapeError("num_edges must be non-negative")
    d = 1.0 - a - b - c
    if d < -1e-9 or min(a, b, c) < 0:
        raise ValueError("RMAT probabilities must be non-negative and sum to <= 1")
    rng = np.random.default_rng(seed)
    levels = max(1, int(np.ceil(np.log2(max(n, 2)))))

    rows = np.zeros(num_edges, dtype=np.int64)
    cols = np.zeros(num_edges, dtype=np.int64)
    # Vectorized recursive descent: at each level every edge picks a quadrant.
    p_right = b + d  # probability the column bit is 1
    for level in range(levels):
        bit = np.int64(1) << (levels - level - 1)
        u = rng.random(num_edges)
        # P(row bit = 1) = c + d; P(col bit = 1 | row bit) follows the
        # conditional quadrant probabilities.
        row_bit = u >= (a + b)
        v = rng.random(num_edges)
        col_prob = np.where(row_bit, d / max(c + d, 1e-12), b / max(a + b, 1e-12))
        col_bit = v < col_prob
        rows += row_bit.astype(np.int64) * bit
        cols += col_bit.astype(np.int64) * bit
    rows %= n
    cols %= n
    weights = rng.uniform(0.1, 1.0, size=num_edges).astype(np.float32) if weighted else None
    _ = p_right  # documented for clarity; per-level conditional used instead
    return _finalize(rows, cols, n, symmetrize=symmetrize, weights=weights)


def erdos_renyi(
    n: int,
    avg_degree: float,
    *,
    seed: int | None = None,
    symmetrize: bool = True,
) -> CSRMatrix:
    """Erdős–Rényi G(n, m) graph with ``m ≈ n * avg_degree / 2`` undirected
    edges (so the realised average degree matches ``avg_degree``)."""
    if n <= 0:
        raise ShapeError("n must be positive")
    rng = np.random.default_rng(seed)
    m = int(round(n * avg_degree / (2.0 if symmetrize else 1.0)))
    rows = rng.integers(0, n, size=m, dtype=np.int64)
    cols = rng.integers(0, n, size=m, dtype=np.int64)
    return _finalize(rows, cols, n, symmetrize=symmetrize)


def barabasi_albert(
    n: int,
    attach: int,
    *,
    seed: int | None = None,
) -> CSRMatrix:
    """Barabási–Albert preferential attachment graph.

    Every new vertex attaches to ``attach`` existing vertices chosen with
    probability proportional to their current degree, producing the
    heavy-tailed degree distributions typical of the social graphs in
    Table V (Youtube, Flickr, Orkut).
    """
    if n <= 0:
        raise ShapeError("n must be positive")
    attach = max(1, min(attach, n - 1)) if n > 1 else 0
    rng = np.random.default_rng(seed)
    if attach == 0:
        return CSRMatrix.empty(n, n)
    src: list[int] = []
    dst: list[int] = []
    # Repeated-nodes list implements preferential attachment in O(E).
    repeated: list[int] = list(range(attach))
    for v in range(attach, n):
        if repeated:
            targets = rng.choice(len(repeated), size=attach, replace=True)
            chosen = {repeated[int(t)] for t in targets}
        else:  # pragma: no cover - only for degenerate attach==0
            chosen = set()
        for u in chosen:
            src.append(v)
            dst.append(u)
            repeated.append(u)
            repeated.append(v)
    rows = np.asarray(src, dtype=np.int64)
    cols = np.asarray(dst, dtype=np.int64)
    return _finalize(rows, cols, n, symmetrize=True)


def power_law_configuration(
    n: int,
    avg_degree: float,
    exponent: float = 2.2,
    *,
    max_degree: int | None = None,
    seed: int | None = None,
) -> CSRMatrix:
    """Configuration-model graph with a truncated power-law degree sequence.

    Used by the dataset registry to hit a target (average degree, maximum
    degree) pair, which is what Table V reports for each graph.
    """
    if n <= 0:
        raise ShapeError("n must be positive")
    rng = np.random.default_rng(seed)
    max_degree = max_degree or max(int(avg_degree * 10), 2)
    # Sample from a Zipf-like distribution then rescale to the target mean.
    raw = rng.zipf(exponent, size=n).astype(np.float64)
    raw = np.minimum(raw, max_degree)
    raw *= avg_degree / max(raw.mean(), 1e-9)
    degrees = np.maximum(1, np.round(raw)).astype(np.int64)
    degrees = np.minimum(degrees, max(1, n - 1))
    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    if stubs.shape[0] % 2 == 1:
        stubs = stubs[:-1]
    half = stubs.shape[0] // 2
    rows, cols = stubs[:half], stubs[half:]
    return _finalize(rows, cols, n, symmetrize=True)


def stochastic_block_model(
    n: int,
    num_blocks: int,
    avg_degree: float,
    *,
    intra_fraction: float = 0.9,
    seed: int | None = None,
) -> tuple[CSRMatrix, np.ndarray]:
    """Planted-partition (stochastic block model) graph with community labels.

    Vertices are split into ``num_blocks`` equal communities; a fraction
    ``intra_fraction`` of the edges connect vertices of the same community
    and the rest connect random pairs.  Used for the labelled datasets
    (Cora/Pubmed stand-ins) so that embedding-based node classification is
    actually learnable, mirroring the strong homophily of the original
    citation graphs.

    Returns
    -------
    (adjacency, labels)
        The symmetric CSR adjacency and the integer community label of each
        vertex.
    """
    if n <= 0 or num_blocks <= 0:
        raise ShapeError("n and num_blocks must be positive")
    if not 0.0 <= intra_fraction <= 1.0:
        raise ValueError("intra_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_blocks, size=n).astype(np.int64)
    m = int(round(n * avg_degree / 2.0))
    num_intra = int(round(m * intra_fraction))
    num_inter = m - num_intra

    # Intra-community edges: pick a community per edge weighted by its size,
    # then two random members of that community.
    members = [np.flatnonzero(labels == b) for b in range(num_blocks)]
    sizes = np.array([max(len(mb), 1) for mb in members], dtype=np.float64)
    probs = sizes / sizes.sum()
    blocks = rng.choice(num_blocks, size=num_intra, p=probs)
    rows_i = np.empty(num_intra, dtype=np.int64)
    cols_i = np.empty(num_intra, dtype=np.int64)
    for b in range(num_blocks):
        sel = blocks == b
        count = int(sel.sum())
        if count == 0 or len(members[b]) == 0:
            rows_i[sel] = rng.integers(0, n, size=count)
            cols_i[sel] = rng.integers(0, n, size=count)
            continue
        rows_i[sel] = rng.choice(members[b], size=count)
        cols_i[sel] = rng.choice(members[b], size=count)

    rows_x = rng.integers(0, n, size=num_inter, dtype=np.int64)
    cols_x = rng.integers(0, n, size=num_inter, dtype=np.int64)
    rows = np.concatenate([rows_i, rows_x])
    cols = np.concatenate([cols_i, cols_x])
    adjacency = _finalize(rows, cols, n, symmetrize=True)
    return adjacency, labels


def regular_grid(side: int) -> CSRMatrix:
    """A ``side × side`` 2-D grid graph (4-neighbour stencil).  Every
    interior vertex has degree 4, making analytical checks easy."""
    if side <= 0:
        raise ShapeError("side must be positive")
    n = side * side
    rows, cols = [], []
    idx = np.arange(n, dtype=np.int64).reshape(side, side)
    right_src, right_dst = idx[:, :-1].ravel(), idx[:, 1:].ravel()
    down_src, down_dst = idx[:-1, :].ravel(), idx[1:, :].ravel()
    rows = np.concatenate([right_src, down_src])
    cols = np.concatenate([right_dst, down_dst])
    return _finalize(rows, cols, n, symmetrize=True)


def star(n: int) -> CSRMatrix:
    """A star graph: vertex 0 connected to every other vertex.  The single
    hub row stresses the nnz-balanced partitioner."""
    if n <= 1:
        return CSRMatrix.empty(max(n, 0), max(n, 0))
    rows = np.zeros(n - 1, dtype=np.int64)
    cols = np.arange(1, n, dtype=np.int64)
    return _finalize(rows, cols, n, symmetrize=True)


def clique_chain(num_cliques: int, clique_size: int) -> CSRMatrix:
    """A chain of dense cliques joined by single bridge edges; produces a
    bimodal degree distribution useful for partitioning tests."""
    if num_cliques <= 0 or clique_size <= 0:
        raise ShapeError("num_cliques and clique_size must be positive")
    n = num_cliques * clique_size
    rows, cols = [], []
    for k in range(num_cliques):
        base = k * clique_size
        local = np.arange(base, base + clique_size, dtype=np.int64)
        rr, cc = np.meshgrid(local, local, indexing="ij")
        mask = rr.ravel() != cc.ravel()
        rows.append(rr.ravel()[mask])
        cols.append(cc.ravel()[mask])
        if k + 1 < num_cliques:
            rows.append(np.asarray([base + clique_size - 1], dtype=np.int64))
            cols.append(np.asarray([base + clique_size], dtype=np.int64))
    rows_arr = np.concatenate(rows)
    cols_arr = np.concatenate(cols)
    return _finalize(rows_arr, cols_arr, n, symmetrize=True)
