"""Synthetic stand-ins for the paper's benchmark graphs (Table V).

The paper evaluates on eight graphs from networkrepository.com and the
SuiteSparse collection (Cora, Harvard, Pubmed, Flickr, Ogbprot., Amazon,
Youtube, Orkut).  Those files are not available offline, so this module
provides a dataset *registry* of synthetic graphs generated to match each
graph's published shape statistics: vertex count (scaled down for the
largest graphs so experiments run on a laptop), average degree, and a
heavy-tailed degree distribution with a large maximum degree.

Each entry records both the **paper's** statistics (for EXPERIMENTS.md
comparisons and the regenerated Table V) and the **scale factor** applied.
The small citation graphs (Cora, Pubmed) are generated at full size and
also receive class labels so the end-to-end accuracy experiment
(Section V.D) can run.

The substitution is documented in DESIGN.md: what matters for every
experiment downstream is the sparsity *shape* (average degree, skew,
dimension sweep behaviour), which the synthetic graphs preserve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import DatasetError
from ..sparse import CSRMatrix
from .features import one_hot_labels, random_features
from .generators import power_law_configuration, rmat, stochastic_block_model
from .graph import Graph

__all__ = [
    "DatasetSpec",
    "PAPER_DATASETS",
    "list_datasets",
    "dataset_spec",
    "load_dataset",
    "paper_table5",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry describing one paper dataset and its synthetic twin."""

    name: str
    #: Statistics reported in Table V of the paper.
    paper_vertices: int
    paper_edges: int
    paper_avg_degree: float
    paper_max_degree: int
    #: Size at which the synthetic twin is generated (scaled for big graphs).
    synth_vertices: int
    #: Number of label classes for labelled graphs (0 = unlabeled).
    num_classes: int = 0
    #: Generator family: "powerlaw" (configuration model), "rmat", or "sbm"
    #: (planted partition — used for the labelled citation graphs so that
    #: node classification on the embeddings is learnable).
    family: str = "powerlaw"
    #: Power-law exponent controlling degree skew.
    exponent: float = 2.3
    seed: int = 0

    @property
    def scale_factor(self) -> float:
        """Ratio between the paper's vertex count and the synthetic size."""
        return self.paper_vertices / self.synth_vertices


# ---------------------------------------------------------------------- #
# Table V of the paper, with the synthetic sizes chosen so the largest
# graph stays around a few hundred thousand edges (laptop scale).
# ---------------------------------------------------------------------- #
PAPER_DATASETS: Dict[str, DatasetSpec] = {
    "cora": DatasetSpec(
        name="cora",
        paper_vertices=2708,
        paper_edges=5278,
        paper_avg_degree=3.90,
        paper_max_degree=168,
        synth_vertices=2708,
        num_classes=7,
        family="sbm",
        exponent=2.6,
        seed=11,
    ),
    "harvard": DatasetSpec(
        name="harvard",
        paper_vertices=15126,
        paper_edges=824617,
        paper_avg_degree=109.03,
        paper_max_degree=1183,
        synth_vertices=6000,
        exponent=1.9,
        seed=12,
    ),
    "pubmed": DatasetSpec(
        name="pubmed",
        paper_vertices=19717,
        paper_edges=44324,
        paper_avg_degree=4.49,
        paper_max_degree=171,
        synth_vertices=19717,
        num_classes=3,
        family="sbm",
        exponent=2.6,
        seed=13,
    ),
    "flickr": DatasetSpec(
        name="flickr",
        paper_vertices=89250,
        paper_edges=449878,
        paper_avg_degree=10.08,
        paper_max_degree=5425,
        synth_vertices=20000,
        exponent=2.1,
        seed=14,
    ),
    "ogbprot": DatasetSpec(
        name="ogbprot",
        paper_vertices=132534,
        paper_edges=39561252,
        paper_avg_degree=597.0,
        paper_max_degree=7750,
        synth_vertices=4000,
        exponent=1.7,
        seed=15,
    ),
    "amazon": DatasetSpec(
        name="amazon",
        paper_vertices=334863,
        paper_edges=925872,
        paper_avg_degree=5.59,
        paper_max_degree=549,
        synth_vertices=30000,
        exponent=2.4,
        seed=16,
    ),
    "youtube": DatasetSpec(
        name="youtube",
        paper_vertices=1138499,
        paper_edges=2990443,
        paper_avg_degree=5.25,
        paper_max_degree=28754,
        synth_vertices=40000,
        exponent=2.1,
        seed=17,
    ),
    "orkut": DatasetSpec(
        name="orkut",
        paper_vertices=3072441,
        paper_edges=117185083,
        paper_avg_degree=76.28,
        paper_max_degree=33313,
        synth_vertices=12000,
        exponent=1.9,
        seed=18,
    ),
}


def list_datasets() -> List[str]:
    """Names of all registered paper datasets."""
    return sorted(PAPER_DATASETS)


def dataset_spec(name: str) -> DatasetSpec:
    """Look up the registry entry for ``name`` (case-insensitive)."""
    key = name.lower().rstrip(".")
    if key not in PAPER_DATASETS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(list_datasets())}"
        )
    return PAPER_DATASETS[key]


def _generate_adjacency(
    spec: DatasetSpec, scale: float
) -> tuple[CSRMatrix, Optional[np.ndarray]]:
    """Generate the synthetic adjacency (and, for SBM graphs, the planted
    community labels)."""
    n = max(16, int(round(spec.synth_vertices * scale)))
    target_avg_degree = spec.paper_avg_degree
    # Cap the max degree at the (scaled) paper max degree so the degree
    # distribution's tail matches the original shape.
    max_degree = max(4, min(spec.paper_max_degree, n - 1))
    if spec.family == "rmat":
        num_edges = int(n * target_avg_degree / 2)
        return rmat(n, num_edges, seed=spec.seed), None
    if spec.family == "sbm":
        adjacency, labels = stochastic_block_model(
            n,
            num_blocks=max(spec.num_classes, 2),
            avg_degree=target_avg_degree,
            intra_fraction=0.92,
            seed=spec.seed,
        )
        return adjacency, labels
    adjacency = power_law_configuration(
        n,
        avg_degree=target_avg_degree,
        exponent=spec.exponent,
        max_degree=max_degree,
        seed=spec.seed,
    )
    return adjacency, None


def _generate_labels(
    adjacency: CSRMatrix, num_classes: int, seed: int
) -> Optional[np.ndarray]:
    """Labels with community structure: propagate a random seed labelling
    along edges a few rounds so that neighbouring vertices tend to share a
    class (this is what makes embedding-based classification meaningful)."""
    if num_classes <= 0:
        return None
    rng = np.random.default_rng(seed + 1000)
    n = adjacency.nrows
    labels = rng.integers(0, num_classes, size=n).astype(np.int64)
    onehot = one_hot_labels(labels, num_classes).astype(np.float64)
    for _ in range(3):
        agg = adjacency.spmm(onehot) + 0.5 * onehot
        labels = np.argmax(agg, axis=1).astype(np.int64)
        onehot = one_hot_labels(labels, num_classes).astype(np.float64)
    # Guarantee every class is present.
    for c in range(num_classes):
        if not np.any(labels == c):
            labels[rng.integers(0, n)] = c
    return labels


def load_dataset(
    name: str,
    *,
    scale: float = 1.0,
    feature_dim: int | None = None,
    seed: int | None = None,
) -> Graph:
    """Load the synthetic twin of a paper dataset.

    Parameters
    ----------
    name:
        One of :func:`list_datasets` (case-insensitive; "Ogbprot." accepted).
    scale:
        Extra multiplier on the registry's synthetic vertex count; use
        ``scale<1`` for quick tests.
    feature_dim:
        When given, random node features of this dimension are attached.
    seed:
        Overrides the registry seed (for generating independent replicas).
    """
    spec = dataset_spec(name)
    if seed is not None:
        spec = DatasetSpec(**{**spec.__dict__, "seed": seed})
    adjacency, labels = _generate_adjacency(spec, scale)
    if labels is None:
        labels = _generate_labels(adjacency, spec.num_classes, spec.seed)
    features = None
    if feature_dim is not None:
        features = random_features(adjacency.nrows, feature_dim, seed=spec.seed)
    return Graph(
        adjacency,
        features,
        labels,
        name=spec.name,
        meta={
            "paper_vertices": spec.paper_vertices,
            "paper_edges": spec.paper_edges,
            "paper_avg_degree": spec.paper_avg_degree,
            "paper_max_degree": spec.paper_max_degree,
            "scale_factor": spec.scale_factor / max(scale, 1e-12),
            "synthetic": True,
        },
    )


def paper_table5() -> List[Dict[str, object]]:
    """The paper's Table V as a list of rows (for side-by-side reports)."""
    rows = []
    for spec in PAPER_DATASETS.values():
        rows.append(
            {
                "graph": spec.name,
                "vertices": spec.paper_vertices,
                "edges": spec.paper_edges,
                "avg_degree": spec.paper_avg_degree,
                "max_degree": spec.paper_max_degree,
            }
        )
    return rows
