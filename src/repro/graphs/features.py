"""Node feature initialisation.

Graph embedding algorithms (Force2Vec, VERSE) start from random embeddings;
GNN benchmarks use either random dense features or one-hot/spectral-style
features.  All initialisers are deterministic given a seed and return
``float32`` arrays, matching the paper's single-precision evaluation.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

__all__ = [
    "random_features",
    "uniform_features",
    "one_hot_labels",
    "degree_features",
    "xavier_init",
]


def random_features(
    num_vertices: int, dim: int, *, seed: int | None = None, scale: float | None = None
) -> np.ndarray:
    """Gaussian random features / initial embeddings of shape ``(n, d)``.

    ``scale`` defaults to ``1/sqrt(d)`` so dot products between rows stay
    O(1) regardless of dimension — the regime in which the sigmoid used by
    the embedding pattern is numerically well behaved.
    """
    if num_vertices < 0 or dim < 0:
        raise ShapeError("num_vertices and dim must be non-negative")
    rng = np.random.default_rng(seed)
    scale = (1.0 / np.sqrt(max(dim, 1))) if scale is None else scale
    return (rng.standard_normal((num_vertices, dim)) * scale).astype(np.float32)


def uniform_features(
    num_vertices: int, dim: int, *, low: float = -0.5, high: float = 0.5, seed: int | None = None
) -> np.ndarray:
    """Uniform random features in ``[low, high)`` (used for FR layout
    initial positions)."""
    if num_vertices < 0 or dim < 0:
        raise ShapeError("num_vertices and dim must be non-negative")
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=(num_vertices, dim)).astype(np.float32)


def one_hot_labels(labels: np.ndarray, num_classes: int | None = None) -> np.ndarray:
    """One-hot encode integer labels into a ``(n, num_classes)`` matrix."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ShapeError("labels must be 1-D")
    if num_classes is None:
        num_classes = int(labels.max()) + 1 if labels.size else 0
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    if labels.size:
        out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def degree_features(adjacency, dim: int = 8) -> np.ndarray:
    """Simple structural features: log-degree repeated/binned across ``dim``
    columns with sinusoidal position encodings.  A lightweight stand-in for
    datasets whose original features are unavailable."""
    degrees = adjacency.row_degrees().astype(np.float64)
    logdeg = np.log1p(degrees)
    cols = np.arange(dim, dtype=np.float64)
    feats = np.sin(logdeg[:, None] / (1.0 + cols[None, :])) + 0.1 * logdeg[:, None]
    return feats.astype(np.float32)


def xavier_init(fan_in: int, fan_out: int, *, seed: int | None = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for dense weight matrices (used
    by the GCN and MLP-GNN applications)."""
    if fan_in < 0 or fan_out < 0:
        raise ShapeError("fan_in and fan_out must be non-negative")
    rng = np.random.default_rng(seed)
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out)).astype(np.float32)
