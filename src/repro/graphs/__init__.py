"""Graph substrate: containers, generators, datasets and feature init."""

from .datasets import (
    PAPER_DATASETS,
    DatasetSpec,
    dataset_spec,
    list_datasets,
    load_dataset,
    paper_table5,
)
from .features import (
    degree_features,
    one_hot_labels,
    random_features,
    uniform_features,
    xavier_init,
)
from .generators import (
    barabasi_albert,
    clique_chain,
    erdos_renyi,
    power_law_configuration,
    regular_grid,
    rmat,
    star,
)
from .graph import Graph, GraphStats

__all__ = [
    "Graph",
    "GraphStats",
    "DatasetSpec",
    "PAPER_DATASETS",
    "dataset_spec",
    "list_datasets",
    "load_dataset",
    "paper_table5",
    "random_features",
    "uniform_features",
    "one_hot_labels",
    "degree_features",
    "xavier_init",
    "rmat",
    "erdos_renyi",
    "barabasi_albert",
    "power_law_configuration",
    "regular_grid",
    "star",
    "clique_chain",
]
