"""FusedMM reproduction — a unified SDDMM–SpMM kernel for graph embedding
and graph neural networks.

This package reproduces *FusedMM: A Unified SDDMM-SpMM Kernel for Graph
Embedding and Graph Neural Networks* (Rahman, Sujon, Azad — IPDPS 2021) as a
pure-Python/NumPy library:

* :mod:`repro.core` — the FusedMM kernel: five-step operator abstraction,
  reference / vectorized / specialized / generated backends, 1-D
  partitioning and thread parallelism, autotuning.
* :mod:`repro.sparse` — CSR/COO sparse-matrix substrate.
* :mod:`repro.graphs` — graph generators, the Table V dataset registry,
  feature initialisers.
* :mod:`repro.baselines` — the unfused (DGL-style), dense (PyTorch-style)
  and vendor-SpMM (MKL-style) comparators.
* :mod:`repro.apps` — Force2Vec/VERSE embedding, FR layout, GCN, MLP-GNN,
  node-classification evaluation.
* :mod:`repro.perf` — roofline/arithmetic-intensity model, memory model,
  machine profiles, scaling harness.
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart
----------
>>> import numpy as np
>>> from repro import fusedmm
>>> from repro.graphs import load_dataset, random_features
>>> g = load_dataset("cora")
>>> X = random_features(g.num_vertices, 64, seed=0)
>>> Z = fusedmm(g.adjacency, X, pattern="sigmoid_embedding")
>>> Z.shape
(2708, 64)
"""

from .core import (
    BACKENDS,
    FusedMM,
    OpPattern,
    Operator,
    fusedmm,
    fusedmm_generic,
    fusedmm_optimized,
    get_op,
    get_pattern,
    list_ops,
    list_patterns,
    register_op,
    register_pattern,
)
from .resilience import (
    Fault,
    FaultInjector,
    FaultPlan,
    HealthTracker,
    RetryPolicy,
    retry_call,
)
from .runtime import EpochStream, KernelRequest, KernelRuntime
from .sparse import COOMatrix, CSRMatrix, as_csr
from .version import __version__

__all__ = [
    "__version__",
    "fusedmm",
    "FusedMM",
    "BACKENDS",
    "fusedmm_generic",
    "fusedmm_optimized",
    "OpPattern",
    "Operator",
    "get_op",
    "list_ops",
    "register_op",
    "get_pattern",
    "list_patterns",
    "register_pattern",
    "CSRMatrix",
    "COOMatrix",
    "as_csr",
    "KernelRuntime",
    "KernelRequest",
    "EpochStream",
    "RetryPolicy",
    "retry_call",
    "HealthTracker",
    "FaultPlan",
    "Fault",
    "FaultInjector",
]
