"""Crash-safe checkpoint persistence for training jobs.

The durability contract of :class:`CheckpointStore`:

* **Atomic**: a checkpoint is written to a temporary file, flushed and
  ``fsync``-ed, then ``os.replace``-d into place.  A ``kill -9`` at any
  byte boundary leaves either the previous checkpoint set or the new one
  — never a torn file that loads as garbage.
* **Self-validating**: every checkpoint file carries a magic, a CRC32 of
  its payload and the payload length.  A file that fails any of the
  three (truncated temp leftovers, a partial rename target on a
  non-atomic filesystem, bit rot) is *skipped*, not raised on.
* **Manifest as a hint, never a single point of failure**: a small
  ``MANIFEST.json`` names the latest checkpoint, but recovery leads with
  a newest-first scan of ``ckpt-*.ckpt`` files (a crash can leave the
  manifest one epoch stale) and only falls back to the hint — a corrupt,
  stale or missing manifest costs nothing, never the job.
* **Bitwise-faithful**: arrays ride the same npy payload container the
  wire protocols use (:func:`repro.framing.encode_payload`), so dtypes
  and bit patterns round-trip exactly — the checkpoint/resume
  determinism guarantee rides on this.

The ``crash_hook`` attribute is the torn-write test surface: the store
calls it (when set) at each named point of the write sequence so tests
can simulate a crash *between* the fsync and the rename, after the
rename but before the manifest update, and so on.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from ..errors import CheckpointError
from ..framing import ProtocolError, decode_payload, encode_payload

__all__ = ["Checkpoint", "CheckpointStore", "CHECKPOINT_MAGIC"]

#: File magic of one checkpoint: magic | crc32(payload) | payload length.
CHECKPOINT_MAGIC = b"RCK1"
_HEADER = struct.Struct("!4sIQ")

_MANIFEST = "MANIFEST.json"
_SUFFIX = ".ckpt"

#: Named points of the write sequence where ``crash_hook`` fires.
CRASH_POINTS = (
    "temp-written",      # temp file flushed + fsynced, not yet renamed
    "renamed",           # checkpoint in place, manifest still stale
    "manifest-written",  # manifest updated, pruning not yet done
)


@dataclass
class Checkpoint:
    """One loaded checkpoint: the merged state dict + bookkeeping."""

    epoch: int
    state: Dict[str, object]
    meta: Dict[str, object] = field(default_factory=dict)
    path: Optional[Path] = None


class CheckpointStore:
    """Atomically persisted, self-validating per-epoch training state.

    Parameters
    ----------
    directory:
        Where checkpoints live; created on first save.
    keep_last:
        Checkpoints retained after each save (older ones are pruned).
        The latest valid checkpoint is never pruned.
    """

    def __init__(self, directory, *, keep_last: int = 2) -> None:
        if keep_last < 1:
            raise CheckpointError(f"keep_last must be >= 1, got {keep_last}")
        self.directory = Path(directory)
        self.keep_last = int(keep_last)
        self.checkpoints_written = 0
        self.invalid_skipped = 0
        #: test hook: called with a :data:`CRASH_POINTS` name at each
        #: stage of the write sequence (raise to simulate a crash there)
        self.crash_hook: Optional[Callable[[str], None]] = None

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def _hook(self, point: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(point)

    @staticmethod
    def _split_state(state: Dict[str, object]):
        arrays: Dict[str, np.ndarray] = {}
        scalars: Dict[str, object] = {}
        for key, value in state.items():
            if isinstance(value, np.ndarray):
                arrays[key] = value
            elif isinstance(value, np.generic):
                scalars[key] = value.item()
            else:
                scalars[key] = value
        return arrays, scalars

    def _fsync_dir(self) -> None:
        # Persist the rename itself, not just the file contents; best
        # effort — not every platform lets you open a directory.
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform dependent
            pass
        finally:
            os.close(fd)

    def _write_atomic(self, name: str, blob: bytes) -> Path:
        """temp → flush → fsync → rename; returns the final path."""
        final = self.directory / name
        temp = self.directory / f".{name}.tmp"
        with open(temp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        return final, temp

    def save(
        self,
        epoch: int,
        state: Dict[str, object],
        *,
        meta: Optional[Dict[str, object]] = None,
    ) -> Path:
        """Persist ``state`` as the checkpoint of (completed) ``epoch``.

        ``state`` may mix ndarrays (persisted bitwise as npy blobs) and
        JSON-able values; :meth:`latest` returns the same merged dict.
        ``meta`` carries job-level identity (graph fingerprint, config)
        verified on resume.
        """
        if epoch < 0:
            raise CheckpointError(f"epoch must be >= 0, got {epoch}")
        self.directory.mkdir(parents=True, exist_ok=True)
        arrays, scalars = self._split_state(state)
        doc = {
            "format": 1,
            "epoch": int(epoch),
            "state": scalars,
            "meta": dict(meta or {}),
        }
        try:
            payload = encode_payload(doc, arrays)
        except (TypeError, ValueError) as exc:
            raise CheckpointError(f"state is not serialisable: {exc}") from exc
        header = _HEADER.pack(
            CHECKPOINT_MAGIC, zlib.crc32(payload), len(payload)
        )
        blob = header + payload

        name = f"ckpt-{epoch:08d}{_SUFFIX}"
        final, temp = self._write_atomic(name, blob)
        self._hook("temp-written")
        os.replace(temp, final)
        self._fsync_dir()
        self._hook("renamed")

        manifest = json.dumps(
            {"version": 1, "latest": name, "epoch": int(epoch)}
        ).encode("utf-8")
        # Atomic rename but deliberately *no* fsync: the manifest is a
        # recovery hint with a scan fallback, so losing it in a crash
        # costs a directory listing — not worth doubling the per-save
        # fsync count.
        m_temp = self.directory / f".{_MANIFEST}.tmp"
        m_temp.write_bytes(manifest)
        os.replace(m_temp, self.directory / _MANIFEST)
        self._hook("manifest-written")

        self.checkpoints_written += 1
        self._prune(keep=final.name)
        return final

    def _prune(self, *, keep: str) -> None:
        """Drop all but the newest ``keep_last`` checkpoints (and any
        stale temp files); ``keep`` (the just-written file) survives
        regardless."""
        files = sorted(self.directory.glob(f"ckpt-*{_SUFFIX}"), reverse=True)
        for stale in files[self.keep_last :]:
            if stale.name != keep:
                stale.unlink(missing_ok=True)
        for temp in self.directory.glob(f".ckpt-*{_SUFFIX}.tmp"):
            temp.unlink(missing_ok=True)
        (self.directory / f".{_MANIFEST}.tmp").unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def _load_file(self, path: Path) -> Optional[Checkpoint]:
        """Parse + validate one checkpoint file; ``None`` when invalid."""
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        if len(blob) < _HEADER.size:
            return None
        magic, crc, length = _HEADER.unpack_from(blob)
        payload = blob[_HEADER.size :]
        if (
            magic != CHECKPOINT_MAGIC
            or len(payload) != length
            or zlib.crc32(payload) != crc
        ):
            return None
        try:
            doc, arrays = decode_payload(payload)
        except ProtocolError:
            return None
        if not isinstance(doc.get("epoch"), int):
            return None
        state: Dict[str, object] = dict(doc.get("state") or {})
        state.update(arrays)
        return Checkpoint(
            epoch=doc["epoch"],
            state=state,
            meta=dict(doc.get("meta") or {}),
            path=path,
        )

    def _candidates(self) -> List[Path]:
        """Paths to try, best first: every checkpoint file newest-first
        (zero-padded names sort by epoch), the manifest's hint appended
        as a fallback for the pathological case where the listing missed
        it.  The scan leads — a crash between the checkpoint rename and
        the manifest update leaves the manifest one epoch stale, and the
        stale hint must not shadow the newer file.  Never raises — a
        corrupt manifest is just a useless hint."""
        try:
            files = sorted(self.directory.glob(f"ckpt-*{_SUFFIX}"), reverse=True)
        except OSError:  # pragma: no cover - directory vanished
            files = []
        ordered: List[Path] = list(files)
        manifest = self.directory / _MANIFEST
        try:
            doc = json.loads(manifest.read_text())
            hint = self.directory / str(doc["latest"])
            if (
                hint.suffix == _SUFFIX
                and hint.parent == self.directory
                and hint not in ordered
            ):
                ordered.append(hint)
        except (OSError, ValueError, KeyError, TypeError):
            pass
        return ordered

    def latest(self) -> Optional[Checkpoint]:
        """The newest *valid* checkpoint, or ``None`` for a fresh start.

        Startup-safe by contract: torn files, stale temp leftovers and a
        corrupt manifest are all silently skipped (counted in
        :attr:`invalid_skipped`), never raised.
        """
        for path in self._candidates():
            checkpoint = self._load_file(path)
            if checkpoint is not None:
                return checkpoint
            self.invalid_skipped += 1
        return None

    def epochs_available(self) -> List[int]:
        """Epochs of every *valid* checkpoint on disk, ascending."""
        epochs = []
        for path in sorted(self.directory.glob(f"ckpt-*{_SUFFIX}")):
            checkpoint = self._load_file(path)
            if checkpoint is not None:
                epochs.append(checkpoint.epoch)
        return epochs

    def stats(self) -> Dict[str, int]:
        return {
            "checkpoints_written": self.checkpoints_written,
            "invalid_skipped": self.invalid_skipped,
        }
