"""Supervised training jobs: specs, the epoch driver and the manager.

Three layers, smallest first:

* :class:`JobSpec` — the JSON-able description of one training run
  (which app, which dataset, how many epochs, checkpoint cadence).
* :func:`run_training` — the uniform epoch loop.  Every application
  exposes ``train_epoch`` / ``export_state`` / ``load_state`` /
  ``epochs_completed``, so one driver serves all four; it resumes from
  the newest valid checkpoint, checkpoints on the configured cadence and
  stops cooperatively at epoch boundaries (cancel / drain).
* :class:`JobManager` — bounded concurrent execution of specs:
  admission control (429 past the queue bound, 503 while draining),
  crash requeue under a :class:`~repro.resilience.RetryPolicy`, graceful
  drain that checkpoints in-flight jobs, and :meth:`JobManager.recover`
  which requeues unfinished jobs found on disk after a restart.

The determinism contract: with ``reorder="none"`` a run resumed from any
checkpoint finishes bitwise identical to the uninterrupted seeded run —
minibatch order is a pure function of ``seed + epoch`` and each app's
stateful randomness (negative/noise samplers, the FR cooling
temperature) is part of its exported state.
"""

from __future__ import annotations

import io
import json
import os
import shutil
import tempfile
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import (
    CheckpointError,
    DrainingError,
    JobError,
    JobNotFoundError,
    QueueFullError,
)
from ..resilience import FaultInjector, FaultPlan, RetryPolicy
from ..runtime import matrix_fingerprint
from .checkpoint import CheckpointStore

__all__ = [
    "JOB_APPS",
    "JOB_STATES",
    "JobSpec",
    "Job",
    "JobManager",
    "TrainingResult",
    "build_app",
    "run_training",
]

#: The app kinds a job can train — one per application class.  Defined
#: here (not imported from :mod:`repro.serve`) so the dependency points
#: serve → jobs, never back.
JOB_APPS = ("force2vec", "verse", "gcn", "fr_layout")

JOB_STATES = ("pending", "running", "completed", "failed", "cancelled")
TERMINAL_STATES = frozenset({"completed", "failed", "cancelled"})


# ---------------------------------------------------------------------- #
# Spec
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class JobSpec:
    """One training run, fully described by JSON-able values.

    ``checkpoint_every`` is the cadence in epochs (``0`` disables
    periodic checkpoints; a final one is still written so a completed
    job's state survives).  ``extra`` is forwarded verbatim to the app's
    config dataclass for knobs this spec doesn't name (learning rate,
    batch size, ...).
    """

    app: str = "force2vec"
    dataset: str = "cora"
    scale: float = 0.25
    dim: int = 32
    epochs: int = 4
    seed: int = 0
    checkpoint_every: int = 1
    kernel_backend: str = "auto"
    num_threads: int = 1
    extra: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.app not in JOB_APPS:
            raise JobError(
                f"unknown app kind {self.app!r}; expected one of {JOB_APPS}"
            )
        if self.epochs < 1:
            raise JobError(f"epochs must be >= 1, got {self.epochs}")
        if self.dim <= 0 or self.scale <= 0:
            raise JobError("dim and scale must be positive")
        if self.checkpoint_every < 0:
            raise JobError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.num_threads < 1:
            raise JobError(f"num_threads must be >= 1, got {self.num_threads}")
        if not isinstance(self.extra, dict):
            raise JobError(f"extra must be a dict, got {type(self.extra).__name__}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "app": self.app,
            "dataset": self.dataset,
            "scale": self.scale,
            "dim": self.dim,
            "epochs": self.epochs,
            "seed": self.seed,
            "checkpoint_every": self.checkpoint_every,
            "kernel_backend": self.kernel_backend,
            "num_threads": self.num_threads,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "JobSpec":
        """Build a spec from a client payload; unknown keys are a 400, not
        a silent drop — a typoed knob should fail the submission."""
        if not isinstance(doc, dict):
            raise JobError(f"job spec must be an object, got {type(doc).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise JobError(f"unknown job spec fields: {unknown}")
        try:
            return cls(**doc)
        except TypeError as exc:
            raise JobError(f"invalid job spec: {exc}") from exc


def build_app(spec: JobSpec):
    """Instantiate the (untrained) application behind ``spec``.

    Returns ``(graph, app)``; mirrors the construction in
    :meth:`repro.serve.config.ModelSpec.build` but leaves training to the
    job driver, which owns the epoch loop.
    """
    from ..graphs.datasets import load_dataset

    load_kwargs: Dict[str, object] = {"scale": spec.scale}
    if spec.app == "gcn":
        # GCN needs node features; give the synthetic twin random ones.
        load_kwargs["feature_dim"] = max(spec.dim, 8)
    graph = load_dataset(spec.dataset, **load_kwargs)
    common = dict(
        dim=spec.dim,
        seed=spec.seed,
        num_threads=spec.num_threads,
        kernel_backend=spec.kernel_backend,
        **spec.extra,
    )
    try:
        if spec.app == "force2vec":
            from ..apps import Force2Vec, Force2VecConfig

            app = Force2Vec(graph, Force2VecConfig(epochs=spec.epochs, **common))
        elif spec.app == "verse":
            from ..apps import Verse, VerseConfig

            app = Verse(graph, VerseConfig(epochs=spec.epochs, **common))
        elif spec.app == "gcn":
            from ..apps import GCN, GCNConfig

            common.pop("dim")
            app = GCN(
                graph,
                config=GCNConfig(
                    hidden_dim=spec.dim, epochs=spec.epochs, **common
                ),
            )
        else:  # fr_layout
            from ..apps import FRLayout, FRLayoutConfig

            app = FRLayout(
                graph, FRLayoutConfig(iterations=spec.epochs, **common)
            )
    except TypeError as exc:
        raise JobError(f"invalid extra config for app {spec.app!r}: {exc}") from exc
    return graph, app


def _train_one(app, kind: str, epoch: int) -> Dict[str, object]:
    """One epoch through the app's uniform surface, normalised to a
    JSON-able progress entry."""
    result = app.train_epoch(epoch)
    entry: Dict[str, object] = {"epoch": epoch}
    if kind in ("force2vec", "verse"):
        entry["seconds"] = float(result.seconds)
        if result.loss is not None:
            entry["loss"] = float(result.loss)
    elif kind == "gcn":
        entry["seconds"] = float(result["seconds"])
        entry["loss"] = float(result["loss"])
    elif kind == "fr_layout":
        entry["displacement"] = float(result)
    return entry


# ---------------------------------------------------------------------- #
# The epoch driver
# ---------------------------------------------------------------------- #
@dataclass
class TrainingResult:
    """What one :func:`run_training` call produced."""

    output: np.ndarray
    epochs_done: int
    resumed_from: Optional[int]
    progress: List[Dict[str, object]]
    #: ``True`` when the loop stopped at an epoch boundary (cancel/drain)
    #: before reaching ``spec.epochs`` — the checkpoint holds the state.
    stopped: bool = False


def _validate_resume(
    saved: Dict[str, object], current: Optional[Dict[str, object]]
) -> None:
    """A checkpoint may only resume the job that wrote it: same graph
    fingerprint, same spec (``epochs`` excepted — extending a finished
    schedule is legitimate)."""
    if not current:
        return
    saved_fp = saved.get("fingerprint")
    if saved_fp is not None and current.get("fingerprint") is not None:
        if saved_fp != current["fingerprint"]:
            raise CheckpointError(
                f"checkpoint belongs to a different graph: fingerprint "
                f"{saved_fp} != {current['fingerprint']}"
            )
    saved_spec = dict(saved.get("spec") or {})
    current_spec = dict(current.get("spec") or {})
    for doc in (saved_spec, current_spec):
        doc.pop("epochs", None)
        doc.pop("checkpoint_every", None)
    if saved_spec and current_spec and saved_spec != current_spec:
        diff = sorted(
            k
            for k in set(saved_spec) | set(current_spec)
            if saved_spec.get(k) != current_spec.get(k)
        )
        raise CheckpointError(
            f"checkpoint spec does not match the submitted job (differs in "
            f"{diff}); delete the checkpoint directory to start fresh"
        )


def run_training(
    spec: JobSpec,
    *,
    store: Optional[CheckpointStore] = None,
    app_factory: Optional[Callable[[JobSpec], Tuple[object, object]]] = None,
    on_progress: Optional[Callable[[Dict[str, object]], None]] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    fault: Optional[FaultInjector] = None,
) -> TrainingResult:
    """Drive ``spec`` to completion (or a cooperative stop).

    With a ``store``, training resumes from the newest valid checkpoint
    and writes one every ``spec.checkpoint_every`` epochs plus a final
    one.  ``should_stop`` is polled at every epoch boundary; a stop
    checkpoints and returns ``stopped=True`` with the partial state.
    ``fault`` (when set) is stepped once per epoch — ``crash`` raises
    :class:`~repro.errors.JobError`, ``delay`` sleeps briefly, the
    transport-only kinds just count as fired.
    """
    graph, app = (app_factory or build_app)(spec)
    meta: Optional[Dict[str, object]] = None
    if store is not None:
        meta = {"spec": spec.to_dict()}
        if graph is not None:
            meta["fingerprint"] = matrix_fingerprint(graph.adjacency)

    resumed_from: Optional[int] = None
    if store is not None:
        checkpoint = store.latest()
        if checkpoint is not None:
            _validate_resume(checkpoint.meta, meta)
            app.load_state(checkpoint.state)
            resumed_from = checkpoint.epoch

    progress: List[Dict[str, object]] = []
    every = spec.checkpoint_every
    last_saved = resumed_from if resumed_from is not None else -1

    def _checkpoint(epoch: int) -> None:
        nonlocal last_saved
        if store is not None and epoch > last_saved:
            store.save(epoch, app.export_state(), meta=meta)
            last_saved = epoch

    for epoch in range(app.epochs_completed, spec.epochs):
        if should_stop is not None and should_stop():
            _checkpoint(app.epochs_completed)
            return TrainingResult(
                output=app.serve_output(),
                epochs_done=app.epochs_completed,
                resumed_from=resumed_from,
                progress=progress,
                stopped=True,
            )
        if fault is not None:
            fired = fault.step()
            if fired is not None:
                if fired.kind == "crash":
                    raise JobError(f"injected fault: {fired.to_spec()}")
                if fired.kind == "delay":
                    time.sleep(min(float(fired.arg or 0.01), 0.25))
        entry = _train_one(app, spec.app, epoch)
        progress.append(entry)
        if on_progress is not None:
            on_progress(entry)
        if every > 0 and (epoch + 1) % every == 0:
            _checkpoint(epoch + 1)

    _checkpoint(app.epochs_completed)
    return TrainingResult(
        output=app.serve_output(),
        epochs_done=app.epochs_completed,
        resumed_from=resumed_from,
        progress=progress,
    )


# ---------------------------------------------------------------------- #
# Jobs + manager
# ---------------------------------------------------------------------- #
_PROGRESS_KEPT = 200  # progress entries persisted/reported per job


class Job:
    """One submitted training run and its live supervision state."""

    def __init__(self, job_id: str, spec: JobSpec) -> None:
        self.id = job_id
        self.spec = spec
        self.state = "pending"
        self.attempts = 0
        self.epochs_done = 0
        self.progress: List[Dict[str, object]] = []
        self.error: Optional[str] = None
        self.resumed_from: Optional[int] = None
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.output: Optional[np.ndarray] = None
        self.cancel_event = threading.Event()
        self.store: Optional[CheckpointStore] = None

    def describe(self, *, with_progress: bool = True) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "id": self.id,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "attempts": self.attempts,
            "epochs_done": self.epochs_done,
            "epochs_total": self.spec.epochs,
            "error": self.error,
            "resumed_from": self.resumed_from,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
        }
        if with_progress:
            doc["progress"] = list(self.progress[-_PROGRESS_KEPT:])
        return doc


class JobManager:
    """Bounded, crash-tolerant execution of training jobs.

    Parameters
    ----------
    job_dir:
        Durable root; each job gets ``<job_dir>/<job_id>/`` with its
        ``job.json``, checkpoints and (on completion) ``result.npy``.
        ``None`` uses a temporary directory — jobs then survive faults
        within this process but not a restart.
    max_active / max_queue:
        Concurrency bound and admission bound.  More than
        ``max_active + max_queue`` non-terminal jobs → 429.
    retry:
        Requeue budget for crashed/faulted attempts; exhausting it marks
        the job ``failed``.
    keep_last:
        Checkpoints retained per job.
    fault_spec:
        :meth:`~repro.resilience.FaultPlan.from_spec` schedule stepped
        once per trained epoch across all jobs — the chaos hook.
    app_factory:
        Test hook replacing :func:`build_app` (``spec -> (graph, app)``).
    """

    def __init__(
        self,
        job_dir: Optional[os.PathLike] = None,
        *,
        max_active: int = 2,
        max_queue: int = 8,
        retry: Optional[RetryPolicy] = None,
        keep_last: int = 2,
        fault_spec: Optional[str] = None,
        app_factory: Optional[Callable[[JobSpec], Tuple[object, object]]] = None,
    ) -> None:
        if max_active < 1 or max_queue < 0:
            raise JobError(
                f"max_active must be >= 1 and max_queue >= 0, got "
                f"{max_active}/{max_queue}"
            )
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if job_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-jobs-")
            job_dir = self._tmp.name
        self.job_dir = Path(job_dir)
        self.job_dir.mkdir(parents=True, exist_ok=True)
        self.max_active = int(max_active)
        self.max_queue = int(max_queue)
        self.keep_last = int(keep_last)
        self.retry = retry or RetryPolicy(
            base_delay=0.05, max_delay=0.5, multiplier=2.0, jitter=0.0,
            max_attempts=3, seed=0,
        )
        self._fault = (
            FaultInjector(FaultPlan.from_spec(fault_spec)) if fault_spec else None
        )
        self.app_factory = app_factory
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_active, thread_name_prefix="repro-job"
        )
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._draining = False
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.requeued = 0

    # ------------------------------------------------------------------ #
    # Paths + persistence
    # ------------------------------------------------------------------ #
    def _job_path(self, job_id: str) -> Path:
        return self.job_dir / job_id

    def _persist(self, job: Job) -> None:
        """Atomically rewrite the job's supervision record."""
        path = self._job_path(job.id)
        path.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(job.describe(), indent=2).encode("utf-8")
        temp = path / ".job.json.tmp"
        temp.write_bytes(blob)
        os.replace(temp, path / "job.json")

    def _persist_result(self, job: Job) -> None:
        if job.output is None:
            return
        path = self._job_path(job.id)
        buffer = io.BytesIO()
        np.save(buffer, job.output)
        temp = path / ".result.npy.tmp"
        temp.write_bytes(buffer.getvalue())
        os.replace(temp, path / "result.npy")

    # ------------------------------------------------------------------ #
    # Submission + admission
    # ------------------------------------------------------------------ #
    def submit(self, spec: JobSpec, *, job_id: Optional[str] = None) -> str:
        """Admit ``spec``; returns the job id.

        Raises :class:`~repro.errors.DrainingError` while shutting down
        and :class:`~repro.errors.QueueFullError` past the admission
        bound — the same typed 503/429 outcomes the request path uses.
        """
        with self._lock:
            if self._draining:
                raise DrainingError("job manager is draining; not accepting jobs")
            live = sum(
                1 for j in self._jobs.values() if j.state not in TERMINAL_STATES
            )
            if live >= self.max_active + self.max_queue:
                raise QueueFullError(
                    f"job queue full ({live} live jobs >= "
                    f"{self.max_active + self.max_queue})"
                )
            jid = job_id or f"job-{uuid.uuid4().hex[:12]}"
            existing = self._jobs.get(jid)
            if existing is not None and existing.state not in TERMINAL_STATES:
                raise JobError(f"job id {jid!r} is already live")
            job = Job(jid, spec)
            self._jobs[jid] = job
            self.submitted += 1
        self._persist(job)
        self._executor.submit(self._execute, job)
        return jid

    def recover(self) -> List[str]:
        """Requeue unfinished jobs found on disk (after a restart).

        Terminal jobs are loaded read-only so ``status``/``result`` keep
        answering for them; non-terminal ones are resubmitted under their
        original id and resume from their newest checkpoint.  Returns the
        requeued ids.
        """
        requeued: List[str] = []
        for record in sorted(self.job_dir.glob("*/job.json")):
            try:
                doc = json.loads(record.read_text())
                spec = JobSpec.from_dict(doc["spec"])
                jid = str(doc["id"])
                state = str(doc.get("state", "pending"))
            except (OSError, ValueError, KeyError, JobError):
                continue  # unreadable record: skip, never block startup
            with self._lock:
                if jid in self._jobs:
                    continue
            if state in TERMINAL_STATES:
                job = Job(jid, spec)
                job.state = state
                job.attempts = int(doc.get("attempts", 0))
                job.epochs_done = int(doc.get("epochs_done", 0))
                job.error = doc.get("error")
                job.progress = list(doc.get("progress") or [])
                with self._lock:
                    self._jobs[jid] = job
            else:
                self.submit(spec, job_id=jid)
                requeued.append(jid)
        return requeued

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _execute(self, job: Job) -> None:
        with self._lock:
            if job.state in TERMINAL_STATES:  # cancelled while queued
                return
            if self._draining:
                return  # stays pending; recover() picks it up next start
            job.state = "running"
            job.started = time.time()
        self._persist(job)
        job.store = CheckpointStore(
            self._job_path(job.id) / "checkpoints", keep_last=self.keep_last
        )

        def _on_progress(entry: Dict[str, object]) -> None:
            with self._lock:
                job.epochs_done = int(entry["epoch"]) + 1
                job.progress.append(entry)
                del job.progress[:-_PROGRESS_KEPT]
            self._persist(job)

        def _should_stop() -> bool:
            return job.cancel_event.is_set() or self._draining

        retry = self.retry.start(salt=job.id)
        result: Optional[TrainingResult] = None
        while True:
            with self._lock:
                job.attempts += 1
            try:
                result = run_training(
                    job.spec,
                    store=job.store,
                    app_factory=self.app_factory,
                    on_progress=_on_progress,
                    should_stop=_should_stop,
                    fault=self._fault,
                )
                break
            except Exception as exc:  # noqa: BLE001 - any attempt failure requeues
                job.error = f"{type(exc).__name__}: {exc}"
                if _should_stop():
                    break  # don't burn the retry budget on a stop request
                delay = retry.next_delay()
                if delay is None:
                    with self._lock:
                        job.state = "failed"
                        job.finished = time.time()
                        self.failed += 1
                    self._persist(job)
                    return
                with self._lock:
                    self.requeued += 1
                time.sleep(min(delay, 0.5))

        with self._lock:
            if job.cancel_event.is_set():
                job.state = "cancelled"
                job.finished = time.time()
                self.cancelled += 1
            elif result is None or result.stopped:
                # drain: back to pending with the checkpoint on disk
                job.state = "pending"
            else:
                job.output = result.output
                job.resumed_from = result.resumed_from
                job.epochs_done = result.epochs_done
                job.error = None
                job.state = "completed"
                job.finished = time.time()
                self.completed += 1
        if job.state == "completed":
            self._persist_result(job)
        self._persist(job)

    # ------------------------------------------------------------------ #
    # Queries + control
    # ------------------------------------------------------------------ #
    def _get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"unknown job id {job_id!r}")
        return job

    def status(self, job_id: str) -> Dict[str, object]:
        job = self._get(job_id)
        with self._lock:
            return job.describe()

    def list_jobs(self) -> List[Dict[str, object]]:
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda j: j.created)
            return [j.describe(with_progress=False) for j in jobs]

    def cancel(self, job_id: str) -> Dict[str, object]:
        """Request cancellation; running jobs stop (and checkpoint) at the
        next epoch boundary.  Idempotent on terminal jobs."""
        job = self._get(job_id)
        with self._lock:
            if job.state not in TERMINAL_STATES:
                job.cancel_event.set()
                if job.state == "pending":
                    job.state = "cancelled"
                    job.finished = time.time()
                    self.cancelled += 1
            doc = job.describe()
        self._persist(job)
        return doc

    def result(self, job_id: str) -> np.ndarray:
        """The completed job's output matrix (from memory or disk)."""
        job = self._get(job_id)
        with self._lock:
            state = job.state
            output = job.output
        if state != "completed":
            raise JobError(f"job {job_id!r} is {state}, not completed")
        if output is not None:
            return output
        path = self._job_path(job_id) / "result.npy"
        try:
            return np.load(path)
        except OSError as exc:
            raise JobError(f"result of job {job_id!r} is unavailable: {exc}") from exc

    def wait(self, job_id: str, *, timeout: float = 60.0) -> Dict[str, object]:
        """Block until the job reaches a terminal state (testing aid)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            doc = self.status(job_id)
            if doc["state"] in TERMINAL_STATES:
                return doc
            time.sleep(0.02)
        raise JobError(f"job {job_id!r} did not finish within {timeout}s")

    def stats(self) -> Dict[str, object]:
        """Counters + gauges; the ``jobs`` block of ``runtime.stats()``
        and ``/statz``.  Invariant: every in-process submission ends in
        exactly one of completed/failed/cancelled."""
        with self._lock:
            active = sum(1 for j in self._jobs.values() if j.state == "running")
            queued = sum(1 for j in self._jobs.values() if j.state == "pending")
            checkpoints = sum(
                j.store.checkpoints_written
                for j in self._jobs.values()
                if j.store is not None
            )
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "requeued": self.requeued,
                "checkpoints_written": checkpoints,
                "active": active,
                "queued": queued,
                "draining": self._draining,
            }

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def drain(self, *, timeout: float = 30.0) -> None:
        """Stop accepting jobs, checkpoint in-flight ones at their next
        epoch boundary and leave everything non-terminal resumable on
        disk (``recover()`` requeues it next start)."""
        with self._lock:
            self._draining = True
        self._executor.shutdown(wait=True, cancel_futures=True)
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            self._persist(job)
        del timeout  # cooperative stops are epoch-bounded; no hard kill

    def close(self) -> None:
        self.drain()
        if self._tmp is not None:
            try:
                self._tmp.cleanup()
            except OSError:  # pragma: no cover - best effort
                shutil.rmtree(self._tmp.name, ignore_errors=True)
            self._tmp = None
