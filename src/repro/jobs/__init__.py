"""Durable training jobs: crash-safe checkpoints + a supervised job tier.

:class:`CheckpointStore` persists per-epoch training state atomically
(write-temp → fsync → rename, CRC-validated, manifest + scan recovery);
:class:`JobManager` runs :class:`JobSpec` training jobs with bounded
admission, retry-requeue on faults, cooperative cancel/drain and
restart recovery.  :func:`run_training` is the uniform epoch driver all
four applications share.  See the "Training jobs" section of the README
for the lifecycle and durability contract.
"""

from .checkpoint import CHECKPOINT_MAGIC, Checkpoint, CheckpointStore
from .manager import (
    JOB_APPS,
    JOB_STATES,
    Job,
    JobManager,
    JobSpec,
    TrainingResult,
    build_app,
    run_training,
)

__all__ = [
    "CHECKPOINT_MAGIC",
    "Checkpoint",
    "CheckpointStore",
    "JOB_APPS",
    "JOB_STATES",
    "Job",
    "JobManager",
    "JobSpec",
    "TrainingResult",
    "build_app",
    "run_training",
]
