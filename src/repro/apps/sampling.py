"""Minibatching and negative sampling utilities for embedding training.

FusedMM itself "does not perform minibatching, which is done at the
application layer" (Section III.C).  The application layer lives here:

* :func:`minibatch_indices` — deterministic shuffled minibatches of vertex
  ids, the unit of work of one Force2Vec/VERSE training step (the paper
  uses batch size 256).
* :class:`NegativeSampler` — uniform or degree-biased (unigram^0.75)
  negative vertex sampling, the standard choice of word2vec-style
  embedding objectives.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..errors import ShapeError

__all__ = ["minibatch_indices", "NegativeSampler"]


def minibatch_indices(
    num_vertices: int,
    batch_size: int,
    *,
    shuffle: bool = True,
    seed: Optional[int] = None,
    drop_last: bool = False,
) -> Iterator[np.ndarray]:
    """Yield minibatches of vertex indices covering ``[0, num_vertices)``.

    Parameters
    ----------
    batch_size:
        Vertices per batch (the paper's end-to-end runs use 256).
    shuffle:
        Shuffle the vertex order each call (deterministic given ``seed``).
    drop_last:
        Drop the final short batch instead of yielding it.
    """
    if num_vertices < 0:
        raise ShapeError("num_vertices must be non-negative")
    if batch_size <= 0:
        raise ShapeError("batch_size must be positive")
    order = np.arange(num_vertices, dtype=np.int64)
    if shuffle:
        np.random.default_rng(seed).shuffle(order)
    for start in range(0, num_vertices, batch_size):
        batch = order[start : start + batch_size]
        if drop_last and batch.shape[0] < batch_size:
            return
        yield batch


class NegativeSampler:
    """Sample negative (non-neighbour, in expectation) vertices.

    Parameters
    ----------
    num_vertices:
        Size of the vertex universe to sample from.
    degrees:
        Optional per-vertex degrees.  When given, vertices are sampled with
        probability proportional to ``degree^power`` (the unigram^0.75
        heuristic); otherwise sampling is uniform.
    power:
        Exponent applied to the degree distribution.
    seed:
        Seed of the internal generator; the sampler is deterministic and
        stateful (successive calls advance the stream).
    """

    def __init__(
        self,
        num_vertices: int,
        degrees: Optional[np.ndarray] = None,
        *,
        power: float = 0.75,
        seed: Optional[int] = None,
    ) -> None:
        if num_vertices <= 0:
            raise ShapeError("num_vertices must be positive")
        self.num_vertices = int(num_vertices)
        self._rng = np.random.default_rng(seed)
        if degrees is None:
            self._probs = None
        else:
            degrees = np.asarray(degrees, dtype=np.float64)
            if degrees.shape != (num_vertices,):
                raise ShapeError(
                    f"degrees must have shape ({num_vertices},), got {degrees.shape}"
                )
            weights = np.power(np.maximum(degrees, 1e-12), power)
            self._probs = weights / weights.sum()

    def get_state(self) -> dict:
        """The internal generator's state — JSON-able, so checkpointing a
        trainer can persist the exact position of the negative stream."""
        return self._rng.bit_generator.state

    def set_state(self, state: dict) -> None:
        """Restore a state captured by :meth:`get_state`; the next
        :meth:`sample` continues the stream bitwise-identically."""
        self._rng.bit_generator.state = state

    def sample(self, shape) -> np.ndarray:
        """Draw negative vertex ids with the configured distribution.

        ``shape`` may be an int or a tuple, e.g. ``(batch, k)`` for ``k``
        negatives per batch vertex.
        """
        if self._probs is None:
            return self._rng.integers(0, self.num_vertices, size=shape, dtype=np.int64)
        flat = self._rng.choice(self.num_vertices, size=int(np.prod(shape)), p=self._probs)
        return flat.reshape(shape).astype(np.int64)
