"""VERSE-style graph embedding (the second embedding model of Fig. 1(b)).

VERSE [Tsitsulin et al., WWW 2018] learns embeddings so that the sigmoid of
the embedding dot product matches a vertex-similarity distribution (in its
simplest instantiation: adjacency similarity), trained with noise-
contrastive estimation.  The per-step update for a sampled vertex ``u``
uses the same message-passing shape as Force2Vec — σ(x_uᵀ y_v) multiplied
with the neighbour vector and summed — which is exactly the FusedMM
``sigmoid_embedding`` pattern.  The trainer below differs from
:class:`~repro.apps.force2vec.Force2Vec` only in its objective bookkeeping
(positive targets are 1 for neighbours, 0 for noise samples) and in
sampling one positive *distribution row* per vertex rather than a fixed
minibatch of edges, matching the original algorithm's stochastic scheme.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ShapeError
from ..graphs.features import random_features
from ..graphs.graph import Graph
from ..runtime import KernelRuntime, RuntimeOptions
from ..sparse import CSRMatrix
from .force2vec import EpochStats
from .sampling import NegativeSampler, minibatch_indices

__all__ = ["VerseConfig", "Verse"]


@dataclass
class VerseConfig(RuntimeOptions):
    """Hyper-parameters of VERSE training (adjacency-similarity variant).

    Kernel-execution knobs are inherited from
    :class:`~repro.runtime.RuntimeOptions`.  VERSE trains through minibatch
    row slices (``run_on``), which always execute in natural order — the
    ``reorder`` tier only accelerates full-matrix ``step`` calls, so
    non-"none" values mostly add plan-build cost here.
    """

    dim: int = 128
    batch_size: int = 256
    epochs: int = 5
    learning_rate: float = 0.025
    noise_samples: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.dim <= 0 or self.batch_size <= 0:
            raise ShapeError("dim and batch_size must be positive")
        if self.noise_samples < 0:
            raise ShapeError("noise_samples must be non-negative")


class Verse:
    """VERSE trainer built on the FusedMM sigmoid-embedding kernel."""

    def __init__(self, graph: Graph, config: VerseConfig | None = None) -> None:
        self.graph = graph
        self.config = config or VerseConfig()
        self.adjacency: CSRMatrix = graph.adjacency
        if self.adjacency.nrows != self.adjacency.ncols:
            raise ShapeError("VERSE expects a square adjacency matrix")
        # Row-normalised adjacency is the similarity distribution Q of the
        # adjacency-similarity VERSE variant.
        degrees = np.maximum(self.adjacency.row_degrees().astype(np.float32), 1.0)
        self.similarity = self.adjacency.scale_rows(1.0 / degrees)
        self.embeddings = random_features(
            graph.num_vertices, self.config.dim, seed=self.config.seed
        ).astype(np.float64)
        self._sampler = NegativeSampler(graph.num_vertices, seed=self.config.seed + 13)
        # Plans for the similarity distribution are resolved once and
        # streamed: minibatch row slices and sampled noise matrices run
        # through the cached plans via ``run_on`` (and through the sharded
        # worker tier when ``processes`` is set).
        self._runtime = KernelRuntime(
            cache_size=4,
            # Panel geometry / reorder sweeps size against the real
            # embedding dimension, not the 128 default.
            autotune_dim=self.config.dim,
            **self.config.runtime_kwargs(),
        )
        self._sig_stream = self._runtime.epochs(
            self.similarity,
            pattern="sigmoid_embedding",
            backend=self.config.kernel_backend,
            reorder=self.config.reorder,
        )
        self._agg_stream = self._runtime.epochs(
            self.similarity,
            pattern="gcn",
            backend=self.config.kernel_backend,
            reorder=self.config.reorder,
        )
        self.history: List[EpochStats] = []

    def _batch_gradient(self, batch: np.ndarray) -> np.ndarray:
        cfg = self.config
        X = self.embeddings
        Xb = X[batch].astype(np.float32)
        Y = X.astype(np.float32)

        # Positive part: pull towards similarity-weighted neighbours.
        S_batch = self.similarity.select_rows(batch)
        sig_pos = self._sig_stream.run_on(S_batch, Xb, Y)
        target_pos = self._agg_stream.run_on(S_batch, None, Y)
        grad = sig_pos.astype(np.float64) - target_pos.astype(np.float64)

        # Noise part: push away from sampled noise vertices.
        if cfg.noise_samples > 0:
            negs = self._sampler.sample((batch.shape[0], cfg.noise_samples))
            indptr = np.arange(
                0,
                (batch.shape[0] + 1) * cfg.noise_samples,
                cfg.noise_samples,
                dtype=np.int64,
            )
            A_neg = CSRMatrix(
                batch.shape[0],
                self.adjacency.ncols,
                indptr,
                negs.reshape(-1),
                np.ones(negs.size, dtype=np.float32),
                check=False,
            )
            grad += self._sig_stream.run_on(A_neg, Xb, Y).astype(np.float64)
        return grad

    def train_epoch(self, epoch: int = 0) -> EpochStats:
        """One pass over all vertices in shuffled minibatches."""
        cfg = self.config
        t0 = time.perf_counter()
        kernel_time = 0.0
        num_batches = 0
        for batch in minibatch_indices(
            self.graph.num_vertices, cfg.batch_size, seed=cfg.seed + epoch
        ):
            t_k = time.perf_counter()
            grad = self._batch_gradient(batch)
            kernel_time += time.perf_counter() - t_k
            self.embeddings[batch] -= cfg.learning_rate * grad
            num_batches += 1
        stats = EpochStats(
            epoch=epoch,
            seconds=time.perf_counter() - t0,
            kernel_seconds=kernel_time,
            num_batches=num_batches,
        )
        self.history.append(stats)
        return stats

    # ------------------------------------------------------------------ #
    # Checkpointable state
    # ------------------------------------------------------------------ #
    def export_state(self) -> dict:
        """Embeddings + epoch count + noise-sampler stream position + the
        epoch history — the full bitwise-resume state (the minibatch order
        is a pure function of ``seed + epoch``)."""
        from dataclasses import asdict

        return {
            "embeddings": self.embeddings.copy(),
            "epochs_completed": len(self.history),
            "sampler_state": self._sampler.get_state(),
            "history": [asdict(s) for s in self.history],
        }

    def load_state(self, state: dict) -> None:
        """Restore an :meth:`export_state` snapshot bitwise."""
        embeddings = np.asarray(state["embeddings"])
        if embeddings.shape != self.embeddings.shape:
            raise ShapeError(
                f"state embeddings shape {embeddings.shape} does not match "
                f"model shape {self.embeddings.shape}"
            )
        self.embeddings = embeddings.copy()
        self._sampler.set_state(state["sampler_state"])
        self.history = [EpochStats(**s) for s in state.get("history", [])]

    @property
    def epochs_completed(self) -> int:
        """Epochs trained so far (the resume point of a checkpoint)."""
        return len(self.history)

    # ------------------------------------------------------------------ #
    def runtime_stats(self) -> dict:
        """The trainer's :meth:`KernelRuntime.stats` snapshot."""
        return self._runtime.stats()

    def serve_output(self) -> np.ndarray:
        """The servable per-vertex matrix (the learned embeddings) — the
        uniform lookup surface :mod:`repro.serve`'s model registry reads
        behind ``/v1/embed/<model>``."""
        return self.embeddings.astype(np.float32)

    def train(self, epochs: Optional[int] = None) -> np.ndarray:
        """Train and return the learned embeddings."""
        epochs = self.config.epochs if epochs is None else epochs
        for epoch in range(epochs):
            self.train_epoch(epoch)
        return self.embeddings.astype(np.float32)
