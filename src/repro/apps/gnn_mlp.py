"""GNN layer with MLP edge messages and max pooling (Fig. 1(d) /
Table III row 4).

This is the paper's example of a pattern that *requires* a user-defined
operator: the message on edge ``(u, v)`` is ``MLP([x_u ; x_v])`` and the
aggregation is an element-wise max over the neighbourhood,

``z_u = max_{v ∈ N(u)} σ(MLP([x_u ; x_v]))``.

The layer builds the MLP VOP operator with
:func:`repro.core.operators.make_mlp_vop`, plugs it into the ``gnn_mlp``
pattern, and lets the FusedMM dispatcher execute it (the optimized backend
handles user operators; the code generator correctly refuses and the
dispatcher falls through).  A small multi-layer wrapper with a readout is
included so the example application can do something end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.fused import fusedmm
from ..core.operators import make_mlp_vop
from ..core.patterns import get_pattern
from ..errors import ShapeError
from ..graphs.features import xavier_init
from ..graphs.graph import Graph

__all__ = ["MLPGNNLayer", "MLPGNN"]


@dataclass
class MLPGNNLayer:
    """One max-pooling GNN layer with an MLP message function.

    Parameters
    ----------
    in_dim:
        Dimension of the node features entering the layer (the MLP consumes
        the concatenation ``[x_u ; x_v]`` of size ``2 * in_dim``).
    hidden_dim:
        Hidden width of the MLP.
    out_dim:
        Output dimension of the message (and of the layer).
    seed:
        Initialisation seed.
    """

    in_dim: int
    hidden_dim: int
    out_dim: int
    seed: int = 0

    def __post_init__(self) -> None:
        if min(self.in_dim, self.hidden_dim, self.out_dim) <= 0:
            raise ShapeError("layer dimensions must be positive")
        # The MLP message keeps the node-feature dimension (as in the paper,
        # where every message is d-dimensional); the dimension change of the
        # layer happens in the post-aggregation projection below.
        self.W1 = xavier_init(2 * self.in_dim, self.hidden_dim, seed=self.seed)
        self.W2 = xavier_init(self.hidden_dim, self.in_dim, seed=self.seed + 1)
        self.W_out = xavier_init(self.in_dim, self.out_dim, seed=self.seed + 2)
        self._vop = make_mlp_vop(self.W1, self.W2, name=f"MLP[{self.seed}]")
        self._pattern = get_pattern("gnn_mlp", vop=self._vop)

    def forward(self, A, X: np.ndarray, Y: Optional[np.ndarray] = None, *, backend: str = "optimized") -> np.ndarray:
        """Apply the layer: MLP messages on edges, sigmoid scaling, max
        pooling over the neighbourhood, then a linear projection to the
        layer's output width followed by ReLU."""
        X = np.asarray(X, dtype=np.float32)
        pooled = fusedmm(A, X, Y, pattern=self._pattern, backend=backend)
        return np.maximum(pooled @ self.W_out, 0.0).astype(np.float32)

    __call__ = forward


class MLPGNN:
    """A small stack of :class:`MLPGNNLayer` with a linear readout.

    Useful as a runnable example of the user-defined-operator path; it is
    not meant to be a competitive GNN (no training loop is provided — the
    paper only evaluates the kernel's forward cost for this pattern).
    """

    def __init__(
        self,
        graph: Graph,
        layer_dims: List[int],
        *,
        hidden_dim: int = 32,
        num_classes: int = 0,
        seed: int = 0,
    ) -> None:
        if graph.features is None:
            raise ShapeError("MLPGNN requires node features")
        dims = [graph.features.shape[1]] + list(layer_dims)
        self.graph = graph
        self.layers = [
            MLPGNNLayer(dims[i], hidden_dim, dims[i + 1], seed=seed + i)
            for i in range(len(dims) - 1)
        ]
        self.num_classes = num_classes
        self.readout = (
            xavier_init(dims[-1], num_classes, seed=seed + 100) if num_classes > 0 else None
        )

    def forward(self, *, backend: str = "optimized") -> np.ndarray:
        """Run all layers (and the readout when classes are configured)."""
        H = self.graph.features
        for layer in self.layers:
            H = layer.forward(self.graph.adjacency, H, backend=backend)
        if self.readout is not None:
            H = H @ self.readout
        return H
