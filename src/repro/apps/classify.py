"""Node-classification evaluation (Section V.D of the paper).

The paper validates that FusedMM does not change the embedding quality by
training Force2Vec and measuring the F1-micro score of node classification
on Cora and Pubmed (0.78 / 0.79).  scikit-learn is not available offline,
so this module provides the two needed ingredients from scratch:

* :class:`LogisticRegressionClassifier` — multinomial (softmax) logistic
  regression trained with full-batch gradient descent + L2 regularisation,
  operating on the learned embeddings;
* :func:`f1_micro` / :func:`f1_macro` — the evaluation metrics;
* :func:`train_test_split_indices` and :func:`evaluate_embeddings` — the
  end-to-end protocol (fit on a labelled fraction, report F1 on the rest).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ShapeError

__all__ = [
    "LogisticRegressionClassifier",
    "f1_micro",
    "f1_macro",
    "accuracy",
    "train_test_split_indices",
    "evaluate_embeddings",
]


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class LogisticRegressionClassifier:
    """Multinomial logistic regression on dense features.

    Parameters
    ----------
    learning_rate, epochs, weight_decay:
        Plain full-batch gradient-descent hyperparameters; the defaults are
        sufficient for the low-dimensional embedding inputs used by the
        accuracy experiment.
    """

    def __init__(
        self,
        *,
        learning_rate: float = 0.5,
        epochs: int = 300,
        weight_decay: float = 1e-4,
        seed: int = 0,
    ) -> None:
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.weight_decay = weight_decay
        self.seed = seed
        self.weights: Optional[np.ndarray] = None
        self.bias: Optional[np.ndarray] = None
        self.num_classes: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegressionClassifier":
        """Fit on features ``X`` (n, d) and integer labels ``y`` (n,)."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ShapeError("X must be (n, d) and y (n,) with matching n")
        n, d = X.shape
        self.num_classes = int(y.max()) + 1 if y.size else 0
        rng = np.random.default_rng(self.seed)
        W = rng.standard_normal((d, self.num_classes)) * 0.01
        b = np.zeros(self.num_classes)
        onehot = np.zeros((n, self.num_classes))
        onehot[np.arange(n), y] = 1.0
        for _ in range(self.epochs):
            probs = _softmax(X @ W + b)
            grad_logits = (probs - onehot) / n
            grad_W = X.T @ grad_logits + self.weight_decay * W
            grad_b = grad_logits.sum(axis=0)
            W -= self.learning_rate * grad_W
            b -= self.learning_rate * grad_b
        self.weights, self.bias = W, b
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities for each row of ``X``."""
        if self.weights is None:
            raise RuntimeError("classifier is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return _softmax(X @ self.weights + self.bias)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most likely class for each row of ``X``."""
        return np.argmax(self.predict_proba(X), axis=1).astype(np.int64)


# ---------------------------------------------------------------------- #
# Metrics
# ---------------------------------------------------------------------- #
def _confusion_counts(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int):
    tp = np.zeros(num_classes)
    fp = np.zeros(num_classes)
    fn = np.zeros(num_classes)
    for c in range(num_classes):
        tp[c] = np.sum((y_pred == c) & (y_true == c))
        fp[c] = np.sum((y_pred == c) & (y_true != c))
        fn[c] = np.sum((y_pred != c) & (y_true == c))
    return tp, fp, fn


def f1_micro(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Micro-averaged F1 (equals accuracy for single-label problems, which
    is the paper's reported metric)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ShapeError("y_true and y_pred must have the same shape")
    if y_true.size == 0:
        return 0.0
    num_classes = int(max(y_true.max(), y_pred.max())) + 1
    tp, fp, fn = _confusion_counts(y_true, y_pred, num_classes)
    denom = 2 * tp.sum() + fp.sum() + fn.sum()
    return float(2 * tp.sum() / denom) if denom else 0.0


def f1_macro(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Macro-averaged F1 (unweighted mean of per-class F1 scores)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ShapeError("y_true and y_pred must have the same shape")
    if y_true.size == 0:
        return 0.0
    num_classes = int(max(y_true.max(), y_pred.max())) + 1
    tp, fp, fn = _confusion_counts(y_true, y_pred, num_classes)
    per_class = np.zeros(num_classes)
    for c in range(num_classes):
        denom = 2 * tp[c] + fp[c] + fn[c]
        per_class[c] = 2 * tp[c] / denom if denom else 0.0
    return float(per_class.mean())


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ShapeError("y_true and y_pred must have the same shape")
    return float(np.mean(y_true == y_pred)) if y_true.size else 0.0


# ---------------------------------------------------------------------- #
# Evaluation protocol
# ---------------------------------------------------------------------- #
def train_test_split_indices(
    n: int, train_fraction: float = 0.5, *, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Random split of ``range(n)`` into train/test index arrays."""
    if not 0.0 < train_fraction < 1.0:
        raise ShapeError("train_fraction must be in (0, 1)")
    order = np.random.default_rng(seed).permutation(n)
    cut = max(1, int(round(train_fraction * n)))
    return order[:cut], order[cut:]


def evaluate_embeddings(
    embeddings: np.ndarray,
    labels: np.ndarray,
    *,
    train_fraction: float = 0.5,
    seed: int = 0,
    classifier: Optional[LogisticRegressionClassifier] = None,
) -> Dict[str, float]:
    """Fit a logistic-regression classifier on a labelled fraction of the
    embeddings and report F1/accuracy on the held-out rest — the protocol
    behind the paper's 0.78/0.79 F1-micro numbers."""
    embeddings = np.asarray(embeddings)
    labels = np.asarray(labels, dtype=np.int64)
    if embeddings.shape[0] != labels.shape[0]:
        raise ShapeError("embeddings and labels must have the same number of rows")
    train_idx, test_idx = train_test_split_indices(
        embeddings.shape[0], train_fraction, seed=seed
    )
    clf = classifier or LogisticRegressionClassifier(seed=seed)
    clf.fit(embeddings[train_idx], labels[train_idx])
    pred = clf.predict(embeddings[test_idx])
    truth = labels[test_idx]
    return {
        "f1_micro": f1_micro(truth, pred),
        "f1_macro": f1_macro(truth, pred),
        "accuracy": accuracy(truth, pred),
        "num_train": int(train_idx.shape[0]),
        "num_test": int(test_idx.shape[0]),
    }
