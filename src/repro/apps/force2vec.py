"""Force2Vec graph embedding (the end-to-end application of Table VIII).

Force2Vec [Rahman, Sujon, Azad — ICDM 2020] learns node embeddings with a
force-directed objective optimised by minibatch SGD with negative sampling.
The per-batch gradient decomposes into

* an **attractive** term over the edges of the batch vertices,
  ``grad_attr[u] = Σ_{v ∈ N(u)} (σ(x_u·x_v) − 1) · x_v``, and
* a **repulsive** term over ``k`` sampled negatives per vertex,
  ``grad_rep[u] = Σ_{j} σ(x_u·x_{n_j}) · x_{n_j}``.

Both terms are exactly the sigmoid-embedding FusedMM pattern (Table III
row 2): the attractive term on the batch rows of the adjacency matrix, the
repulsive term on a small synthetic adjacency whose rows hold the sampled
negatives.  The trainer therefore spends essentially all its time inside
the kernel under study, which is what makes the end-to-end comparison of
Table VIII a kernel comparison in disguise — the paper's 25–45× speedups
over DGL/PyTorch come from swapping this kernel.

The ``backend`` knob selects which kernel implementation performs the work:

``"fused"``     FusedMM specialized kernels (this paper)
``"fused_generic"``  the unoptimized reference FusedMM (Alg. 1)
``"unfused"``   the DGL-style SDDMM → H → SpMM pipeline
``"dense"``     the PyTorch-style dense-tensor implementation
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..baselines.dense import dense_sigmoid_embedding, dense_spmm
from ..baselines.unfused import unfused_fusedmm
from ..core.fused import fusedmm
from ..errors import BackendError, ShapeError
from ..graphs.features import random_features
from ..graphs.graph import Graph
from ..runtime import KernelRuntime, RuntimeOptions
from ..sparse import CSRMatrix
from .sampling import NegativeSampler, minibatch_indices

__all__ = ["Force2VecConfig", "EpochStats", "Force2Vec", "EMBEDDING_BACKENDS"]

EMBEDDING_BACKENDS = ("fused", "fused_generic", "unfused", "dense")


@dataclass
class Force2VecConfig(RuntimeOptions):
    """Hyper-parameters of Force2Vec training.

    The defaults follow the paper's end-to-end setup: ``dim=128``,
    ``batch_size=256``; the learning rate and negative-sample count follow
    the Force2Vec reference implementation.

    The kernel-execution knobs (``kernel_backend``, ``reorder``,
    ``num_threads``, ``processes``, ``shard_min_nnz``) are inherited from
    :class:`~repro.runtime.RuntimeOptions` — one definition shared with
    every other app config and with ``ServeConfig``.  Note: Force2Vec
    trains through minibatch row slices and sampled negatives
    (``run_on``), which always execute in natural order — the ``reorder``
    tier only accelerates full-adjacency ``step`` calls, so non-"none"
    values mostly add plan-build cost here.
    """

    dim: int = 128
    batch_size: int = 256
    epochs: int = 5
    learning_rate: float = 0.02
    negative_samples: int = 5
    seed: int = 0
    backend: str = "fused"
    #: clip gradient norms to this value (0 disables clipping)
    max_grad_norm: float = 5.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.backend not in EMBEDDING_BACKENDS:
            raise BackendError(
                f"unknown embedding backend {self.backend!r}; expected {EMBEDDING_BACKENDS}"
            )
        if self.dim <= 0 or self.batch_size <= 0 or self.epochs < 0:
            raise ShapeError("dim and batch_size must be positive, epochs non-negative")
        if self.negative_samples < 0:
            raise ShapeError("negative_samples must be non-negative")


@dataclass
class EpochStats:
    """Timing/bookkeeping of one training epoch (a Table VIII row datum)."""

    epoch: int
    seconds: float
    kernel_seconds: float
    num_batches: int
    loss: Optional[float] = None


class Force2Vec:
    """Minibatched Force2Vec trainer with pluggable kernel backend.

    Example
    -------
    >>> from repro.graphs import load_dataset
    >>> from repro.apps import Force2Vec, Force2VecConfig
    >>> g = load_dataset("cora")
    >>> model = Force2Vec(g, Force2VecConfig(dim=32, epochs=1, seed=0))
    >>> embeddings = model.train()
    >>> embeddings.shape
    (2708, 32)
    """

    def __init__(self, graph: Graph, config: Force2VecConfig | None = None) -> None:
        self.graph = graph
        self.config = config or Force2VecConfig()
        self.adjacency: CSRMatrix = graph.adjacency
        if self.adjacency.nrows != self.adjacency.ncols:
            raise ShapeError("Force2Vec expects a square (whole-graph) adjacency matrix")
        self.embeddings = random_features(
            graph.num_vertices, self.config.dim, seed=self.config.seed
        ).astype(np.float64)
        self._sampler = NegativeSampler(
            graph.num_vertices,
            degrees=self.adjacency.row_degrees(),
            seed=self.config.seed + 7,
        )
        # The adjacency is fixed across all epochs; bind the two kernel
        # patterns of the gradient (sigmoid aggregation + plain SpMM) to
        # cached plans once and stream every minibatch through them.  With
        # ``processes`` set, large minibatch kernels run on the sharded
        # multi-process tier (bitwise identical results).
        self._runtime = KernelRuntime(
            cache_size=4,
            # Panel geometry / reorder sweeps size against the real
            # embedding dimension, not the 128 default.
            autotune_dim=self.config.dim,
            **self.config.runtime_kwargs(),
        )
        self._sig_stream = self._runtime.epochs(
            self.adjacency,
            pattern="sigmoid_embedding",
            backend=self.config.kernel_backend,
            reorder=self.config.reorder,
        )
        self._agg_stream = self._runtime.epochs(
            self.adjacency,
            pattern="gcn",
            backend=self.config.kernel_backend,
            reorder=self.config.reorder,
        )
        self.history: List[EpochStats] = []

    # ------------------------------------------------------------------ #
    # Kernel dispatch
    # ------------------------------------------------------------------ #
    def _sigmoid_aggregate(self, A: CSRMatrix, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """``Σ_v σ(x_u·y_v) y_v`` with the configured backend."""
        backend = self.config.backend
        if backend == "fused":
            return self._sig_stream.run_on(A, X, Y)
        if backend == "fused_generic":
            return fusedmm(A, X, Y, pattern="sigmoid_embedding", backend="generic")
        if backend == "unfused":
            return unfused_fusedmm(A, X, Y, pattern="sigmoid_embedding")
        if backend == "dense":
            return dense_sigmoid_embedding(A, X, Y)
        raise BackendError(f"unknown backend {backend!r}")  # pragma: no cover

    def _plain_aggregate(self, A: CSRMatrix, Y: np.ndarray) -> np.ndarray:
        """``Σ_v a_uv y_v`` (plain SpMM) with the configured backend."""
        backend = self.config.backend
        if backend in ("fused", "fused_generic"):
            return self._agg_stream.run_on(A, None, Y)
        if backend == "unfused":
            X_dummy = np.zeros((A.nrows, Y.shape[1]), dtype=Y.dtype)
            return unfused_fusedmm(A, X_dummy, Y, pattern="gcn")
        if backend == "dense":
            return dense_spmm(A, Y)
        raise BackendError(f"unknown backend {backend!r}")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def _batch_gradient(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Gradient of the Force2Vec objective for one vertex minibatch."""
        cfg = self.config
        X = self.embeddings
        Xb = X[batch].astype(np.float32)
        Y = X.astype(np.float32)

        # Attractive term over real edges: (σ(s) - 1) x_v summed over N(u).
        A_batch = self.adjacency.select_rows(batch)
        sig_sum = self._sigmoid_aggregate(A_batch, Xb, Y).astype(np.float64)
        # Unweighted neighbour sum (σ(s) - 1 = σ(s) minus one per edge).
        ones_batch = CSRMatrix(
            A_batch.nrows,
            A_batch.ncols,
            A_batch.indptr.copy(),
            A_batch.indices.copy(),
            np.ones(A_batch.nnz, dtype=np.float32),
            check=False,
        )
        neigh_sum = self._plain_aggregate(ones_batch, Y).astype(np.float64)
        grad = sig_sum - neigh_sum

        # Repulsive term over sampled negatives: σ(s) x_n summed over k draws.
        if cfg.negative_samples > 0:
            negs = self._sampler.sample((batch.shape[0], cfg.negative_samples))
            indptr = np.arange(
                0,
                (batch.shape[0] + 1) * cfg.negative_samples,
                cfg.negative_samples,
                dtype=np.int64,
            )
            A_neg = CSRMatrix(
                batch.shape[0],
                self.adjacency.ncols,
                indptr,
                negs.reshape(-1),
                np.ones(negs.size, dtype=np.float32),
                check=False,
            )
            grad += self._sigmoid_aggregate(A_neg, Xb, Y).astype(np.float64)

        if cfg.max_grad_norm > 0:
            norms = np.linalg.norm(grad, axis=1, keepdims=True)
            scale = np.minimum(1.0, cfg.max_grad_norm / np.maximum(norms, 1e-12))
            grad *= scale
        return grad

    def train_epoch(self, epoch: int = 0) -> EpochStats:
        """Run one epoch (one pass over all vertices in minibatches)."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + epoch)
        t_epoch = time.perf_counter()
        kernel_time = 0.0
        num_batches = 0
        for batch in minibatch_indices(
            self.graph.num_vertices, cfg.batch_size, seed=cfg.seed + epoch
        ):
            t0 = time.perf_counter()
            grad = self._batch_gradient(batch, rng)
            kernel_time += time.perf_counter() - t0
            self.embeddings[batch] -= cfg.learning_rate * grad
            num_batches += 1
        stats = EpochStats(
            epoch=epoch,
            seconds=time.perf_counter() - t_epoch,
            kernel_seconds=kernel_time,
            num_batches=num_batches,
        )
        self.history.append(stats)
        return stats

    def train(
        self,
        epochs: Optional[int] = None,
        *,
        callback: Optional[Callable[[EpochStats], None]] = None,
    ) -> np.ndarray:
        """Train for ``epochs`` epochs and return the learned embeddings."""
        epochs = self.config.epochs if epochs is None else epochs
        for epoch in range(epochs):
            stats = self.train_epoch(epoch)
            if callback is not None:
                callback(stats)
        return self.embeddings.astype(np.float32)

    # ------------------------------------------------------------------ #
    # Checkpointable state
    # ------------------------------------------------------------------ #
    def export_state(self) -> dict:
        """Everything needed to continue training bitwise-identically:
        the embeddings, the completed-epoch count, the negative sampler's
        generator state (stateful across epochs — the minibatch order is a
        pure function of ``seed + epoch`` and needs no persisting) and the
        epoch history.  Arrays are returned as copies; the rest is
        JSON-able, so the dict drops straight into a checkpoint."""
        from dataclasses import asdict

        return {
            "embeddings": self.embeddings.copy(),
            "epochs_completed": len(self.history),
            "sampler_state": self._sampler.get_state(),
            "history": [asdict(s) for s in self.history],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`export_state` snapshot; the next
        :meth:`train_epoch` continues exactly where the snapshot left off
        (same dtype, same sampler stream position)."""
        embeddings = np.asarray(state["embeddings"])
        if embeddings.shape != self.embeddings.shape:
            raise ShapeError(
                f"state embeddings shape {embeddings.shape} does not match "
                f"model shape {self.embeddings.shape}"
            )
        self.embeddings = embeddings.copy()
        self._sampler.set_state(state["sampler_state"])
        self.history = [EpochStats(**s) for s in state.get("history", [])]

    @property
    def epochs_completed(self) -> int:
        """Epochs trained so far (the resume point of a checkpoint)."""
        return len(self.history)

    # ------------------------------------------------------------------ #
    def runtime_stats(self) -> dict:
        """The trainer's :meth:`KernelRuntime.stats` snapshot — plan-cache
        hit rate, scheduling counters, shard-tier state."""
        return self._runtime.stats()

    def serve_output(self) -> np.ndarray:
        """The servable per-vertex matrix (the learned embeddings) — the
        uniform lookup surface :mod:`repro.serve`'s model registry reads
        behind ``/v1/embed/<model>``."""
        return self.embeddings.astype(np.float32)

    # ------------------------------------------------------------------ #
    def average_epoch_seconds(self) -> float:
        """Mean wall-clock seconds per epoch over the recorded history (the
        quantity reported in Table VIII)."""
        if not self.history:
            return 0.0
        return float(np.mean([s.seconds for s in self.history]))

    def loss_estimate(self, sample_edges: int = 4096, seed: int = 0) -> float:
        """Monte-Carlo estimate of the negative log-likelihood objective on a
        random sample of edges plus an equal number of negative pairs."""
        rng = np.random.default_rng(seed)
        A = self.adjacency
        X = self.embeddings
        if A.nnz == 0:
            return 0.0
        edge_rows = np.repeat(np.arange(A.nrows, dtype=np.int64), A.row_degrees())
        idx = rng.integers(0, A.nnz, size=min(sample_edges, A.nnz))
        u, v = edge_rows[idx], A.indices[idx]
        pos_scores = np.einsum("ij,ij->i", X[u], X[v])
        neg_v = rng.integers(0, A.ncols, size=u.shape[0])
        neg_scores = np.einsum("ij,ij->i", X[u], X[neg_v])
        eps = 1e-9
        pos_term = -np.log(np.clip(1.0 / (1.0 + np.exp(-pos_scores)), eps, 1.0))
        neg_term = -np.log(np.clip(1.0 - 1.0 / (1.0 + np.exp(-neg_scores)), eps, 1.0))
        return float(np.mean(pos_term) + np.mean(neg_term))
