"""Force-directed graph layout with the Fruchterman–Reingold model
(Fig. 1(a) of the paper).

One layout iteration needs, for every vertex ``u``,

* the **attractive** displacement from its neighbours — a function of the
  distance ``‖x_u − x_v‖`` multiplied by the unit direction — which is the
  ``fr_layout`` FusedMM pattern (Table III row 1) and generates a
  *d-dimensional message per edge* (the memory-heavy case of Table VI /
  Fig. 10b), and
* a **repulsive** displacement from non-neighbours, which the
  minibatch/negative-sampling literature approximates with a sample of
  random vertices (computing it exactly is O(n²)).

The :class:`FRLayout` driver below runs those two terms per iteration with
a standard cooling schedule, through a selectable kernel backend so the
layout experiment of the harness can compare fused vs unfused end to end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..baselines.unfused import unfused_fusedmm
from ..core.fused import fusedmm
from ..errors import BackendError, ShapeError
from ..graphs.features import uniform_features
from ..graphs.graph import Graph
from ..runtime import KernelRuntime, RuntimeOptions
from ..sparse import CSRMatrix
from .sampling import NegativeSampler

__all__ = ["FRLayoutConfig", "FRLayout"]

LAYOUT_BACKENDS = ("fused", "fused_generic", "unfused")


@dataclass
class FRLayoutConfig(RuntimeOptions):
    """Hyper-parameters of the FR layout driver.

    Kernel-execution knobs are inherited from
    :class:`~repro.runtime.RuntimeOptions`.
    """

    dim: int = 2
    iterations: int = 50
    initial_temperature: float = 0.1
    cooling: float = 0.97
    repulsive_samples: int = 5
    seed: int = 0
    backend: str = "fused"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.backend not in LAYOUT_BACKENDS:
            raise BackendError(
                f"unknown layout backend {self.backend!r}; expected {LAYOUT_BACKENDS}"
            )
        if self.dim <= 0 or self.iterations < 0:
            raise ShapeError("dim must be positive and iterations non-negative")
        if not 0.0 < self.cooling <= 1.0:
            raise ShapeError("cooling must be in (0, 1]")


class FRLayout:
    """Iterative force-directed layout on top of the FusedMM FR kernel."""

    def __init__(self, graph: Graph, config: FRLayoutConfig | None = None) -> None:
        self.graph = graph
        self.config = config or FRLayoutConfig()
        self.adjacency: CSRMatrix = graph.adjacency
        if self.adjacency.nrows != self.adjacency.ncols:
            raise ShapeError("FRLayout expects a square adjacency matrix")
        self.positions = uniform_features(
            graph.num_vertices, self.config.dim, seed=self.config.seed
        ).astype(np.float64)
        self._sampler = NegativeSampler(graph.num_vertices, seed=self.config.seed + 3)
        # One plan for the whole cooling schedule: the adjacency never
        # changes between iterations, so planning happens exactly once and
        # every step streams through the cached plan (sharded over worker
        # processes when ``processes`` is set).  The sampled repulsive
        # matrices reuse the same plan via ``run_on``.
        self._runtime = KernelRuntime(
            cache_size=4,
            # Panel geometry / reorder sweeps size against the layout
            # dimension (typically 2), not the 128 default.
            autotune_dim=self.config.dim,
            **self.config.runtime_kwargs(),
        )
        self._force_stream = self._runtime.epochs(
            self.adjacency,
            pattern="fr_layout",
            backend=self.config.kernel_backend,
            reorder=self.config.reorder,
        )
        self.iteration_seconds: List[float] = []
        #: Current cooling temperature.  Persistent state, not recomputed:
        #: repeated ``t *= cooling`` differs bitwise from
        #: ``initial * cooling**k``, so a resumed run must restore the
        #: accumulated product, never re-derive it from the iteration count.
        self.temperature: float = self.config.initial_temperature

    # ------------------------------------------------------------------ #
    def runtime_stats(self) -> dict:
        """The driver's :meth:`KernelRuntime.stats` snapshot."""
        return self._runtime.stats()

    def serve_output(self) -> np.ndarray:
        """The servable per-vertex matrix (the layout positions) — the
        uniform lookup surface :mod:`repro.serve`'s model registry reads
        behind ``/v1/embed/<model>``."""
        return self.positions.astype(np.float32)

    # ------------------------------------------------------------------ #
    def _attractive(self, P32: np.ndarray) -> np.ndarray:
        """Attractive displacements via the fr_layout FusedMM pattern."""
        backend = self.config.backend
        if backend == "fused":
            return self._force_stream.step(P32, P32).astype(np.float64)
        if backend == "fused_generic":
            return fusedmm(
                self.adjacency, P32, P32, pattern="fr_layout", backend="generic"
            ).astype(np.float64)
        return unfused_fusedmm(self.adjacency, P32, P32, pattern="fr_layout").astype(
            np.float64
        )

    def _repulsive(self, P32: np.ndarray) -> np.ndarray:
        """Sampled repulsive displacements (random non-neighbour pairs)."""
        k = self.config.repulsive_samples
        if k <= 0:
            return np.zeros_like(self.positions)
        n = self.graph.num_vertices
        negs = self._sampler.sample((n, k))
        indptr = np.arange(0, (n + 1) * k, k, dtype=np.int64)
        A_neg = CSRMatrix(
            n,
            n,
            indptr,
            negs.reshape(-1),
            np.ones(negs.size, dtype=np.float32),
            check=False,
        )
        # The repulsive force has the same functional form with opposite
        # sign; reuse the same kernel on the sampled pairs.
        if self.config.backend == "unfused":
            rep = unfused_fusedmm(A_neg, P32, P32, pattern="fr_layout")
        else:
            rep = self._force_stream.run_on(A_neg, P32, P32)
        return -rep.astype(np.float64) / max(k, 1)

    # ------------------------------------------------------------------ #
    def step(self, temperature: float) -> float:
        """Run one layout iteration; returns the mean displacement norm."""
        P32 = self.positions.astype(np.float32)
        t0 = time.perf_counter()
        displacement = self._attractive(P32) + self._repulsive(P32)
        self.iteration_seconds.append(time.perf_counter() - t0)
        norms = np.linalg.norm(displacement, axis=1, keepdims=True)
        limited = displacement * np.minimum(1.0, temperature / np.maximum(norms, 1e-12))
        self.positions -= limited
        return float(np.mean(norms))

    def train_epoch(self, iteration: int = 0) -> float:
        """One cooling-schedule iteration: step at the current temperature,
        then cool.  The uniform per-epoch surface the job supervisor
        drives; returns the mean displacement norm."""
        norm = self.step(self.temperature)
        self.temperature *= self.config.cooling
        return norm

    def run(self, iterations: Optional[int] = None) -> np.ndarray:
        """Run the full cooling schedule and return final positions.

        Each call restarts the schedule from ``initial_temperature``
        (resumable runs go through :meth:`train_epoch` +
        :meth:`export_state` instead)."""
        iterations = self.config.iterations if iterations is None else iterations
        self.temperature = self.config.initial_temperature
        for i in range(iterations):
            self.train_epoch(i)
        return self.positions.astype(np.float32)

    # ------------------------------------------------------------------ #
    # Checkpointable state
    # ------------------------------------------------------------------ #
    def export_state(self) -> dict:
        """Positions + iteration count + the accumulated temperature + the
        repulsive sampler's stream position — the full bitwise-resume
        state of the cooling schedule."""
        return {
            "positions": self.positions.copy(),
            "epochs_completed": len(self.iteration_seconds),
            "temperature": self.temperature,
            "sampler_state": self._sampler.get_state(),
            "iteration_seconds": list(self.iteration_seconds),
        }

    def load_state(self, state: dict) -> None:
        """Restore an :meth:`export_state` snapshot bitwise."""
        positions = np.asarray(state["positions"])
        if positions.shape != self.positions.shape:
            raise ShapeError(
                f"state positions shape {positions.shape} does not match "
                f"model shape {self.positions.shape}"
            )
        self.positions = positions.copy()
        self.temperature = float(state["temperature"])
        self._sampler.set_state(state["sampler_state"])
        self.iteration_seconds = list(state.get("iteration_seconds", []))

    @property
    def epochs_completed(self) -> int:
        """Iterations run so far (the resume point of a checkpoint)."""
        return len(self.iteration_seconds)

    # ------------------------------------------------------------------ #
    def edge_length_stats(self) -> dict:
        """Mean/std of edge lengths in the current layout — a cheap quality
        proxy (a good force-directed layout has tightly concentrated edge
        lengths)."""
        A = self.adjacency
        if A.nnz == 0:
            return {"mean": 0.0, "std": 0.0}
        rows = np.repeat(np.arange(A.nrows, dtype=np.int64), A.row_degrees())
        diffs = self.positions[rows] - self.positions[A.indices]
        lengths = np.linalg.norm(diffs, axis=1)
        return {"mean": float(lengths.mean()), "std": float(lengths.std())}
