"""Applications built on the FusedMM kernel.

* :class:`~repro.apps.force2vec.Force2Vec` — minibatched force-directed
  embedding with negative sampling (the end-to-end benchmark of
  Table VIII).
* :class:`~repro.apps.verse.Verse` — VERSE-style similarity embedding.
* :class:`~repro.apps.fr_layout.FRLayout` — Fruchterman–Reingold layout.
* :class:`~repro.apps.gcn.GCN` — two-layer graph convolutional network.
* :class:`~repro.apps.gnn_mlp.MLPGNN` — GNN with MLP edge messages and max
  pooling (the user-defined-operator example).
* :mod:`~repro.apps.classify` — logistic-regression node-classification
  evaluation and F1 metrics (Section V.D accuracy check).
* :mod:`~repro.apps.sampling` — minibatching and negative sampling.
"""

from .classify import (
    LogisticRegressionClassifier,
    accuracy,
    evaluate_embeddings,
    f1_macro,
    f1_micro,
    train_test_split_indices,
)
from .force2vec import EMBEDDING_BACKENDS, EpochStats, Force2Vec, Force2VecConfig
from .fr_layout import FRLayout, FRLayoutConfig
from .gcn import GCN, GCN_BACKENDS, GCNConfig, normalize_adjacency
from .gnn_mlp import MLPGNN, MLPGNNLayer
from .sampling import NegativeSampler, minibatch_indices
from .verse import Verse, VerseConfig

__all__ = [
    "Force2Vec",
    "Force2VecConfig",
    "EpochStats",
    "EMBEDDING_BACKENDS",
    "Verse",
    "VerseConfig",
    "FRLayout",
    "FRLayoutConfig",
    "GCN",
    "GCNConfig",
    "GCN_BACKENDS",
    "normalize_adjacency",
    "MLPGNN",
    "MLPGNNLayer",
    "LogisticRegressionClassifier",
    "evaluate_embeddings",
    "f1_micro",
    "f1_macro",
    "accuracy",
    "train_test_split_indices",
    "NegativeSampler",
    "minibatch_indices",
]
