"""Graph Convolutional Network (Fig. 1(c) / Table III row 3).

A two-layer GCN in the Kipf & Welling formulation:

``H¹ = ReLU(Â · X · W¹)``,  ``H² = softmax(Â · H¹ · W²)``

where ``Â = D^{-1/2} (A + I) D^{-1/2}`` is the symmetrically normalised
adjacency with self loops.  The sparse aggregation ``Â · (·)`` is exactly
the GCN/SpMM specialisation of FusedMM; the ``backend`` knob switches it
between the fused kernel, the unfused DGL-style pipeline and the vendor
(SciPy) SpMM so kernel choices can be compared end to end.

Training uses full-batch gradient descent on the softmax cross-entropy of
the labelled vertices; the backward pass is written out explicitly (the
aggregation is symmetric, so its adjoint is the same SpMM).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..baselines.mkl_like import scipy_available, vendor_spmm
from ..baselines.unfused import unfused_fusedmm
from ..errors import BackendError, ShapeError
from ..runtime import KernelRuntime, RuntimeOptions
from ..graphs.features import xavier_init
from ..graphs.graph import Graph
from ..sparse import CSRMatrix

__all__ = ["GCNConfig", "GCN", "normalize_adjacency", "GCN_BACKENDS"]

GCN_BACKENDS = ("fused", "unfused", "vendor")


def normalize_adjacency(A: CSRMatrix, *, add_self_loops: bool = True) -> CSRMatrix:
    """Symmetric GCN normalisation ``D^{-1/2} (A + I) D^{-1/2}``."""
    if A.nrows != A.ncols:
        raise ShapeError("normalize_adjacency expects a square matrix")
    work = A
    if add_self_loops:
        coo = A.to_coo()
        import numpy as _np

        rows = _np.concatenate([coo.rows, _np.arange(A.nrows, dtype=_np.int64)])
        cols = _np.concatenate([coo.cols, _np.arange(A.nrows, dtype=_np.int64)])
        vals = _np.concatenate([coo.vals, _np.ones(A.nrows, dtype=coo.vals.dtype)])
        from ..sparse import COOMatrix

        work = CSRMatrix.from_coo(COOMatrix(A.nrows, A.ncols, rows, cols, vals))
    degrees = np.maximum(work.row_degrees().astype(np.float64), 1.0)
    inv_sqrt = (1.0 / np.sqrt(degrees)).astype(np.float32)
    return work.scale_rows(inv_sqrt).scale_cols(inv_sqrt)


@dataclass
class GCNConfig(RuntimeOptions):
    """GCN architecture + training hyper-parameters.

    Kernel-execution knobs (``kernel_backend``, ``reorder``, ``num_threads``,
    ``processes``, ``shard_min_nnz``) are inherited from
    :class:`~repro.runtime.RuntimeOptions`.
    """

    hidden_dim: int = 16
    learning_rate: float = 0.2
    epochs: int = 100
    weight_decay: float = 5e-4
    seed: int = 0
    backend: str = "fused"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.backend not in GCN_BACKENDS:
            raise BackendError(f"unknown GCN backend {self.backend!r}; expected {GCN_BACKENDS}")
        if self.hidden_dim <= 0:
            raise ShapeError("hidden_dim must be positive")


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class GCN:
    """Two-layer GCN with selectable sparse-aggregation backend."""

    def __init__(
        self,
        graph: Graph,
        num_classes: Optional[int] = None,
        config: GCNConfig | None = None,
    ) -> None:
        self.graph = graph
        self.config = config or GCNConfig()
        if graph.features is None:
            raise ShapeError("GCN requires node features on the graph")
        if num_classes is None:
            num_classes = graph.num_classes
        if num_classes <= 0:
            raise ShapeError("GCN requires labelled graphs (num_classes > 0)")
        self.num_classes = num_classes
        self.A_hat = normalize_adjacency(graph.adjacency)
        cfg = self.config
        in_dim = graph.features.shape[1]
        self.W1 = xavier_init(in_dim, cfg.hidden_dim, seed=cfg.seed).astype(np.float64)
        self.W2 = xavier_init(cfg.hidden_dim, num_classes, seed=cfg.seed + 1).astype(
            np.float64
        )
        # The normalised adjacency is fixed for the whole training run, so
        # the fused aggregation is planned exactly once and streamed: every
        # forward/backward SpMM reuses the cached plan (sharded over worker
        # processes when ``processes`` is set).
        self._runtime = KernelRuntime(
            cache_size=4,
            # Two of the three aggregations per epoch run at hidden_dim,
            # so panel geometry / reorder sweeps size against it.
            autotune_dim=cfg.hidden_dim,
            **cfg.runtime_kwargs(),
        )
        self._agg_stream = self._runtime.epochs(
            self.A_hat,
            pattern="gcn",
            backend=cfg.kernel_backend,
            reorder=cfg.reorder,
        )
        self.history: List[Dict[str, float]] = []

    # ------------------------------------------------------------------ #
    def runtime_stats(self) -> Dict[str, object]:
        """The model's :meth:`KernelRuntime.stats` snapshot."""
        return self._runtime.stats()

    def serve_output(self) -> np.ndarray:
        """The servable per-vertex matrix (class probabilities) — the
        uniform lookup surface :mod:`repro.serve`'s model registry reads
        behind ``/v1/embed/<model>``."""
        return self.forward()["P"].astype(np.float32)

    # ------------------------------------------------------------------ #
    def _aggregate(self, M: np.ndarray) -> np.ndarray:
        """``Â · M`` with the configured backend."""
        backend = self.config.backend
        M32 = M.astype(np.float32)
        if backend == "fused":
            out = self._agg_stream.step(M32)
        elif backend == "unfused":
            X_dummy = np.zeros((self.A_hat.nrows, M32.shape[1]), dtype=np.float32)
            out = unfused_fusedmm(self.A_hat, X_dummy, M32, pattern="gcn")
        elif backend == "vendor":
            if not scipy_available():  # pragma: no cover - scipy present in CI
                raise BackendError("vendor backend requires SciPy")
            out = vendor_spmm(self.A_hat, M32)
        else:  # pragma: no cover
            raise BackendError(f"unknown backend {backend!r}")
        return out.astype(np.float64)

    def forward(self, features: Optional[np.ndarray] = None) -> Dict[str, np.ndarray]:
        """Full forward pass; returns all intermediate activations (needed
        by the explicit backward pass)."""
        X = self.graph.features if features is None else features
        X = np.asarray(X, dtype=np.float64)
        AX = self._aggregate(X)
        Z1 = AX @ self.W1
        H1 = np.maximum(Z1, 0.0)
        AH1 = self._aggregate(H1)
        Z2 = AH1 @ self.W2
        P = _softmax(Z2)
        return {"X": X, "AX": AX, "Z1": Z1, "H1": H1, "AH1": AH1, "Z2": Z2, "P": P}

    def predict(self, features: Optional[np.ndarray] = None) -> np.ndarray:
        """Predicted class per vertex."""
        return np.argmax(self.forward(features)["P"], axis=1).astype(np.int64)

    # ------------------------------------------------------------------ #
    def _loss_and_grads(self, cache: Dict[str, np.ndarray], labels: np.ndarray, mask: np.ndarray):
        """Cross-entropy on the masked vertices + explicit gradients."""
        P = cache["P"]
        n_labeled = max(int(mask.sum()), 1)
        onehot = np.zeros_like(P)
        onehot[np.arange(P.shape[0]), labels] = 1.0
        eps = 1e-12
        loss = -np.sum(mask[:, None] * onehot * np.log(P + eps)) / n_labeled
        loss += 0.5 * self.config.weight_decay * (np.sum(self.W1**2) + np.sum(self.W2**2))

        dZ2 = (P - onehot) * mask[:, None] / n_labeled
        dW2 = cache["AH1"].T @ dZ2 + self.config.weight_decay * self.W2
        # Â is symmetric, so the adjoint of the aggregation is the same SpMM.
        dAH1 = dZ2 @ self.W2.T
        dH1 = self._aggregate(dAH1)
        dZ1 = dH1 * (cache["Z1"] > 0)
        dW1 = cache["AX"].T @ dZ1 + self.config.weight_decay * self.W1
        return loss, dW1, dW2

    def _resolve_targets(self, labels, train_mask):
        """Validate and default the (labels, mask) pair fit/train_epoch use."""
        labels = self.graph.labels if labels is None else np.asarray(labels, dtype=np.int64)
        if labels is None:
            raise ShapeError("GCN.fit requires labels")
        n = self.graph.num_vertices
        if train_mask is None:
            train_mask = np.ones(n, dtype=bool)
        train_mask = np.asarray(train_mask, dtype=bool)
        if train_mask.shape != (n,):
            raise ShapeError(f"train_mask must have shape ({n},)")
        return labels, train_mask

    def train_epoch(
        self,
        epoch: int = 0,
        labels: Optional[np.ndarray] = None,
        train_mask: Optional[np.ndarray] = None,
    ) -> Dict[str, float]:
        """One full-batch gradient step (the body of :meth:`fit`'s loop),
        exposed so the job supervisor can drive all four apps through a
        uniform per-epoch surface."""
        labels, train_mask = self._resolve_targets(labels, train_mask)
        t0 = time.perf_counter()
        cache = self.forward()
        loss, dW1, dW2 = self._loss_and_grads(cache, labels, train_mask.astype(np.float64))
        self.W1 -= self.config.learning_rate * dW1
        self.W2 -= self.config.learning_rate * dW2
        pred = np.argmax(cache["P"], axis=1)
        acc = float(np.mean(pred[train_mask] == labels[train_mask]))
        stats = {
            "epoch": epoch,
            "loss": float(loss),
            "train_accuracy": acc,
            "seconds": time.perf_counter() - t0,
        }
        self.history.append(stats)
        return stats

    def fit(
        self,
        labels: Optional[np.ndarray] = None,
        train_mask: Optional[np.ndarray] = None,
        *,
        epochs: Optional[int] = None,
    ) -> List[Dict[str, float]]:
        """Train with full-batch gradient descent; returns per-epoch stats."""
        labels, train_mask = self._resolve_targets(labels, train_mask)
        epochs = self.config.epochs if epochs is None else epochs
        for epoch in range(epochs):
            self.train_epoch(epoch, labels, train_mask)
        return self.history

    # ------------------------------------------------------------------ #
    # Checkpointable state
    # ------------------------------------------------------------------ #
    def export_state(self) -> dict:
        """Both weight matrices + the epoch history.  GCN training is
        full-batch and draws no per-epoch randomness, so the weights and
        the epoch counter are the complete resume state."""
        return {
            "W1": self.W1.copy(),
            "W2": self.W2.copy(),
            "epochs_completed": len(self.history),
            "history": [dict(h) for h in self.history],
        }

    def load_state(self, state: dict) -> None:
        """Restore an :meth:`export_state` snapshot bitwise."""
        W1 = np.asarray(state["W1"])
        W2 = np.asarray(state["W2"])
        if W1.shape != self.W1.shape or W2.shape != self.W2.shape:
            raise ShapeError(
                f"state weight shapes {W1.shape}/{W2.shape} do not match "
                f"model shapes {self.W1.shape}/{self.W2.shape}"
            )
        self.W1 = W1.copy()
        self.W2 = W2.copy()
        self.history = [dict(h) for h in state.get("history", [])]

    @property
    def epochs_completed(self) -> int:
        """Epochs trained so far (the resume point of a checkpoint)."""
        return len(self.history)

    def accuracy(self, labels: Optional[np.ndarray] = None, mask: Optional[np.ndarray] = None) -> float:
        """Classification accuracy on the (optionally masked) vertices."""
        labels = self.graph.labels if labels is None else np.asarray(labels, dtype=np.int64)
        pred = self.predict()
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            return float(np.mean(pred[mask] == labels[mask])) if mask.any() else 0.0
        return float(np.mean(pred == labels))
