"""Matrix Market I/O for sparse matrices.

The paper's datasets come from networkrepository.com and the SuiteSparse
collection, both of which distribute graphs as Matrix Market (``.mtx``)
coordinate files.  This module implements a self-contained reader/writer for
the coordinate subset of the format (``matrix coordinate
real|integer|pattern general|symmetric``), so users who do have the original
files can load them directly without SciPy.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from ..errors import SparseFormatError
from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]

PathLike = Union[str, Path]


def _open_text(path: PathLike, mode: str) -> TextIO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")  # type: ignore[return-value]
    return open(path, mode)


def read_matrix_market(path: PathLike, *, as_format: str = "csr"):
    """Read a Matrix Market coordinate file.

    Parameters
    ----------
    path:
        ``.mtx`` or ``.mtx.gz`` file path.
    as_format:
        ``"csr"`` (default) or ``"coo"``.

    Notes
    -----
    Only the ``coordinate`` storage scheme is supported (the scheme used by
    graph collections); ``array`` (dense) files raise
    :class:`~repro.errors.SparseFormatError`.  ``symmetric`` and
    ``skew-symmetric`` matrices are expanded to full storage.
    """
    with _open_text(path, "r") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise SparseFormatError(f"{path}: missing MatrixMarket header")
        parts = header.strip().split()
        if len(parts) < 5:
            raise SparseFormatError(f"{path}: malformed header {header!r}")
        _, obj, fmt, field, symmetry = parts[:5]
        if obj.lower() != "matrix" or fmt.lower() != "coordinate":
            raise SparseFormatError(
                f"{path}: only 'matrix coordinate' files are supported, got {obj} {fmt}"
            )
        field = field.lower()
        symmetry = symmetry.lower()
        if field not in {"real", "integer", "pattern"}:
            raise SparseFormatError(f"{path}: unsupported field type {field!r}")

        # Skip comments.
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        dims = line.split()
        if len(dims) != 3:
            raise SparseFormatError(f"{path}: malformed size line {line!r}")
        nrows, ncols, nnz = (int(x) for x in dims)

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.ones(nnz, dtype=np.float32)
        k = 0
        for line in fh:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            toks = line.split()
            rows[k] = int(toks[0]) - 1
            cols[k] = int(toks[1]) - 1
            if field != "pattern" and len(toks) > 2:
                vals[k] = float(toks[2])
            k += 1
        if k != nnz:
            raise SparseFormatError(f"{path}: expected {nnz} entries, found {k}")

    if symmetry in {"symmetric", "skew-symmetric", "hermitian"}:
        off_diag = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        mirror_rows = cols[off_diag]
        mirror_cols = rows[off_diag]
        mirror_vals = sign * vals[off_diag]
        rows = np.concatenate([rows, mirror_rows])
        cols = np.concatenate([cols, mirror_cols])
        vals = np.concatenate([vals, mirror_vals])

    coo = COOMatrix(nrows, ncols, rows, cols, vals)
    if as_format == "coo":
        return coo
    if as_format == "csr":
        return CSRMatrix.from_coo(coo)
    raise ValueError(f"unknown as_format {as_format!r}")


def write_matrix_market(path: PathLike, matrix, *, comment: str | None = None) -> None:
    """Write a CSR or COO matrix as a Matrix Market coordinate file."""
    if isinstance(matrix, CSRMatrix):
        coo = matrix.to_coo()
    elif isinstance(matrix, COOMatrix):
        coo = matrix
    else:
        raise TypeError("write_matrix_market expects a CSRMatrix or COOMatrix")
    with _open_text(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        if comment:
            for ln in comment.splitlines():
                fh.write(f"% {ln}\n")
        fh.write(f"{coo.nrows} {coo.ncols} {coo.nnz}\n")
        for r, c, v in zip(coo.rows, coo.cols, coo.vals):
            fh.write(f"{int(r) + 1} {int(c) + 1} {float(v):.7g}\n")
