"""Coordinate-format (COO) sparse matrix.

The COO format stores one ``(row, col, value)`` triple per stored entry.  It
is the natural construction format for graphs (an edge list *is* a COO
matrix) and the interchange format between the graph generators in
:mod:`repro.graphs` and the compute-oriented CSR format in
:mod:`repro.sparse.csr`.

The class is deliberately small: it validates its inputs, supports
de-duplication, transposition, and conversion to CSR, and nothing else.  All
kernels operate on CSR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple

import numpy as np

from ..errors import ShapeError, SparseFormatError

__all__ = ["COOMatrix"]


@dataclass
class COOMatrix:
    """A sparse matrix in coordinate format.

    Parameters
    ----------
    nrows, ncols:
        Matrix dimensions.
    rows, cols:
        Integer arrays of equal length giving the coordinates of the stored
        entries.  Stored as ``int64`` (the paper assumes 8-byte indices).
    vals:
        Values of the stored entries.  Stored as ``float32`` by default to
        match the paper's single-precision evaluation, but any float dtype
        is accepted.
    """

    nrows: int
    ncols: int
    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.nrows = int(self.nrows)
        self.ncols = int(self.ncols)
        if self.nrows < 0 or self.ncols < 0:
            raise ShapeError("matrix dimensions must be non-negative")
        self.rows = np.ascontiguousarray(self.rows, dtype=np.int64)
        self.cols = np.ascontiguousarray(self.cols, dtype=np.int64)
        if self.vals is None:
            self.vals = np.ones(self.rows.shape[0], dtype=np.float32)
        else:
            self.vals = np.ascontiguousarray(self.vals)
            if not np.issubdtype(self.vals.dtype, np.floating):
                self.vals = self.vals.astype(np.float32)
        if self.rows.ndim != 1 or self.cols.ndim != 1 or self.vals.ndim != 1:
            raise SparseFormatError("rows, cols and vals must be 1-D arrays")
        if not (self.rows.shape[0] == self.cols.shape[0] == self.vals.shape[0]):
            raise SparseFormatError(
                "rows, cols and vals must have the same length, got "
                f"{self.rows.shape[0]}, {self.cols.shape[0]}, {self.vals.shape[0]}"
            )
        if self.rows.size:
            if self.rows.min() < 0 or self.rows.max() >= self.nrows:
                raise SparseFormatError("row index out of range")
            if self.cols.min() < 0 or self.cols.max() >= self.ncols:
                raise SparseFormatError("column index out of range")

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int]:
        """``(nrows, ncols)`` of the matrix."""
        return (self.nrows, self.ncols)

    @property
    def nnz(self) -> int:
        """Number of stored entries (including any duplicates)."""
        return int(self.rows.shape[0])

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the stored values."""
        return self.vals.dtype

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"COOMatrix(shape={self.shape}, nnz={self.nnz}, dtype={self.vals.dtype})"
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        nrows: int,
        ncols: int | None = None,
        values: Iterable[float] | None = None,
    ) -> "COOMatrix":
        """Build a COO matrix from an iterable of ``(u, v)`` edges."""
        edge_arr = np.asarray(list(edges), dtype=np.int64)
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 2)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise SparseFormatError("edges must be an iterable of (u, v) pairs")
        vals = None if values is None else np.asarray(list(values), dtype=np.float32)
        return cls(
            nrows=nrows,
            ncols=nrows if ncols is None else ncols,
            rows=edge_arr[:, 0],
            cols=edge_arr[:, 1],
            vals=vals,
        )

    @classmethod
    def empty(cls, nrows: int, ncols: int, dtype=np.float32) -> "COOMatrix":
        """An all-zero matrix with no stored entries."""
        return cls(
            nrows=nrows,
            ncols=ncols,
            rows=np.empty(0, dtype=np.int64),
            cols=np.empty(0, dtype=np.int64),
            vals=np.empty(0, dtype=dtype),
        )

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def deduplicate(self, op: str = "sum") -> "COOMatrix":
        """Merge duplicate coordinates.

        Parameters
        ----------
        op:
            ``"sum"`` adds duplicate values (matrix semantics), ``"last"``
            keeps the last occurrence, ``"max"`` keeps the maximum.
        """
        if self.nnz == 0:
            return COOMatrix.empty(self.nrows, self.ncols, self.vals.dtype)
        keys = self.rows * self.ncols + self.cols
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        unique_keys, start = np.unique(keys_sorted, return_index=True)
        rows = (unique_keys // self.ncols).astype(np.int64)
        cols = (unique_keys % self.ncols).astype(np.int64)
        vals_sorted = self.vals[order]
        if op == "sum":
            vals = np.add.reduceat(vals_sorted, start)
        elif op == "max":
            vals = np.maximum.reduceat(vals_sorted, start)
        elif op == "last":
            ends = np.append(start[1:], keys_sorted.shape[0]) - 1
            vals = vals_sorted[ends]
        else:
            raise ValueError(f"unknown deduplication op {op!r}")
        return COOMatrix(self.nrows, self.ncols, rows, cols, vals.astype(self.vals.dtype))

    def transpose(self) -> "COOMatrix":
        """Return the transposed matrix (rows and columns swapped)."""
        return COOMatrix(self.ncols, self.nrows, self.cols.copy(), self.rows.copy(), self.vals.copy())

    def symmetrize(self) -> "COOMatrix":
        """Return ``A + Aᵀ`` structurally: each edge appears in both
        directions, duplicate coordinates merged with ``max`` so values are
        not doubled for already-symmetric inputs."""
        rows = np.concatenate([self.rows, self.cols])
        cols = np.concatenate([self.cols, self.rows])
        vals = np.concatenate([self.vals, self.vals])
        out = COOMatrix(max(self.nrows, self.ncols), max(self.nrows, self.ncols), rows, cols, vals)
        return out.deduplicate(op="max")

    def drop_self_loops(self) -> "COOMatrix":
        """Remove entries on the main diagonal."""
        keep = self.rows != self.cols
        return COOMatrix(self.nrows, self.ncols, self.rows[keep], self.cols[keep], self.vals[keep])

    def to_dense(self) -> np.ndarray:
        """Materialise the matrix as a dense ndarray (testing only)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.rows, self.cols), self.vals.astype(np.float64))
        return dense

    def to_csr(self):
        """Convert to :class:`repro.sparse.csr.CSRMatrix` (duplicates summed)."""
        from .csr import CSRMatrix

        return CSRMatrix.from_coo(self)

    def row_degrees(self) -> np.ndarray:
        """Number of stored entries per row."""
        return np.bincount(self.rows, minlength=self.nrows).astype(np.int64)
