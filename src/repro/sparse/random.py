"""Random sparse matrix construction.

Used by the test suite and by the benchmark harness to create controlled
sparsity patterns (uniform random, banded, block-diagonal, bipartite slices)
beyond the graph-shaped generators in :mod:`repro.graphs.generators`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = [
    "random_csr",
    "random_bipartite",
    "banded_csr",
    "block_diagonal_csr",
]


def random_csr(
    nrows: int,
    ncols: int,
    density: float = 0.01,
    *,
    seed: int | None = None,
    dtype=np.float32,
    value_range: tuple[float, float] = (0.1, 1.0),
) -> CSRMatrix:
    """A uniformly random sparse matrix with roughly ``density * nrows *
    ncols`` nonzeros (duplicates removed, so the realised density can be
    slightly smaller)."""
    if not 0.0 <= density <= 1.0:
        raise ShapeError(f"density must be in [0, 1], got {density}")
    rng = np.random.default_rng(seed)
    target = int(round(density * nrows * ncols))
    if target == 0 or nrows == 0 or ncols == 0:
        return CSRMatrix.empty(nrows, ncols, dtype)
    rows = rng.integers(0, nrows, size=target, dtype=np.int64)
    cols = rng.integers(0, ncols, size=target, dtype=np.int64)
    lo, hi = value_range
    vals = rng.uniform(lo, hi, size=target).astype(dtype)
    coo = COOMatrix(nrows, ncols, rows, cols, vals).deduplicate(op="last")
    return CSRMatrix.from_coo(coo)


def random_bipartite(
    nrows: int,
    ncols: int,
    avg_degree: float,
    *,
    seed: int | None = None,
    dtype=np.float32,
) -> CSRMatrix:
    """A random rectangular (bipartite / minibatch-slice shaped) matrix in
    which every row receives a Poisson(``avg_degree``) number of neighbours.

    This is the shape FusedMM sees during minibatched GNN training (Fig. 2):
    an ``m × n`` slice of the adjacency matrix with ``m ≪ n``.
    """
    if avg_degree < 0:
        raise ShapeError("avg_degree must be non-negative")
    rng = np.random.default_rng(seed)
    degrees = rng.poisson(avg_degree, size=nrows)
    degrees = np.minimum(degrees, ncols)
    rows = np.repeat(np.arange(nrows, dtype=np.int64), degrees)
    cols = np.concatenate(
        [rng.choice(ncols, size=int(d), replace=False) for d in degrees]
        or [np.empty(0, dtype=np.int64)]
    ).astype(np.int64)
    vals = rng.uniform(0.1, 1.0, size=rows.shape[0]).astype(dtype)
    return CSRMatrix.from_coo(COOMatrix(nrows, ncols, rows, cols, vals))


def banded_csr(n: int, bandwidth: int = 1, *, dtype=np.float32) -> CSRMatrix:
    """A symmetric banded matrix: entry (i, j) is stored when
    ``0 < |i - j| <= bandwidth``.  Every interior row has exactly
    ``2 * bandwidth`` neighbours, which makes load-balance properties easy
    to reason about in tests."""
    if bandwidth < 0:
        raise ShapeError("bandwidth must be non-negative")
    rows, cols = [], []
    for offset in range(1, bandwidth + 1):
        idx = np.arange(n - offset, dtype=np.int64)
        rows.extend([idx, idx + offset])
        cols.extend([idx + offset, idx])
    if rows:
        rows_arr = np.concatenate(rows)
        cols_arr = np.concatenate(cols)
    else:
        rows_arr = np.empty(0, dtype=np.int64)
        cols_arr = np.empty(0, dtype=np.int64)
    vals = np.ones(rows_arr.shape[0], dtype=dtype)
    return CSRMatrix.from_coo(COOMatrix(n, n, rows_arr, cols_arr, vals))


def block_diagonal_csr(block_sizes: list[int], *, dtype=np.float32) -> CSRMatrix:
    """A block-diagonal matrix of dense all-ones blocks.

    The wildly different block sizes produce highly skewed row-degree
    distributions, which is the stress case for the nnz-balanced 1-D
    partitioner."""
    n = int(sum(block_sizes))
    rows, cols = [], []
    start = 0
    for size in block_sizes:
        if size < 0:
            raise ShapeError("block sizes must be non-negative")
        local = np.arange(start, start + size, dtype=np.int64)
        rr, cc = np.meshgrid(local, local, indexing="ij")
        rows.append(rr.ravel())
        cols.append(cc.ravel())
        start += size
    rows_arr = np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
    cols_arr = np.concatenate(cols) if cols else np.empty(0, dtype=np.int64)
    vals = np.ones(rows_arr.shape[0], dtype=dtype)
    return CSRMatrix.from_coo(COOMatrix(n, n, rows_arr, cols_arr, vals))
