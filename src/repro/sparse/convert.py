"""Conversions between sparse representations.

The package-internal formats are :class:`~repro.sparse.coo.COOMatrix` and
:class:`~repro.sparse.csr.CSRMatrix`.  This module provides a single
``as_csr`` entry point accepting whatever a caller has at hand — our own
formats, SciPy sparse matrices, NetworkX graphs, dense arrays, or edge
lists — so the high-level API (`repro.fusedmm`, the applications, the
experiments) can stay format-agnostic.
"""

from __future__ import annotations

from typing import Any, Tuple

import numpy as np

from ..errors import SparseFormatError
from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = ["as_csr", "as_coo", "from_networkx"]


def _looks_like_scipy(obj: Any) -> bool:
    return hasattr(obj, "tocsr") and hasattr(obj, "shape") and hasattr(obj, "nnz")


def _looks_like_networkx(obj: Any) -> bool:
    return hasattr(obj, "number_of_nodes") and hasattr(obj, "edges")


def from_networkx(graph, weight: str | None = None) -> CSRMatrix:
    """Convert a NetworkX graph to CSR using node order 0..n-1.

    Nodes must be integers in ``[0, n)``; relabel before calling otherwise.
    Undirected graphs produce a symmetric matrix.
    """
    n = graph.number_of_nodes()
    rows, cols, vals = [], [], []
    for u, v, attrs in graph.edges(data=True):
        w = float(attrs.get(weight, 1.0)) if weight else 1.0
        rows.append(u)
        cols.append(v)
        vals.append(w)
        if not graph.is_directed():
            rows.append(v)
            cols.append(u)
            vals.append(w)
    coo = COOMatrix(
        n,
        n,
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals, dtype=np.float32),
    )
    return CSRMatrix.from_coo(coo.deduplicate(op="max"))


def as_coo(obj: Any, shape: Tuple[int, int] | None = None) -> COOMatrix:
    """Coerce ``obj`` into a :class:`COOMatrix`."""
    if isinstance(obj, COOMatrix):
        return obj
    return as_csr(obj, shape=shape).to_coo()


def as_csr(obj: Any, shape: Tuple[int, int] | None = None) -> CSRMatrix:
    """Coerce ``obj`` into a :class:`CSRMatrix`.

    Accepted inputs
    ---------------
    * :class:`CSRMatrix` (returned as-is)
    * :class:`COOMatrix`
    * SciPy sparse matrices (anything with ``tocsr``)
    * NetworkX graphs with integer node labels ``0..n-1``
    * dense 2-D ``numpy.ndarray``
    * an iterable of ``(u, v)`` edge pairs together with ``shape``
    """
    if isinstance(obj, CSRMatrix):
        return obj
    if isinstance(obj, COOMatrix):
        return CSRMatrix.from_coo(obj)
    if _looks_like_scipy(obj):
        return CSRMatrix.from_scipy(obj)
    if _looks_like_networkx(obj):
        return from_networkx(obj)
    if isinstance(obj, np.ndarray):
        return CSRMatrix.from_dense(obj)
    if isinstance(obj, (list, tuple)) or hasattr(obj, "__iter__"):
        if shape is None:
            raise SparseFormatError(
                "converting an edge list to CSR requires an explicit shape=(nrows, ncols)"
            )
        return CSRMatrix.from_edges(obj, nrows=shape[0], ncols=shape[1])
    raise SparseFormatError(f"cannot convert object of type {type(obj)!r} to CSR")
