"""Compressed Sparse Row (CSR) matrix.

CSR is the storage format every kernel in this package operates on, exactly
as in the paper: the adjacency matrix ``A`` is stored with a row-pointer
array (``indptr``), a column-index array (``indices``) and a value array
(``data``).  The FusedMM memory model of Section IV.C (12 bytes per nonzero
with 8-byte indices and 4-byte single-precision values) corresponds to this
layout.

The class provides exactly what the kernels and baselines need:

* structural validation and canonicalisation (sorted column indices within
  each row, duplicates summed),
* row slicing (for 1-D partitioning and minibatching),
* degree statistics (for the arithmetic-intensity model of Eq. 4),
* multiplication helpers used by the baselines,
* conversions to/from COO, dense and SciPy.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from ..errors import ShapeError, SparseFormatError

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """A sparse matrix in compressed sparse row format.

    Parameters
    ----------
    nrows, ncols:
        Matrix dimensions.
    indptr:
        ``int64`` array of length ``nrows + 1``; ``indptr[i]:indptr[i+1]``
        is the slice of ``indices``/``data`` holding row ``i``.
    indices:
        ``int64`` array of column indices.
    data:
        Value array; defaults to all-ones ``float32`` when omitted
        (unweighted graph).
    check:
        When true (default) the structure is validated; pass ``False`` only
        from internal constructors that guarantee validity.
    """

    # ``__weakref__`` lets the runtime's plan cache memoise per-matrix
    # fingerprints without keeping matrices alive.
    __slots__ = ("nrows", "ncols", "indptr", "indices", "data", "__weakref__")

    def __init__(
        self,
        nrows: int,
        ncols: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray | None = None,
        *,
        check: bool = True,
    ) -> None:
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        if data is None:
            self.data = np.ones(self.indices.shape[0], dtype=np.float32)
        else:
            data = np.ascontiguousarray(data)
            if not np.issubdtype(data.dtype, np.floating):
                data = data.astype(np.float32)
            self.data = data
        if check:
            self._validate()

    # ------------------------------------------------------------------ #
    # Validation and canonical form
    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        if self.nrows < 0 or self.ncols < 0:
            raise ShapeError("matrix dimensions must be non-negative")
        if self.indptr.ndim != 1 or self.indptr.shape[0] != self.nrows + 1:
            raise SparseFormatError(
                f"indptr must have length nrows+1={self.nrows + 1}, got {self.indptr.shape}"
            )
        if self.indptr[0] != 0:
            raise SparseFormatError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape[0] != nnz or self.data.shape[0] != nnz:
            raise SparseFormatError(
                "indices/data length must equal indptr[-1]="
                f"{nnz}, got {self.indices.shape[0]}/{self.data.shape[0]}"
            )
        if nnz and (self.indices.min() < 0 or self.indices.max() >= self.ncols):
            raise SparseFormatError("column index out of range")

    def has_sorted_indices(self) -> bool:
        """True when column indices are strictly increasing within each row."""
        for u in range(self.nrows):
            row = self.indices[self.indptr[u] : self.indptr[u + 1]]
            if row.size > 1 and np.any(np.diff(row) <= 0):
                return False
        return True

    def sort_indices(self) -> "CSRMatrix":
        """Return an equivalent matrix with sorted, de-duplicated columns in
        every row (duplicates summed)."""
        return CSRMatrix.from_coo(self.to_coo().deduplicate(op="sum"))

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int]:
        """``(nrows, ncols)``."""
        return (self.nrows, self.ncols)

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indptr[-1])

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the stored values."""
        return self.data.dtype

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, dtype={self.data.dtype})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.allclose(self.data, other.data)
        )

    __hash__ = None  # type: ignore[assignment]

    # ------------------------------------------------------------------ #
    # Degree statistics (used by the performance model)
    # ------------------------------------------------------------------ #
    def row_degrees(self) -> np.ndarray:
        """Number of stored entries per row."""
        return np.diff(self.indptr)

    def avg_degree(self) -> float:
        """Average number of nonzeros per row (δ in Eq. 4)."""
        return float(self.nnz) / max(self.nrows, 1)

    def max_degree(self) -> int:
        """Maximum number of nonzeros in any row."""
        if self.nrows == 0:
            return 0
        return int(self.row_degrees().max())

    def memory_bytes(self, index_bytes: int = 8, value_bytes: int = 4) -> int:
        """Bytes needed to store the matrix with the paper's accounting
        (Section IV.C): ``12 * nnz`` for 8-byte indices + 4-byte values,
        plus the row pointer array."""
        return (
            (index_bytes + value_bytes) * self.nnz
            + index_bytes * (self.nrows + 1)
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(cls, coo) -> "CSRMatrix":
        """Build from a :class:`repro.sparse.coo.COOMatrix`; duplicate
        coordinates are summed and columns are sorted within rows."""
        from .coo import COOMatrix  # local import to avoid cycle

        if not isinstance(coo, COOMatrix):
            raise TypeError("from_coo expects a COOMatrix")
        dedup = coo.deduplicate(op="sum")
        order = np.lexsort((dedup.cols, dedup.rows))
        rows = dedup.rows[order]
        cols = dedup.cols[order]
        vals = dedup.vals[order]
        indptr = np.zeros(coo.nrows + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(coo.nrows, coo.ncols, indptr, cols, vals, check=False)

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "CSRMatrix":
        """Build from a dense array keeping entries with ``|x| > tol``."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ShapeError("from_dense expects a 2-D array")
        rows, cols = np.nonzero(np.abs(dense) > tol)
        vals = dense[rows, cols].astype(np.float32)
        from .coo import COOMatrix

        return cls.from_coo(COOMatrix(dense.shape[0], dense.shape[1], rows, cols, vals))

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        nrows: int,
        ncols: int | None = None,
        values: Sequence[float] | None = None,
    ) -> "CSRMatrix":
        """Build directly from an edge list."""
        from .coo import COOMatrix

        return cls.from_coo(COOMatrix.from_edges(edges, nrows, ncols, values))

    @classmethod
    def identity(cls, n: int, dtype=np.float32) -> "CSRMatrix":
        """The n×n identity matrix."""
        indptr = np.arange(n + 1, dtype=np.int64)
        indices = np.arange(n, dtype=np.int64)
        data = np.ones(n, dtype=dtype)
        return cls(n, n, indptr, indices, data, check=False)

    @classmethod
    def empty(cls, nrows: int, ncols: int, dtype=np.float32) -> "CSRMatrix":
        """An all-zero matrix."""
        return cls(
            nrows,
            ncols,
            np.zeros(nrows + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=dtype),
            check=False,
        )

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_coo(self):
        """Convert to :class:`repro.sparse.coo.COOMatrix`."""
        from .coo import COOMatrix

        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_degrees())
        return COOMatrix(self.nrows, self.ncols, rows, self.indices.copy(), self.data.copy())

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense ndarray (testing only)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64), self.row_degrees())
        dense[rows, self.indices] = self.data.astype(np.float64)
        return dense

    def to_scipy(self):
        """Convert to ``scipy.sparse.csr_matrix`` (requires SciPy)."""
        from scipy import sparse as sp

        return sp.csr_matrix(
            (self.data.copy(), self.indices.copy(), self.indptr.copy()), shape=self.shape
        )

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        """Build from any SciPy sparse matrix."""
        csr = mat.tocsr()
        csr.sum_duplicates()
        csr.sort_indices()
        return cls(
            csr.shape[0],
            csr.shape[1],
            csr.indptr.astype(np.int64),
            csr.indices.astype(np.int64),
            csr.data.astype(np.float32),
            check=False,
        )

    def copy(self) -> "CSRMatrix":
        """Deep copy."""
        return CSRMatrix(
            self.nrows,
            self.ncols,
            self.indptr.copy(),
            self.indices.copy(),
            self.data.copy(),
            check=False,
        )

    def astype(self, dtype) -> "CSRMatrix":
        """Return a copy with values cast to ``dtype``."""
        out = self.copy()
        out.data = out.data.astype(dtype)
        return out

    # ------------------------------------------------------------------ #
    # Row access and slicing
    # ------------------------------------------------------------------ #
    def row(self, u: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(column indices, values)`` of row ``u`` as views."""
        if not 0 <= u < self.nrows:
            raise IndexError(f"row index {u} out of range for {self.nrows} rows")
        lo, hi = self.indptr[u], self.indptr[u + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def row_slice(self, start: int, stop: int) -> "CSRMatrix":
        """Return the submatrix of rows ``start:stop`` (all columns kept).

        This is the operation behind 1-D partitioning (Fig. 4) and
        minibatching: a contiguous block of rows of ``A`` together with the
        full ``Y`` is what one FusedMM thread/minibatch processes.
        """
        if not (0 <= start <= stop <= self.nrows):
            raise IndexError(f"invalid row slice [{start}, {stop}) for {self.nrows} rows")
        lo, hi = self.indptr[start], self.indptr[stop]
        indptr = (self.indptr[start : stop + 1] - lo).astype(np.int64)
        return CSRMatrix(
            stop - start,
            self.ncols,
            indptr,
            self.indices[lo:hi].copy(),
            self.data[lo:hi].copy(),
            check=False,
        )

    def select_rows(self, rows: Sequence[int]) -> "CSRMatrix":
        """Return the submatrix containing the given rows, in the given
        order (used for minibatch sampling)."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.nrows):
            raise IndexError("row index out of range in select_rows")
        degs = self.row_degrees()[rows]
        indptr = np.zeros(rows.shape[0] + 1, dtype=np.int64)
        np.cumsum(degs, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        data = np.empty(int(indptr[-1]), dtype=self.data.dtype)
        for i, u in enumerate(rows):
            lo, hi = self.indptr[u], self.indptr[u + 1]
            indices[indptr[i] : indptr[i + 1]] = self.indices[lo:hi]
            data[indptr[i] : indptr[i + 1]] = self.data[lo:hi]
        return CSRMatrix(rows.shape[0], self.ncols, indptr, indices, data, check=False)

    # ------------------------------------------------------------------ #
    # Reference multiplications (used by baselines and tests)
    # ------------------------------------------------------------------ #
    def spmm(self, dense: np.ndarray) -> np.ndarray:
        """Reference sparse × dense product ``self @ dense`` computed row
        by row.  The optimized SpMM lives in :mod:`repro.core.specialized`;
        this method exists as an always-correct reference."""
        dense = np.asarray(dense)
        if dense.ndim != 2 or dense.shape[0] != self.ncols:
            raise ShapeError(
                f"dense operand must have shape ({self.ncols}, d), got {dense.shape}"
            )
        out = np.zeros((self.nrows, dense.shape[1]), dtype=np.result_type(self.data, dense))
        for u in range(self.nrows):
            cols, vals = self.row(u)
            if cols.size:
                out[u] = vals @ dense[cols]
        return out

    def transpose(self) -> "CSRMatrix":
        """Return the transposed matrix in CSR form."""
        return CSRMatrix.from_coo(self.to_coo().transpose())

    def scale_rows(self, scale: np.ndarray) -> "CSRMatrix":
        """Return a copy with row ``u`` multiplied by ``scale[u]`` (used for
        normalised adjacency in GCN)."""
        scale = np.asarray(scale, dtype=self.data.dtype)
        if scale.shape != (self.nrows,):
            raise ShapeError(f"scale must have shape ({self.nrows},), got {scale.shape}")
        out = self.copy()
        out.data = out.data * np.repeat(scale, self.row_degrees())
        return out

    def scale_cols(self, scale: np.ndarray) -> "CSRMatrix":
        """Return a copy with column ``v`` multiplied by ``scale[v]``."""
        scale = np.asarray(scale, dtype=self.data.dtype)
        if scale.shape != (self.ncols,):
            raise ShapeError(f"scale must have shape ({self.ncols},), got {scale.shape}")
        out = self.copy()
        out.data = out.data * scale[out.indices]
        return out
