"""Delta-CSR overlay: mutable graphs over an immutable CSR base.

Every cache tier of the runtime — plan cache, reorder memo, cache-blocked
panels, worker shared memory, remote host LRUs — keys on an immutable
matrix fingerprint.  :class:`DeltaCSR` is what makes *mutation* compatible
with that design: an immutable base :class:`~repro.sparse.csr.CSRMatrix`
plus a per-row override log.  Applying an edge batch produces a **new
snapshot** (readers holding the old one are never torn), identified by a
**versioned fingerprint** ``<lineage>@v<N>`` where ``lineage`` is the
content hash of the original base and ``N`` increments once per applied
batch.  Compaction folds the overrides into a fresh base; the edge set is
unchanged, so the versioned fingerprint — and every cache entry keyed on
it — survives.

Bitwise contract
----------------
The canonical CSR form (columns sorted within rows, one entry per
``(u, v)`` pair) is *unique* for a given edge set.  Overrides are kept in
exactly that form, so :meth:`DeltaCSR.materialize` — which splices the
override rows into the base arrays — produces byte-for-byte the same
``indptr``/``indices``/``data`` as :meth:`CSRMatrix.from_coo` on the full
edge list.  Kernels therefore cannot distinguish an overlay snapshot from
a freshly rebuilt matrix: the existing bitwise-determinism contract
(thread counts, shard counts, local vs remote) extends to dynamic graphs
for free, and the tests assert it at every compaction point.

Edge-batch semantics
--------------------
A batch carries ``delete`` pairs ``(u, v)`` and ``insert`` triples
``(u, v, w)`` (``w`` defaults to 1).  Deletes are applied first, then
inserts **upsert** (an existing edge's weight is replaced, a missing edge
is created) — so an edge both deleted and inserted in one batch ends up
present with the inserted weight.  Duplicate inserts of the same edge
within one batch resolve to the last occurrence.  Deleting a missing edge
is a no-op (counted, not an error).

:func:`splice_rows` is the shared low-level primitive: the remote worker
agent uses the same function to reconstruct a new matrix version from a
``LOAD_DELTA`` frame (base key + dirty rows), so controller and agent can
never disagree on the spliced bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..errors import ShapeError
from .csr import CSRMatrix

__all__ = [
    "CompactionPolicy",
    "DeltaCSR",
    "EdgeBatchResult",
    "splice_rows",
]


# ---------------------------------------------------------------------- #
# Splice: the one primitive both the overlay and the remote agent use
# ---------------------------------------------------------------------- #
def splice_rows(
    base: CSRMatrix,
    rows: np.ndarray,
    counts: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
) -> CSRMatrix:
    """Replace ``rows`` of ``base`` with new contents; all other rows are
    copied verbatim.

    ``rows`` must be sorted and unique; ``counts[i]`` is the new length of
    ``rows[i]``; ``indices``/``data`` hold the new rows' (sorted-column)
    contents concatenated in row order.  The result is a fresh canonical
    CSR — bitwise identical to rebuilding the same edge set from scratch.
    Copies run per contiguous clean *gap*, not per row, so a small delta
    costs a handful of ``memcpy``-s regardless of graph size.
    """
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    counts = np.ascontiguousarray(counts, dtype=np.int64)
    if rows.shape != counts.shape:
        raise ShapeError("rows and counts must have the same length")
    if rows.size and (rows[0] < 0 or rows[-1] >= base.nrows):
        raise ShapeError("dirty row index out of range")
    lengths = np.diff(base.indptr)
    new_lengths = lengths.copy()
    new_lengths[rows] = counts
    indptr = np.zeros(base.nrows + 1, dtype=np.int64)
    np.cumsum(new_lengths, out=indptr[1:])
    nnz = int(indptr[-1])
    out_indices = np.empty(nnz, dtype=np.int64)
    out_data = np.empty(nnz, dtype=base.data.dtype)
    prev = 0  # first base row of the pending clean gap
    dpos = 0  # cursor into the concatenated dirty arrays
    for i in range(rows.size):
        r = int(rows[i])
        if prev < r:  # clean gap [prev, r): one bulk copy
            b_lo, b_hi = int(base.indptr[prev]), int(base.indptr[r])
            n_lo = int(indptr[prev])
            out_indices[n_lo : n_lo + (b_hi - b_lo)] = base.indices[b_lo:b_hi]
            out_data[n_lo : n_lo + (b_hi - b_lo)] = base.data[b_lo:b_hi]
        c = int(counts[i])
        n_lo = int(indptr[r])
        out_indices[n_lo : n_lo + c] = indices[dpos : dpos + c]
        out_data[n_lo : n_lo + c] = data[dpos : dpos + c]
        dpos += c
        prev = r + 1
    if prev < base.nrows:  # tail gap
        b_lo, b_hi = int(base.indptr[prev]), int(base.indptr[base.nrows])
        n_lo = int(indptr[prev])
        out_indices[n_lo : n_lo + (b_hi - b_lo)] = base.indices[b_lo:b_hi]
        out_data[n_lo : n_lo + (b_hi - b_lo)] = base.data[b_lo:b_hi]
    return CSRMatrix(base.nrows, base.ncols, indptr, out_indices, out_data, check=False)


# ---------------------------------------------------------------------- #
# Compaction policy
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CompactionPolicy:
    """When an overlay folds its override log into a fresh base.

    ``max_delta_ratio``
        Compact once the overridden rows hold more than this fraction of
        the base's nonzeros (overlay bookkeeping stops being "small").
    ``max_log``
        Compact after this many applied edge operations regardless of the
        nnz ratio (bounds per-row merge work for hot rows).
    """

    max_delta_ratio: float = 0.25
    max_log: int = 50_000

    def __post_init__(self) -> None:
        if self.max_delta_ratio <= 0 or self.max_log < 1:
            raise ShapeError(
                "max_delta_ratio must be > 0 and max_log >= 1, got "
                f"{self.max_delta_ratio}/{self.max_log}"
            )


@dataclass(frozen=True)
class EdgeBatchResult:
    """What one applied batch did (returned next to the new snapshot)."""

    inserted: int  # edges created
    updated: int  # existing edges whose weight was replaced
    deleted: int  # edges removed
    ignored_deletes: int  # delete ops for edges that did not exist
    touched_rows: np.ndarray  # sorted unique row ids the batch modified


# ---------------------------------------------------------------------- #
# The overlay
# ---------------------------------------------------------------------- #
class DeltaCSR:
    """One immutable snapshot of a mutable graph.

    Holds the base CSR, a ``{row: (cols, vals)}`` override map (each
    override already in canonical sorted-column form) and the version
    lineage.  :meth:`apply` returns a *new* snapshot sharing the base and
    all untouched overrides — the receiver of an old snapshot keeps a
    consistent view forever.
    """

    __slots__ = (
        "base",
        "lineage",
        "version",
        "policy",
        "compactions",
        "log_ops",
        "_rows",
        "_nnz",
    )

    def __init__(
        self,
        base: CSRMatrix,
        lineage: str,
        *,
        version: int = 0,
        policy: Optional[CompactionPolicy] = None,
        _rows: Optional[Dict[int, Tuple[np.ndarray, np.ndarray]]] = None,
        _log_ops: int = 0,
        _compactions: int = 0,
    ) -> None:
        self.base = base
        self.lineage = str(lineage)
        self.version = int(version)
        self.policy = policy or CompactionPolicy()
        self._rows = dict(_rows) if _rows else {}
        self.log_ops = int(_log_ops)
        self.compactions = int(_compactions)
        delta = 0
        for r, (cols, _vals) in self._rows.items():
            delta += cols.shape[0] - (int(base.indptr[r + 1]) - int(base.indptr[r]))
        self._nnz = base.nnz + delta

    # ------------------------------------------------------------------ #
    # Shape / identity
    # ------------------------------------------------------------------ #
    @property
    def nrows(self) -> int:
        return self.base.nrows

    @property
    def ncols(self) -> int:
        return self.base.ncols

    @property
    def shape(self) -> Tuple[int, int]:
        return self.base.shape

    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def fingerprint(self) -> str:
        """The versioned fingerprint ``<lineage>@v<N>`` every cache tier
        keys on.  Compaction keeps it (the edge set is unchanged)."""
        return f"{self.lineage}@v{self.version}"

    @property
    def delta_rows(self) -> int:
        """Number of rows currently overridden."""
        return len(self._rows)

    @property
    def delta_nnz(self) -> int:
        """Nonzeros held by override rows (the overlay's working set)."""
        return sum(cols.shape[0] for cols, _ in self._rows.values())

    def dirty_rows(self) -> np.ndarray:
        """Sorted row ids that differ from the base (may be empty)."""
        return np.array(sorted(self._rows), dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Row queries (no materialisation)
    # ------------------------------------------------------------------ #
    def row(self, u: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(cols, vals)`` of row ``u`` at this version."""
        if not 0 <= u < self.nrows:
            raise IndexError(f"row index {u} out of range for {self.nrows} rows")
        entry = self._rows.get(int(u))
        if entry is not None:
            return entry
        return self.base.row(u)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def apply(
        self,
        insert: Optional[Iterable[Sequence[float]]] = None,
        delete: Optional[Iterable[Sequence[int]]] = None,
    ) -> Tuple["DeltaCSR", EdgeBatchResult]:
        """Apply one edge batch; returns ``(new snapshot, batch result)``.

        Deletes first, then upsert inserts (see module docstring).  The
        new snapshot's version is ``self.version + 1``; ``self`` is left
        untouched.
        """
        ins = _as_edge_array(insert, with_weight=True, dtype=self.base.data.dtype)
        dels = _as_edge_array(delete, with_weight=False)
        _check_bounds(ins, dels, self.nrows, self.ncols)

        touched = np.unique(np.concatenate([ins[0], dels[0]]))
        rows = dict(self._rows)
        inserted = updated = deleted = ignored = 0
        # Group both op streams by row once (stable, so within-row insert
        # order — and therefore last-wins — survives), then slice each
        # row's segment out by binary search.  Keeps the per-row work
        # proportional to that row's ops instead of the whole batch.
        d_order = np.argsort(dels[0], kind="stable")
        d_rows, d_cols = dels[0][d_order], dels[1][d_order]
        i_order = np.argsort(ins[0], kind="stable")
        i_rows, i_cols, i_vals = ins[0][i_order], ins[1][i_order], ins[2][i_order]
        d_lo = np.searchsorted(d_rows, touched, side="left")
        d_hi = np.searchsorted(d_rows, touched, side="right")
        i_lo = np.searchsorted(i_rows, touched, side="left")
        i_hi = np.searchsorted(i_rows, touched, side="right")
        for k, r in enumerate(touched.tolist()):
            entry = rows.get(r)
            if entry is None:
                entry = self.base.row(r)
            cols, vals = entry
            del_cols = d_cols[d_lo[k] : d_hi[k]]
            ins_cols = i_cols[i_lo[k] : i_hi[k]]
            ins_vals = i_vals[i_lo[k] : i_hi[k]]
            if ins_cols.size:
                # Last occurrence wins within the batch: reverse, keep the
                # first of each column, restore ascending order.
                rev_cols = ins_cols[::-1]
                rev_vals = ins_vals[::-1]
                _, first = np.unique(rev_cols, return_index=True)
                ins_cols = rev_cols[first]
                ins_vals = rev_vals[first]
            hit_del = np.isin(del_cols, cols)
            deleted_now = int(np.unique(del_cols[hit_del]).size)
            ignored += int(np.unique(del_cols).size) - deleted_now
            deleted += deleted_now
            keep = ~np.isin(cols, del_cols)
            kept_cols = cols[keep]
            kept_vals = vals[keep]
            if ins_cols.size:
                exists = np.isin(ins_cols, kept_cols)
                updated += int(np.count_nonzero(exists))
                inserted += int(ins_cols.size - np.count_nonzero(exists))
                survive = ~np.isin(kept_cols, ins_cols)
                merged_cols = np.concatenate([kept_cols[survive], ins_cols])
                merged_vals = np.concatenate(
                    [kept_vals[survive], ins_vals.astype(kept_vals.dtype, copy=False)]
                )
                order = np.argsort(merged_cols, kind="stable")
                new_cols = np.ascontiguousarray(merged_cols[order])
                new_vals = np.ascontiguousarray(merged_vals[order])
            else:
                new_cols = np.ascontiguousarray(kept_cols)
                new_vals = np.ascontiguousarray(kept_vals)
            rows[r] = (new_cols, new_vals)
        result = EdgeBatchResult(
            inserted=inserted,
            updated=updated,
            deleted=deleted,
            ignored_deletes=ignored,
            touched_rows=touched,
        )
        snapshot = DeltaCSR(
            self.base,
            self.lineage,
            version=self.version + 1,
            policy=self.policy,
            _rows=rows,
            _log_ops=self.log_ops + int(ins[0].size + dels[0].size),
            _compactions=self.compactions,
        )
        return snapshot, result

    # ------------------------------------------------------------------ #
    # Materialisation and compaction
    # ------------------------------------------------------------------ #
    def materialize(self) -> CSRMatrix:
        """This version as a fresh canonical CSR (bitwise identical to a
        full :meth:`CSRMatrix.from_coo` rebuild of the same edge set)."""
        if not self._rows:
            return self.base
        rows = self.dirty_rows()
        counts = np.array(
            [self._rows[int(r)][0].shape[0] for r in rows], dtype=np.int64
        )
        total = int(counts.sum())
        indices = np.empty(total, dtype=np.int64)
        data = np.empty(total, dtype=self.base.data.dtype)
        pos = 0
        for r in rows.tolist():
            cols, vals = self._rows[r]
            indices[pos : pos + cols.shape[0]] = cols
            data[pos : pos + vals.shape[0]] = vals
            pos += cols.shape[0]
        return splice_rows(self.base, rows, counts, indices, data)

    def delta_payload(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(rows, counts, indices, data)`` describing this version as a
        splice over :attr:`base` — the LOAD_DELTA wire payload."""
        rows = self.dirty_rows()
        counts = np.array(
            [self._rows[int(r)][0].shape[0] for r in rows], dtype=np.int64
        )
        total = int(counts.sum())
        indices = np.empty(total, dtype=np.int64)
        data = np.empty(total, dtype=self.base.data.dtype)
        pos = 0
        for r in rows.tolist():
            cols, vals = self._rows[r]
            indices[pos : pos + cols.shape[0]] = cols
            data[pos : pos + vals.shape[0]] = vals
            pos += cols.shape[0]
        return rows, counts, indices, data

    def should_compact(self) -> bool:
        """Whether the policy says this snapshot's log is due for folding."""
        if self.log_ops >= self.policy.max_log:
            return True
        base_nnz = max(self.base.nnz, 1)
        return self.delta_nnz / base_nnz > self.policy.max_delta_ratio

    def compacted(self) -> "DeltaCSR":
        """Fold the overrides into a fresh base.

        The edge set — and therefore the versioned fingerprint — is
        unchanged: caches keyed on :attr:`fingerprint` stay valid across
        the representation change.
        """
        return DeltaCSR(
            self.materialize(),
            self.lineage,
            version=self.version,
            policy=self.policy,
            _rows=None,
            _log_ops=0,
            _compactions=self.compactions + 1,
        )

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def memory(self) -> Dict[str, int]:
        """Byte accounting for ``/statz`` (paper Section IV.C convention:
        8-byte indices, value bytes from the dtype)."""
        value_bytes = int(self.base.data.dtype.itemsize)
        delta_bytes = sum(
            8 * cols.shape[0] + value_bytes * vals.shape[0]
            for cols, vals in self._rows.values()
        )
        return {
            "base_bytes": self.base.memory_bytes(value_bytes=value_bytes),
            "delta_bytes": delta_bytes,
            "delta_rows": len(self._rows),
            "delta_nnz": self.delta_nnz,
            "log_ops": self.log_ops,
            "compactions": self.compactions,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaCSR({self.fingerprint}, shape={self.shape}, nnz={self.nnz}, "
            f"dirty_rows={self.delta_rows})"
        )


# ---------------------------------------------------------------------- #
# Input normalisation
# ---------------------------------------------------------------------- #
def _as_edge_array(
    edges, *, with_weight: bool, dtype=np.float32
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(rows, cols, weights)`` int64/int64/value-dtype arrays.

    Accepts ``None``, an ``(n, 2)``/``(n, 3)`` array, or an iterable of
    tuples; insert tuples may omit the weight (defaults to 1).
    """
    if edges is None:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=dtype),
        )
    if isinstance(edges, np.ndarray):
        arr = np.asarray(edges, dtype=np.float64)
        if arr.size == 0:
            return _as_edge_array(None, with_weight=with_weight, dtype=dtype)
        if arr.ndim != 2 or arr.shape[1] not in (2, 3):
            raise ShapeError(
                f"edge array must have shape (n, 2) or (n, 3), got {arr.shape}"
            )
        rows = arr[:, 0].astype(np.int64)
        cols = arr[:, 1].astype(np.int64)
        if not np.array_equal(arr[:, 0], rows) or not np.array_equal(
            arr[:, 1], cols
        ):
            raise ShapeError("edge endpoints must be integers")
        if with_weight and arr.shape[1] == 3:
            weights = arr[:, 2].astype(dtype)
        else:
            weights = np.ones(rows.shape[0], dtype=dtype)
        return rows, cols, weights
    rows_list = []
    cols_list = []
    weight_list = []
    for edge in edges:
        edge = tuple(edge)
        if len(edge) not in (2, 3) or (len(edge) == 3 and not with_weight):
            raise ShapeError(f"bad edge tuple {edge!r}")
        rows_list.append(int(edge[0]))
        cols_list.append(int(edge[1]))
        weight_list.append(float(edge[2]) if len(edge) == 3 else 1.0)
    return (
        np.array(rows_list, dtype=np.int64),
        np.array(cols_list, dtype=np.int64),
        np.array(weight_list, dtype=dtype),
    )


def _check_bounds(ins, dels, nrows: int, ncols: int) -> None:
    for rows, cols, *_ in (ins, dels):
        if rows.size == 0:
            continue
        if rows.min() < 0 or rows.max() >= nrows:
            raise ShapeError(f"edge row index out of range for {nrows} rows")
        if cols.min() < 0 or cols.max() >= ncols:
            raise ShapeError(f"edge column index out of range for {ncols} columns")
