"""Vertex reordering and cache-blocked CSR row panels (the locality tier).

FusedMM is memory-bound: the kernels stream the edges of ``A`` and gather
one dense feature row ``Y[v]`` per nonzero, so throughput is governed by
how often those gathers hit cache.  The paper attacks the problem with
register blocking inside a row (Section IV.A); this module attacks it
*across* rows by renumbering the vertices so that edges processed together
point at feature rows stored together:

* **Reverse Cuthill–McKee** (``"rcm"``) — the classic bandwidth-reducing
  BFS ordering.  Neighbours end up numbered close to each other, so the
  destination gathers of consecutive edge blocks touch a narrow window of
  ``Y``.
* **Degree sort** (``"degree"``) — vertices in decreasing degree order.
  On power-law graphs most edges point at the few hubs; packing the hubs
  into the first rows of ``Y`` turns the dominant gathers into hits on a
  cache-resident prefix.
* **Hub clustering** (``"hub"``) — each hub is placed next to its
  neighbourhood (hubs in decreasing degree order, their not-yet-placed
  neighbours immediately after), so a hub row's gather window is one
  contiguous span instead of a scatter across the whole matrix.

A reordering is a *symmetric* permutation ``A_p[i, j] = A[perm[i],
perm[j]]`` — rows and columns move together, which is what lets callers
permute ``X``/``Y`` once per call and map the permuted output back with
``inv_perm``.  Reordering therefore only applies to square matrices.

Reordered execution changes the order in which a row's neighbours are
accumulated (columns are re-sorted under the new numbering), so results
are *allclose*-equivalent to the natural ordering — exactly equal at
float64 up to reassociation — rather than bitwise identical.  The
``"none"`` strategy keeps the original matrix untouched and preserves the
repo's bitwise-identity guarantees.

:func:`cache_block_partitions` is the second half of the tier: it tiles a
(permuted) CSR matrix into contiguous row panels whose *working set* — the
panel's output rows plus the distinct ``Y`` rows its edges gather — fits a
last-level-cache budget, so each panel's dense operand slice is loaded
once and reused for every edge of the panel.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import BackendError, ShapeError
from .csr import CSRMatrix

__all__ = [
    "REORDER_STRATEGIES",
    "REORDER_CHOICES",
    "ReorderResult",
    "PanelBlock",
    "validate_reorder",
    "reorder_permutation",
    "permute_symmetric",
    "reorder_matrix",
    "reorder_memo_info",
    "reorder_memo_bytes",
    "clear_reorder_memo",
    "drop_reorder_memo",
    "average_bandwidth",
    "cache_block_partitions",
    "build_panels",
    "DEFAULT_PANEL_BUDGET_BYTES",
]

#: Concrete reordering strategies (``"none"`` keeps the natural order).
REORDER_STRATEGIES: Tuple[str, ...] = ("none", "degree", "rcm", "hub")

#: Everything a ``reorder=`` knob accepts: the concrete strategies plus
#: ``"auto"`` (measured selection by the plan builder / autotuner).
REORDER_CHOICES: Tuple[str, ...] = REORDER_STRATEGIES + ("auto",)

#: Default cache budget for one row panel's working set.  Sized at half a
#: typical 2 MB private L2: the panel keeps its output rows, its compacted
#: dense-operand rows and one edge block's intermediates simultaneously
#: hot, with headroom for the kernel's temporaries.  Measured on the repo's
#: power-law benchmark (d=128 sigmoid_embedding) this is the sweet spot —
#: LLC-sized panels are too coarse to change the gather behaviour.
DEFAULT_PANEL_BUDGET_BYTES: int = 1024 * 1024


def validate_reorder(strategy: str) -> str:
    """Validate a ``reorder=`` knob value and return it.

    The one shared gate for every surface that accepts the knob (runtime,
    plans, the four app configs), so the accepted set and the error shape
    cannot drift between layers.
    """
    if strategy not in REORDER_CHOICES:
        raise BackendError(
            f"unknown reorder strategy {strategy!r}; "
            f"expected one of {REORDER_CHOICES}"
        )
    return strategy


@dataclass(frozen=True)
class ReorderResult:
    """A vertex reordering of one square CSR matrix.

    Attributes
    ----------
    strategy:
        The strategy that produced the permutation.
    matrix:
        The symmetrically permuted matrix ``A_p`` with
        ``A_p[i, j] = A[perm[i], perm[j]]`` (canonical CSR: columns sorted
        within each row under the new numbering).
    perm:
        ``perm[new] = old`` — row ``new`` of ``matrix`` is row
        ``perm[new]`` of the original.  Permute operands with
        ``X_p = X[perm]``.
    inv_perm:
        ``inv_perm[old] = new`` — map permuted outputs back with
        ``Z = Z_p[inv_perm]``.
    """

    strategy: str
    matrix: CSRMatrix
    perm: np.ndarray
    inv_perm: np.ndarray


# ---------------------------------------------------------------------- #
# Permutation strategies
# ---------------------------------------------------------------------- #
def _degree_permutation(A: CSRMatrix) -> np.ndarray:
    """Vertices in decreasing degree order (stable, so ties keep their
    natural relative order)."""
    return np.argsort(-A.row_degrees(), kind="stable").astype(np.int64)


def _rcm_permutation(A: CSRMatrix) -> np.ndarray:
    """Reverse Cuthill–McKee: BFS from a minimum-degree seed per connected
    component, neighbours visited in increasing degree order, final order
    reversed.

    The structure is taken as given (out-neighbours); for the symmetric
    adjacencies every generator in :mod:`repro.graphs` produces this is
    the textbook algorithm.
    """
    n = A.nrows
    degrees = A.row_degrees()
    indptr, indices = A.indptr, A.indices
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    # Seeds in increasing degree order: each unvisited seed starts its
    # component's BFS from a peripheral (low-degree) vertex.
    for seed in np.argsort(degrees, kind="stable"):
        if visited[seed]:
            continue
        visited[seed] = True
        queue = deque((int(seed),))
        while queue:
            u = queue.popleft()
            order[pos] = u
            pos += 1
            nbrs = indices[indptr[u] : indptr[u + 1]]
            nbrs = nbrs[~visited[nbrs]]
            if nbrs.size:
                nbrs = nbrs[np.argsort(degrees[nbrs], kind="stable")]
                visited[nbrs] = True
                queue.extend(int(v) for v in nbrs)
    return order[::-1].copy()


def _hub_permutation(A: CSRMatrix, hub_factor: float = 4.0) -> np.ndarray:
    """Hub clustering: hubs (degree ≥ ``hub_factor`` × average) in
    decreasing degree order, each immediately followed by its not-yet-
    placed neighbours; non-hub leftovers keep their natural order."""
    n = A.nrows
    degrees = A.row_degrees()
    if n == 0:
        return np.empty(0, dtype=np.int64)
    threshold = max(float(degrees.mean()) * hub_factor, 2.0)
    hubs = np.flatnonzero(degrees >= threshold)
    hubs = hubs[np.argsort(-degrees[hubs], kind="stable")]
    placed = np.zeros(n, dtype=bool)
    chunks: List[np.ndarray] = []
    indptr, indices = A.indptr, A.indices
    for h in hubs:
        if not placed[h]:
            placed[h] = True
            chunks.append(np.asarray([h], dtype=np.int64))
        nbrs = indices[indptr[h] : indptr[h + 1]]
        fresh = nbrs[~placed[nbrs]]
        if fresh.size:
            placed[fresh] = True
            chunks.append(fresh.astype(np.int64))
    rest = np.flatnonzero(~placed).astype(np.int64)
    if rest.size:
        chunks.append(rest)
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)


_STRATEGY_FNS = {
    "degree": _degree_permutation,
    "rcm": _rcm_permutation,
    "hub": _hub_permutation,
}


def reorder_permutation(A: CSRMatrix, strategy: str) -> np.ndarray:
    """The ``perm[new] = old`` vertex permutation for ``strategy``.

    ``"none"`` returns the identity.  Raises :class:`ShapeError` for
    non-square matrices (a symmetric permutation needs matching row and
    column index spaces) and :class:`~repro.errors.BackendError` — the
    same shape as :func:`validate_reorder` — for anything that is not a
    concrete strategy (``"auto"`` included: measured selection lives in
    the plan builder, not here).
    """
    if A.nrows != A.ncols:
        raise ShapeError(
            f"vertex reordering needs a square matrix, got {A.shape}"
        )
    if strategy == "none":
        return np.arange(A.nrows, dtype=np.int64)
    fn = _STRATEGY_FNS.get(strategy)
    if fn is None:
        detail = (
            "'auto' is resolved by the plan builder (pass reorder='auto' to "
            "KernelRuntime.plan); this function needs a concrete strategy"
            if strategy == "auto"
            else f"expected one of {REORDER_STRATEGIES}"
        )
        raise BackendError(f"unknown reorder strategy {strategy!r}; {detail}")
    return fn(A)


# ---------------------------------------------------------------------- #
# Symmetric permutation
# ---------------------------------------------------------------------- #
def permute_symmetric(A: CSRMatrix, perm: np.ndarray) -> CSRMatrix:
    """Apply ``perm`` to rows *and* columns: ``A_p[i, j] = A[perm[i], perm[j]]``.

    O(nnz log d_max): one vectorized edge gather plus a per-row column
    re-sort to restore canonical CSR under the new numbering.
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = A.nrows
    if A.nrows != A.ncols:
        raise ShapeError(f"symmetric permutation needs a square matrix, got {A.shape}")
    if perm.shape != (n,):
        raise ShapeError(f"perm must have shape ({n},), got {perm.shape}")
    if n and (
        perm.min() < 0
        or perm.max() >= n
        or np.bincount(perm, minlength=n).max() > 1
    ):
        # A non-bijective perm would leave inv_perm slots uninitialised and
        # silently build a corrupt matrix (construction skips validation).
        raise ShapeError("perm must be a permutation of range(nrows)")
    inv_perm = np.empty(n, dtype=np.int64)
    inv_perm[perm] = np.arange(n, dtype=np.int64)

    degrees = A.row_degrees()
    new_degrees = degrees[perm]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(new_degrees, out=indptr[1:])
    nnz = int(indptr[-1])
    # Edge gather: position k of the new layout reads old edge
    # old_start(row) + (k - new_start(row)).
    within = np.arange(nnz, dtype=np.int64) - np.repeat(indptr[:-1], new_degrees)
    src = np.repeat(A.indptr[perm], new_degrees) + within
    cols = inv_perm[A.indices[src]]
    vals = A.data[src]
    # Restore sorted columns within each row (rows are already grouped).
    rows = np.repeat(np.arange(n, dtype=np.int64), new_degrees)
    order = np.lexsort((cols, rows))
    return CSRMatrix(n, n, indptr, cols[order], vals[order], check=False)


# ---------------------------------------------------------------------- #
# Memoised entry point
# ---------------------------------------------------------------------- #
#: ``(memo_key, strategy) → ReorderResult`` — permutations are pure
#: functions of matrix content, so callers key the memo by the matrix
#: fingerprint and a rebuilt-but-identical adjacency reuses the ordering.
#: Bounded twice: by entry count and by total bytes (each entry pins a
#: full permuted CSR copy, so a count bound alone could retain gigabytes
#: on paper-scale graphs).
_MEMO: "OrderedDict[Tuple[str, str], ReorderResult]" = OrderedDict()
_MEMO_LOCK = threading.Lock()
_MEMO_CAPACITY = 32
_MEMO_BYTE_BUDGET = 256 * 1024 * 1024


def _result_bytes(result: ReorderResult) -> int:
    """Approximate retained bytes of one memo entry."""
    return result.matrix.memory_bytes() + 2 * 8 * result.perm.shape[0]


def reorder_matrix(
    A: CSRMatrix, strategy: str, *, memo_key: Optional[str] = None
) -> ReorderResult:
    """Compute (or fetch) the reordering of ``A`` under ``strategy``.

    ``memo_key`` — typically the matrix fingerprint — memoises the result
    (bounded LRU), so the one-time O(nnz) ordering cost is paid once per
    (matrix content, strategy) no matter how many plans request it.
    """
    if memo_key is not None:
        cache_key = (memo_key, strategy)
        with _MEMO_LOCK:
            hit = _MEMO.get(cache_key)
            if hit is not None:
                _MEMO.move_to_end(cache_key)
                return hit
    perm = reorder_permutation(A, strategy)
    inv_perm = np.empty_like(perm)
    inv_perm[perm] = np.arange(perm.shape[0], dtype=np.int64)
    matrix = A if strategy == "none" else permute_symmetric(A, perm)
    result = ReorderResult(
        strategy=strategy, matrix=matrix, perm=perm, inv_perm=inv_perm
    )
    if memo_key is not None:
        memoize_reorder(memo_key, result)
    return result


def memoize_reorder(memo_key: str, result: ReorderResult) -> None:
    """Insert an already-computed reordering into the memo.

    Used by the plan builder's ``reorder="auto"`` sweep: trial candidates
    are built unmemoised (losers must be garbage-collected), and the
    winner — whose permutation and panels were just computed and measured
    — is stored here instead of being recomputed through
    :func:`reorder_matrix`.
    """
    if _result_bytes(result) > _MEMO_BYTE_BUDGET:
        return
    with _MEMO_LOCK:
        _MEMO[(memo_key, result.strategy)] = result
        while len(_MEMO) > _MEMO_CAPACITY or (
            len(_MEMO) > 1
            and sum(_result_bytes(r) for r in _MEMO.values()) > _MEMO_BYTE_BUDGET
        ):
            _MEMO.popitem(last=False)


def reorder_memo_info() -> Dict[str, int]:
    """Number of memoised reorderings (tests and diagnostics)."""
    with _MEMO_LOCK:
        return {"memoized": len(_MEMO), "capacity": _MEMO_CAPACITY}


def clear_reorder_memo() -> None:
    """Drop every memoised reordering (mainly for tests)."""
    with _MEMO_LOCK:
        _MEMO.clear()


def _memo_key_covers(fingerprint: str, memo_key: str) -> bool:
    """Whether ``memo_key`` belongs to ``fingerprint``'s lineage (the key
    itself, derived ``<fp>|...`` keys, or versioned ``<fp>@vN`` keys)."""
    return (
        memo_key == fingerprint
        or memo_key.startswith(fingerprint + "|")
        or memo_key.startswith(fingerprint + "@")
    )


def drop_reorder_memo(fingerprint: str) -> int:
    """Evict every memoised reordering of ``fingerprint``'s lineage.

    Called when a graph is dropped or a version superseded, so permuted
    copies of dead matrices stop pinning the memo's byte budget.  Returns
    the number of entries removed.
    """
    if not fingerprint:
        return 0
    with _MEMO_LOCK:
        doomed = [
            key for key in _MEMO if _memo_key_covers(fingerprint, key[0])
        ]
        for key in doomed:
            del _MEMO[key]
        return len(doomed)


def reorder_memo_bytes(fingerprint: Optional[str] = None) -> int:
    """Retained bytes of the memo — all entries, or one lineage's."""
    with _MEMO_LOCK:
        return sum(
            _result_bytes(result)
            for key, result in _MEMO.items()
            if fingerprint is None or _memo_key_covers(fingerprint, key[0])
        )


def average_bandwidth(A: CSRMatrix) -> float:
    """Mean ``|row - column|`` distance over the stored edges.

    The locality metric the dynamic-graph tier watches: a permutation
    computed for one version keeps paying off while the permuted matrix's
    bandwidth stays near what it was when the permutation was tuned.
    Deterministic (pure structure, no timing), so carry decisions cannot
    flap between runs.
    """
    if A.nnz == 0:
        return 0.0
    rows = np.repeat(np.arange(A.nrows, dtype=np.int64), np.diff(A.indptr))
    return float(np.abs(rows - A.indices).mean())


# ---------------------------------------------------------------------- #
# Cache-blocked row panels
# ---------------------------------------------------------------------- #
def _panel_boundaries_loop(
    A: CSRMatrix, row_bytes: int, col_bytes: int, budget_bytes: int
) -> List[int]:
    """Reference implementation: one Python iteration per row.

    Kept as the semantic ground truth (and the fallback for non-canonical
    matrices with duplicate columns inside a row): the vectorized path is
    asserted equal to this, row for row, by the test suite and by
    ``benchmarks/bench_cache_block.py``.
    """
    n = A.nrows
    indptr, indices = A.indptr, A.indices
    # Stamp array: which panel last touched each column.  O(ncols) memory,
    # O(nnz) total time — but with Python-level loop overhead per row,
    # which is what the vectorized path removes.
    stamp = np.full(A.ncols, -1, dtype=np.int64)
    boundaries = [0]
    panel_id = 0
    ws = 0
    for u in range(n):
        cols = indices[indptr[u] : indptr[u + 1]]
        fresh = int(np.count_nonzero(stamp[cols] != panel_id))
        row_cost = row_bytes + fresh * col_bytes + cols.shape[0] * 12
        if u > boundaries[-1] and ws + row_cost > budget_bytes:
            # Close the panel before this row and re-count its columns
            # against the fresh panel.
            boundaries.append(u)
            panel_id += 1
            fresh = cols.shape[0]
            row_cost = row_bytes + fresh * col_bytes + cols.shape[0] * 12
            ws = 0
        stamp[cols] = panel_id
        ws += row_cost
    boundaries.append(n)
    return boundaries


def _panel_boundaries_vectorized(
    A: CSRMatrix, row_bytes: int, col_bytes: int, budget_bytes: int
) -> List[int]:
    """Chunk-vectorized panel boundary computation (no per-row Python loop).

    Key observation: the candidate row slab always *starts at the panel
    start*, so an edge gathers a **fresh** column iff it is the first
    occurrence of that column within the slab — detectable with one
    slab-local stable sort, no global preprocessing and no O(nnz)
    temporaries.  Per panel, fresh counts, row costs and the cumulative
    working set are then pure NumPy over the slab, and the boundary is
    the first index over the budget threshold.

    Exactly equivalent to :func:`_panel_boundaries_loop` for matrices with
    strictly increasing columns within each row (canonical CSR — what
    every generator and :func:`permute_symmetric` produce); callers
    pre-check and fall back to the loop otherwise.
    """
    n = A.nrows
    indptr = A.indptr.astype(np.int64, copy=False)
    indices = A.indices

    # A panel holds at most this many rows (each row costs >= row_bytes).
    max_rows = max(int(budget_bytes // max(row_bytes, 1)), 1) + 1

    boundaries = [0]
    b = 0
    # Adaptive slab: size the candidate row chunk from the previous
    # panel's length (panels of a given matrix are similar) and double on
    # a miss — so the vectorized work per panel stays proportional to the
    # panel itself, not to the worst-case budget/row_bytes bound.
    guess = min(max_rows, 64)
    while b < n:
        end = None
        slab = guess
        while True:
            hi = min(n, b + min(slab, max_rows))
            s, e = int(indptr[b]), int(indptr[hi])
            cols = indices[s:e]
            m = e - s
            # Fresh = first occurrence of the column within the slab (the
            # slab starts exactly at the panel start).  Pack (column,
            # slab position) into one int64 key and plain-sort it: run
            # heads of the column part mark first occurrences, and the
            # position part recovers where they live — ~8x cheaper than a
            # stable argsort at typical slab sizes.
            fresh = np.ones(m, dtype=bool)
            shift = int(m).bit_length()
            if m > 1 and int(A.ncols) >> (62 - shift) == 0:
                key = (cols.astype(np.int64) << shift) | np.arange(
                    m, dtype=np.int64
                )
                key.sort()
                slab_cols = key >> shift
                head = np.empty(m, dtype=bool)
                head[0] = True
                np.not_equal(slab_cols[1:], slab_cols[:-1], out=head[1:])
                fresh[:] = False
                fresh[key[head] & ((1 << shift) - 1)] = True
            elif m > 1:  # pragma: no cover - astronomically wide matrices
                order = np.argsort(cols, kind="stable")
                sorted_cols = cols[order]
                fresh[order[1:]] = sorted_cols[1:] != sorted_cols[:-1]
            # Per-row fresh counts via a cumulative sum (robust to empty
            # rows, unlike reduceat).
            cum = np.empty(e - s + 1, dtype=np.int64)
            cum[0] = 0
            np.cumsum(fresh, out=cum[1:])
            starts = indptr[b : hi + 1] - s
            fresh_per_row = cum[starts[1:]] - cum[starts[:-1]]
            deg = starts[1:] - starts[:-1]
            cost = row_bytes + fresh_per_row * col_bytes + deg * 12
            total = np.cumsum(cost)
            over = np.flatnonzero(total > budget_bytes)
            if over.size:
                # First row whose inclusion overflows the budget closes
                # the panel — but a panel always keeps at least its first
                # row.
                end = b + max(int(over[0]), 1)
                break
            if hi == n or hi - b >= max_rows:
                # Budget never overflows on what is left (cost >=
                # row_bytes per row makes overflow certain at max_rows).
                end = hi
                break
            slab *= 2
        boundaries.append(end)
        guess = min(max_rows, max(2 * (end - b), 16))
        b = end
    return boundaries


def _rows_strictly_sorted(A: CSRMatrix) -> bool:
    """Vectorized check that columns strictly increase within every row
    (no duplicates) — the precondition of the vectorized panel path."""
    nnz = A.indices.shape[0]
    if nnz < 2:
        return True
    d = np.diff(A.indices)
    # Positions where an edge starts a new row may decrease freely.  A
    # trailing run of empty rows puts ``nnz`` itself in indptr[1:-1];
    # there is no edge there, so those entries are irrelevant.
    starts = A.indptr[1:-1]
    row_starts = np.zeros(nnz, dtype=bool)
    row_starts[starts[starts < nnz]] = True
    return bool(np.all((d > 0) | row_starts[1:]))


def cache_block_partitions(
    A: CSRMatrix,
    *,
    dim: int = 128,
    budget_bytes: int = DEFAULT_PANEL_BUDGET_BYTES,
    value_bytes: int = 4,
    min_parts: int = 1,
    max_parts: int = 4096,
    impl: str = "auto",
) -> List:
    """Tile ``A`` into contiguous row panels whose working set fits ``budget_bytes``.

    The working set of a panel is what its kernel execution keeps hot:

    * the float64 output accumulator rows (``rows × dim × 8``),
    * the *distinct* dense operand rows its edges gather
      (``distinct_cols × dim × value_bytes``) — after reordering this is
      the quantity vertex renumbering shrinks,
    * the CSR edge data itself (``nnz × 12`` per the paper's memory model).

    Returns a list of :class:`~repro.core.partition.RowPartition` covering
    ``[0, nrows)`` contiguously — the same contract as
    :func:`~repro.core.partition.part1d`, so the panels slot straight into
    the runtime's partition/shard plumbing.  ``min_parts``/``max_parts``
    bound the panel count: at least ``min_parts`` (so a reordered plan
    fans out no less than an unordered one) and at most ``max_parts`` (so
    scheduling overhead stays bounded); both respect contiguity.

    ``impl`` selects the boundary computation: ``"auto"`` (default) uses
    the chunk-vectorized path for canonical matrices and falls back to
    the row loop when a row holds duplicate columns; ``"vectorized"`` /
    ``"loop"`` force a path (the micro-benchmark and the equivalence
    tests).  Both produce identical boundaries.
    """
    from ..core.partition import RowPartition, part1d  # late: avoid cycle

    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    if budget_bytes <= 0:
        raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
    if min_parts < 1 or max_parts < min_parts:
        raise ValueError(
            f"need 1 <= min_parts <= max_parts, got {min_parts}/{max_parts}"
        )
    if impl not in ("auto", "vectorized", "loop"):
        raise ValueError(f"impl must be auto|vectorized|loop, got {impl!r}")
    n = A.nrows
    if n == 0:
        return part1d(A, min_parts)

    indptr = A.indptr
    row_bytes = dim * 8  # float64 accumulator row
    col_bytes = dim * value_bytes  # one gathered dense operand row
    if impl == "loop" or (impl == "auto" and not _rows_strictly_sorted(A)):
        boundaries = _panel_boundaries_loop(A, row_bytes, col_bytes, budget_bytes)
    else:
        boundaries = _panel_boundaries_vectorized(
            A, row_bytes, col_bytes, budget_bytes
        )

    # Enforce the panel-count bounds while keeping contiguity.
    if len(boundaries) - 1 > max_parts:
        picks = np.linspace(0, len(boundaries) - 1, max_parts + 1)
        boundaries = [boundaries[int(round(i))] for i in picks]
    if len(boundaries) - 1 < min_parts:
        return part1d(A, min_parts)
    return [
        RowPartition(a, b, int(indptr[b] - indptr[a]))
        for a, b in zip(boundaries, boundaries[1:])
    ]


# ---------------------------------------------------------------------- #
# Compacted panel execution structure
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class PanelBlock:
    """One cache-blocked row panel, pre-compacted for execution.

    ``matrix`` is the panel's rows as a standalone sub-CSR whose column
    indices are *localised* to the panel's distinct destinations, so a
    kernel call on ``(matrix, X[start:stop], Y[cols])`` gathers from a
    compact, cache-resident dense buffer instead of the full operand.
    ``cols`` is ``None`` when the panel touches (nearly) every column —
    compaction would just copy ``Y`` — in which case callers should run
    the panel as a windowed call on the full matrix instead.
    """

    start: int
    stop: int
    nnz: int
    matrix: Optional[CSRMatrix]
    cols: Optional[np.ndarray]

    @property
    def num_rows(self) -> int:
        return self.stop - self.start


def build_panels(
    A: CSRMatrix, parts, *, compact_threshold: float = 0.9
) -> List[PanelBlock]:
    """Pre-compact each row panel of ``A`` for cache-blocked execution.

    One-time O(nnz log nnz) structural work (no feature data involved):
    for every partition the distinct destination columns are extracted and
    the panel's column indices rewritten against them.  Panels whose
    distinct-column set covers more than ``compact_threshold`` of all
    columns skip compaction (``matrix``/``cols`` set to ``None``) — the
    gather would degenerate into a full copy of the dense operand.
    """
    panels: List[PanelBlock] = []
    indptr, indices, data = A.indptr, A.indices, A.data
    for p in parts:
        lo, hi = int(indptr[p.start]), int(indptr[p.stop])
        cols = indices[lo:hi]
        uniq = np.unique(cols)
        if uniq.shape[0] > compact_threshold * max(A.ncols, 1):
            panels.append(
                PanelBlock(p.start, p.stop, p.nnz, matrix=None, cols=None)
            )
            continue
        local = np.searchsorted(uniq, cols)
        sub_indptr = (indptr[p.start : p.stop + 1] - lo).astype(np.int64)
        sub = CSRMatrix(
            p.stop - p.start,
            int(uniq.shape[0]),
            sub_indptr,
            local,
            data[lo:hi],
            check=False,
        )
        panels.append(
            PanelBlock(p.start, p.stop, p.nnz, matrix=sub, cols=uniq)
        )
    return panels
