"""Sparse-matrix substrate used by every kernel and baseline in the package.

Public names
------------
``CSRMatrix``
    Compressed Sparse Row matrix — the compute format (Section IV.C of the
    paper assumes this layout for its memory model).
``COOMatrix``
    Coordinate format — the construction/interchange format.
``as_csr`` / ``as_coo``
    Coercion helpers accepting our formats, SciPy, NetworkX, dense arrays
    and edge lists.
``read_matrix_market`` / ``write_matrix_market``
    Self-contained Matrix Market coordinate I/O.
``random_csr`` & friends
    Controlled random sparsity patterns for tests and benchmarks.
``reorder_matrix`` / ``cache_block_partitions``
    The locality tier: vertex reordering (RCM, degree sort, hub
    clustering) and LLC-sized CSR row panels.
"""

from .coo import COOMatrix
from .csr import CSRMatrix
from .convert import as_coo, as_csr, from_networkx
from .delta import CompactionPolicy, DeltaCSR, EdgeBatchResult, splice_rows
from .io import read_matrix_market, write_matrix_market
from .random import banded_csr, block_diagonal_csr, random_bipartite, random_csr
from .reorder import (
    REORDER_CHOICES,
    REORDER_STRATEGIES,
    PanelBlock,
    ReorderResult,
    average_bandwidth,
    build_panels,
    cache_block_partitions,
    clear_reorder_memo,
    drop_reorder_memo,
    permute_symmetric,
    reorder_matrix,
    reorder_memo_bytes,
    reorder_memo_info,
    reorder_permutation,
    validate_reorder,
)

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CompactionPolicy",
    "DeltaCSR",
    "EdgeBatchResult",
    "splice_rows",
    "as_coo",
    "as_csr",
    "from_networkx",
    "read_matrix_market",
    "write_matrix_market",
    "random_csr",
    "random_bipartite",
    "banded_csr",
    "block_diagonal_csr",
    "REORDER_CHOICES",
    "REORDER_STRATEGIES",
    "ReorderResult",
    "PanelBlock",
    "build_panels",
    "validate_reorder",
    "reorder_permutation",
    "permute_symmetric",
    "reorder_matrix",
    "reorder_memo_info",
    "reorder_memo_bytes",
    "clear_reorder_memo",
    "drop_reorder_memo",
    "average_bandwidth",
    "cache_block_partitions",
]
