"""Exception hierarchy for the :mod:`repro` package.

Keeping a small, explicit hierarchy lets callers distinguish usage errors
(bad shapes, unknown operators) from internal invariant violations without
matching on message strings.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ShapeError(ReproError, ValueError):
    """Raised when matrix/vector operands have incompatible shapes."""


class DTypeError(ReproError, TypeError):
    """Raised when an operand has an unsupported dtype."""


class SparseFormatError(ReproError, ValueError):
    """Raised when a sparse matrix is structurally invalid (e.g. unsorted
    or out-of-range indices, non-monotonic row pointers)."""


class OperatorError(ReproError, ValueError):
    """Raised when an unknown operator name is requested or a user-defined
    operator violates the I/O contract of its FusedMM step."""


class PatternError(ReproError, ValueError):
    """Raised when an application pattern name is unknown or its operator
    tuple is inconsistent (e.g. ROP=NOOP but SOP expects a scalar)."""


class BackendError(ReproError, ValueError):
    """Raised when an unknown kernel backend is requested or a backend
    cannot execute the requested pattern."""


class PartitionError(ReproError, ValueError):
    """Raised for invalid partitioning requests (e.g. non-positive part
    count)."""


class CodegenError(ReproError, RuntimeError):
    """Raised when kernel code generation or compilation fails."""


class DatasetError(ReproError, KeyError):
    """Raised when an unknown dataset is requested from the registry."""


class ConvergenceError(ReproError, RuntimeError):
    """Raised when an iterative application (training loop, layout) fails
    to make progress under the configured limits."""


class WorkerError(ReproError, RuntimeError):
    """Raised when a sharded-execution worker process reports a failure
    (the worker stays alive and the pool remains usable)."""


class WorkerCrashError(WorkerError):
    """Raised when a worker process dies unexpectedly (killed, segfault,
    OOM).  The pool respawns the worker; the in-flight call is lost."""


class CheckpointError(ReproError, RuntimeError):
    """Raised when a checkpoint cannot be *written* or a resume request is
    inconsistent (graph fingerprint or config mismatch).  Never raised
    while *scanning* for a checkpoint to load — corrupt or torn files are
    silently skipped in favour of the newest valid one."""


class JobError(ReproError, RuntimeError):
    """Raised for training-job failures (:mod:`repro.jobs`): an epoch that
    raised, an injected fault, a job submitted with an invalid spec."""


class JobNotFoundError(JobError, KeyError):
    """Raised when an unknown job id is requested; the serving front-end
    answers 404."""


class ServeError(ReproError, RuntimeError):
    """Base class of serving-subsystem failures (:mod:`repro.serve`).

    Each concrete subclass carries the HTTP status the front-end answers
    with, so admission-control outcomes map to wire responses in exactly
    one place."""

    http_status = 500


class QueueFullError(ServeError):
    """Raised when the coalescer's admission queue is at capacity — the
    server answers 429 so overload sheds load instead of growing the
    queue (and every queued request's latency) without bound."""

    http_status = 429


class DrainingError(ServeError):
    """Raised for requests arriving after shutdown began; the server
    answers 503 while in-flight work finishes."""

    http_status = 503


class DeadlineError(ServeError):
    """Raised when a request's deadline expired before its kernel was
    dispatched; the server answers 504 without doing the work."""

    http_status = 504


#: Status → ServeError subclass, for transports (the binary wire protocol)
#: that ship the numeric status and need the typed exception back on the
#: client side.  Inverse of the ``http_status`` class attributes above.
SERVE_STATUS_ERRORS = {
    cls.http_status: cls
    for cls in (QueueFullError, DrainingError, DeadlineError)
}


def serve_error_for_status(status: int, message: str) -> ReproError:
    """Reconstruct the typed serving error for a wire-level status code.

    Statuses without a dedicated subclass (400, 404, 500, ...) come back
    as a plain :class:`ServeError` so callers can still catch one root
    type; its ``http_status`` instance attribute preserves the code.
    """
    cls = SERVE_STATUS_ERRORS.get(status)
    if cls is not None:
        return cls(message)
    error = ServeError(message)
    error.http_status = status
    return error
