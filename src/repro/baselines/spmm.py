"""General SpMM — the vertex-wise aggregation kernel of the unfused baseline.

Reproduces DGL's general SpMM (Eq. 3 of the paper): consume a materialised
edge-message matrix H (the output of :mod:`repro.baselines.sddmm`) and
aggregate the messages on the target vertices,

``z_u = ⊕_{h_uv ≠ 0} φ(y_v, h_uv)``

with user-defined multiply (``MOP``) and accumulate (``AOP``) operators.
The messages are *read back* from H — this second pass over an
``O(d · nnz)`` array is the memory-traffic cost the fused kernel removes.
"""

from __future__ import annotations

import numpy as np

from ..core.patterns import OpPattern, ResolvedPattern, get_pattern
from .sddmm import SDDMMResult

__all__ = ["gspmm"]


def gspmm(
    H: SDDMMResult,
    Y: np.ndarray,
    *,
    pattern: OpPattern | str = "sigmoid_embedding",
    block_size: int = 65536,
    **pattern_overrides,
) -> np.ndarray:
    """Aggregate materialised edge messages into the output matrix Z.

    Parameters
    ----------
    H:
        The :class:`~repro.baselines.sddmm.SDDMMResult` holding per-edge
        messages aligned with the CSR structure of A.
    Y:
        ``(n, d)`` destination feature matrix (needed because MOP may
        multiply the message with the neighbour features, as in the
        embedding pattern).
    pattern:
        The same pattern used for the SDDMM phase; only its MOP/AOP slots
        are used here.
    """
    resolved: ResolvedPattern = get_pattern(pattern, **pattern_overrides).resolved()
    mop, aop = resolved.mop, resolved.aop
    A = H.A
    Y = np.ascontiguousarray(Y)
    if Y.shape[0] != A.ncols:
        raise ValueError(f"Y must have {A.ncols} rows, got {Y.shape[0]}")
    d = Y.shape[1]
    m = A.nrows
    use_sum = aop.name == "ASUM"
    identity = aop.accumulator_identity
    Z = np.zeros((m, d), dtype=np.float64) if use_sum else np.full((m, d), identity, np.float64)
    edge_rows = np.repeat(np.arange(m, dtype=np.int64), A.row_degrees())
    messages = H.messages

    for e0 in range(0, A.nnz, block_size):
        e1 = min(e0 + block_size, A.nnz)
        src = edge_rows[e0:e1]
        dst = A.indices[e0:e1]
        vals = A.data[e0:e1]
        Yd = Y[dst]
        Hb = messages[e0:e1]
        M = Hb if mop.is_noop else mop.batch_fn(Hb, Yd, vals, None)
        M = np.atleast_1d(M)
        if M.ndim == 1:
            M = M[:, None]
        change = np.flatnonzero(np.diff(src)) + 1
        starts = np.concatenate(([0], change))
        seg_rows = src[starts]
        if use_sum:
            Z[seg_rows] += np.add.reduceat(M, starts, axis=0)
        else:
            ufunc = aop.accumulate_ufunc
            seg = ufunc.reduceat(M, starts, axis=0)
            Z[seg_rows] = ufunc(Z[seg_rows], seg)

    if not use_sum:
        empty = A.row_degrees() == 0
        if np.any(empty):
            Z[empty] = 0.0
    return Z.astype(Y.dtype if np.issubdtype(Y.dtype, np.floating) else np.float32)
