"""General SDDMM — the edge-wise message kernel of the unfused baseline.

This reproduces DGL's general SDDMM (Eq. 2 of the paper): for every stored
entry ``(u, v)`` of the sparse matrix ``A``, compute a message
``h_uv = ψ(x_u, y_v, a_uv)`` and **materialise** it.  The output is either

* an ``(nnz,)`` array for scalar messages (the embedding/GCN cases), or
* an ``(nnz, d)`` array for vector messages (the FR-layout case) — the
  intermediate tensor H whose ``O(d · nnz)`` footprint motivates the fused
  kernel in the first place.

The message function is specified through the same operator pattern objects
used by FusedMM (the VOP/ROP/SOP prefix of the pattern), so the unfused
pipeline computes bit-identical messages to the fused kernel — making the
time and memory comparisons apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.patterns import OpPattern, ResolvedPattern, get_pattern
from ..core.validation import validate_operands
from ..sparse import CSRMatrix

__all__ = ["SDDMMResult", "sddmm"]


@dataclass
class SDDMMResult:
    """The materialised edge-message matrix H of the unfused pipeline.

    Attributes
    ----------
    A:
        The sparse structure the messages follow (H has exactly the
        sparsity pattern of A, as the paper emphasises).
    messages:
        ``(nnz,)`` or ``(nnz, d)`` array of per-edge messages, aligned with
        ``A.indices``.
    """

    A: CSRMatrix
    messages: np.ndarray

    @property
    def is_scalar(self) -> bool:
        """True when each edge carries a scalar message."""
        return self.messages.ndim == 1

    @property
    def message_dim(self) -> int:
        """Per-edge message dimension (1 for scalar messages)."""
        return 1 if self.is_scalar else int(self.messages.shape[1])

    def memory_bytes(self) -> int:
        """Bytes held by the materialised H (the cost the fused kernel
        avoids): values only, the structure is shared with A."""
        return int(self.messages.nbytes)

    def to_csr(self) -> CSRMatrix:
        """View the scalar messages as a CSR matrix (H itself); only valid
        for scalar messages."""
        if not self.is_scalar:
            raise ValueError("vector-message H cannot be represented as a CSR matrix")
        return CSRMatrix(
            self.A.nrows,
            self.A.ncols,
            self.A.indptr.copy(),
            self.A.indices.copy(),
            self.messages.astype(np.float32),
            check=False,
        )


def sddmm(
    A,
    X,
    Y=None,
    *,
    pattern: OpPattern | str = "sigmoid_embedding",
    block_size: int = 65536,
    include_mop: bool = False,
    **pattern_overrides,
) -> SDDMMResult:
    """Compute the edge messages ``h_uv = SOP(ROP(VOP(x_u, y_v, a_uv)))``
    for every nonzero of ``A`` and return them materialised.

    ``block_size`` only controls how many edges are *gathered* at a time to
    bound peak temporary memory during computation; unlike the fused
    kernel, the full output H is always allocated.

    ``include_mop=True`` additionally applies the pattern's MOP so H holds
    the complete per-edge message.  This is how DGL implements patterns
    (such as the FR layout) whose message is itself a d-dimensional vector
    built from the *difference* of the node features: the whole vector
    message must be materialised before aggregation, which is exactly the
    ``O(d · nnz)`` intermediate the fused kernel avoids.
    """
    A, X, Y = validate_operands(A, X, Y)
    resolved: ResolvedPattern = get_pattern(pattern, **pattern_overrides).resolved()
    vop, rop, sop, mop = resolved.vop, resolved.rop, resolved.sop, resolved.mop

    nnz = A.nnz
    d = X.shape[1]
    edge_rows = np.repeat(np.arange(A.nrows, dtype=np.int64), A.row_degrees())

    scalar = resolved.message_is_scalar and not include_mop
    out_shape = (nnz,) if scalar else (nnz, d)
    messages = np.empty(out_shape, dtype=np.float64)

    for e0 in range(0, nnz, block_size):
        e1 = min(e0 + block_size, nnz)
        src = edge_rows[e0:e1]
        dst = A.indices[e0:e1]
        vals = A.data[e0:e1]
        Xs = X[src]
        Yd = Y[dst]
        W = Yd if vop.is_noop else vop.batch_fn(Xs, Yd, vals)
        S = W if rop.is_noop else rop.batch_fn(W)
        H = S if sop.is_noop else sop.batch_fn(S)
        if include_mop and not mop.is_noop:
            H = mop.batch_fn(H, Yd, vals, W)
        H = np.atleast_1d(H)
        if not scalar and H.ndim == 1:
            H = np.broadcast_to(H[:, None], (e1 - e0, d))
        messages[e0:e1] = H

    return SDDMMResult(A=A, messages=messages.astype(X.dtype))
