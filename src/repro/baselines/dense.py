"""Dense (PyTorch-style) message-passing baseline.

The end-to-end comparison of Table VIII includes a "PyTorch" implementation
of the Force2Vec embedding algorithm: one built only from dense tensor
operations, with no sparse kernels at all.  The idiomatic dense formulation
computes the full ``m × n`` score matrix ``S = σ(X Yᵀ)``, masks it with the
adjacency structure, and multiplies back with ``Y`` — three dense passes
over an ``m × n`` matrix regardless of how sparse the graph is.  That is
why it loses by ~50× in the paper, and the same asymptotic penalty shows up
here.

A guard refuses to build score matrices above ``max_dense_elements`` to
avoid accidentally exhausting memory on the large graphs (the same reason
the paper only runs this baseline on Cora and Pubmed).
"""

from __future__ import annotations

import numpy as np

from ..core.patterns import OpPattern, get_pattern
from ..core.validation import validate_operands
from ..errors import BackendError

__all__ = ["dense_fusedmm", "dense_sigmoid_embedding", "dense_spmm"]

#: Refuse to allocate dense score matrices bigger than this many elements
#: (1e8 single-precision floats ≈ 400 MB).
MAX_DENSE_ELEMENTS = 100_000_000


def _check_size(m: int, n: int, max_dense_elements: int) -> None:
    if m * n > max_dense_elements:
        raise BackendError(
            f"dense baseline would allocate an {m}×{n} score matrix "
            f"({m * n:,} elements > limit {max_dense_elements:,}); "
            "use the sparse kernels for graphs of this size"
        )


def dense_sigmoid_embedding(
    A,
    X,
    Y=None,
    *,
    max_dense_elements: int = MAX_DENSE_ELEMENTS,
) -> np.ndarray:
    """Dense computation of the sigmoid-embedding pattern:
    ``Z = (σ(X Yᵀ) ⊙ mask(A)) · Y``."""
    A, X, Y = validate_operands(A, X, Y)
    _check_size(A.nrows, A.ncols, max_dense_elements)
    scores = X @ Y.T
    sig = 1.0 / (1.0 + np.exp(-np.clip(scores, -60.0, 60.0)))
    mask = A.to_dense() != 0.0
    return ((sig * mask) @ Y).astype(X.dtype)


def dense_spmm(A, Y, *, max_dense_elements: int = MAX_DENSE_ELEMENTS) -> np.ndarray:
    """Dense SpMM: materialise A densely and use a dense matmul."""
    from ..sparse import as_csr

    A = as_csr(A)
    _check_size(A.nrows, A.ncols, max_dense_elements)
    Y = np.ascontiguousarray(Y)
    return (A.to_dense() @ Y).astype(
        Y.dtype if np.issubdtype(Y.dtype, np.floating) else np.float32
    )


def dense_fusedmm(
    A,
    X,
    Y=None,
    *,
    pattern: OpPattern | str = "sigmoid_embedding",
    max_dense_elements: int = MAX_DENSE_ELEMENTS,
    **pattern_overrides,
) -> np.ndarray:
    """Dense-tensor evaluation of a FusedMM pattern.

    Only the patterns the paper runs through its PyTorch baseline are
    supported densely (sigmoid embedding and SpMM/GCN); anything else falls
    back to masking the generic per-edge computation on a dense adjacency,
    which exists mainly so tests can cross-check small cases.
    """
    resolved = get_pattern(pattern, **pattern_overrides).resolved()
    if resolved.is_sigmoid_embedding:
        return dense_sigmoid_embedding(A, X, Y, max_dense_elements=max_dense_elements)
    if resolved.is_spmm_like:
        A_csr, X_arr, Y_arr = validate_operands(A, X, Y)
        return dense_spmm(A_csr, Y_arr, max_dense_elements=max_dense_elements).astype(
            X_arr.dtype
        )
    # Fallback: dense adjacency + generic reference (small inputs only).
    from ..core.generic import fusedmm_generic

    A_csr, X_arr, Y_arr = validate_operands(A, X, Y)
    _check_size(A_csr.nrows, A_csr.ncols, max_dense_elements)
    return fusedmm_generic(A_csr, X_arr, Y_arr, pattern=get_pattern(pattern, **pattern_overrides))
