"""Vendor-optimised SpMM baseline (the paper's Intel MKL comparison).

Table VII compares the SpMM specialisation of FusedMM against MKL's
``mkl_sparse_s_mm``.  MKL is not available in this environment; the closest
vendor-optimised SpMM we can call is SciPy's compiled CSR matrix product
(``csr_matrix @ dense``), which — like MKL — is a hand-tuned C
implementation behind a generic sparse API, and therefore plays the same
role in the comparison: "how close does the general-purpose fused kernel
come to a dedicated compiled SpMM?".

The MKL inspector/executor split is mirrored by the optional
:class:`InspectorExecutorSpMM`, which performs one-time structure analysis
(conversion + column sorting, analogous to ``mkl_sparse_optimize``) and then
amortises it across repeated executions.
"""

from __future__ import annotations

import numpy as np

from ..errors import BackendError
from ..sparse import CSRMatrix, as_csr

__all__ = ["scipy_available", "vendor_spmm", "InspectorExecutorSpMM"]


def scipy_available() -> bool:
    """Whether SciPy (the vendor-SpMM stand-in) can be imported."""
    try:
        import scipy.sparse  # noqa: F401

        return True
    except ImportError:  # pragma: no cover - scipy is present in CI
        return False


def vendor_spmm(A, Y: np.ndarray) -> np.ndarray:
    """One-shot vendor SpMM: ``Z = A @ Y`` through SciPy's compiled kernel.

    Raises :class:`~repro.errors.BackendError` when SciPy is unavailable so
    callers can skip the comparison rather than crash.
    """
    if not scipy_available():
        raise BackendError("SciPy is not available; the vendor SpMM baseline cannot run")
    A = as_csr(A)
    Y = np.ascontiguousarray(Y)
    if Y.ndim != 2 or Y.shape[0] != A.ncols:
        raise ValueError(f"Y must have shape ({A.ncols}, d), got {Y.shape}")
    return np.asarray(A.to_scipy() @ Y)


class InspectorExecutorSpMM:
    """MKL-style two-phase SpMM: inspect once, execute many times.

    Example
    -------
    >>> import numpy as np
    >>> from repro.sparse import random_csr
    >>> from repro.baselines import InspectorExecutorSpMM
    >>> A = random_csr(100, 100, density=0.05, seed=0)
    >>> spmm = InspectorExecutorSpMM(A)          # inspection phase
    >>> Y = np.random.default_rng(0).standard_normal((100, 16)).astype(np.float32)
    >>> Z = spmm(Y)                              # execution phase
    >>> Z.shape
    (100, 16)
    """

    def __init__(self, A) -> None:
        if not scipy_available():
            raise BackendError(
                "SciPy is not available; the vendor SpMM baseline cannot run"
            )
        self.A: CSRMatrix = as_csr(A)
        # Inspection: build the compiled-library representation once and
        # pre-sort indices (what mkl_sparse_optimize would do).
        self._handle = self.A.to_scipy()
        self._handle.sort_indices()

    @property
    def inspection_bytes(self) -> int:
        """Memory held by the inspected representation."""
        return int(
            self._handle.data.nbytes
            + self._handle.indices.nbytes
            + self._handle.indptr.nbytes
        )

    def __call__(self, Y: np.ndarray) -> np.ndarray:
        """Execute ``Z = A @ Y`` with the inspected handle."""
        Y = np.ascontiguousarray(Y)
        if Y.ndim != 2 or Y.shape[0] != self.A.ncols:
            raise ValueError(f"Y must have shape ({self.A.ncols}, d), got {Y.shape}")
        return np.asarray(self._handle @ Y)
