"""The unfused SDDMM → SpMM pipeline (the paper's "DGL" baseline).

DGL implements message passing as two separate kernels: a general SDDMM
produces the edge-message matrix H, which is materialised in memory, and a
general SpMM reads H back to aggregate the messages on the target vertices
(Section II of the paper, Fig. 3).  This module chains
:mod:`repro.baselines.sddmm` and :mod:`repro.baselines.spmm` the same way so
the fused kernel can be compared against an *equivalent-result* unfused
pipeline on the same substrate:

* same operator pattern objects, hence bit-comparable outputs,
* H is genuinely allocated (``nnz`` or ``nnz × d`` values) and traversed a
  second time during aggregation — the extra memory traffic the paper's
  speedups come from,
* :func:`unfused_memory_bytes` reports the size of that intermediate for
  the memory-consumption comparison of Fig. 10(b).

The pipeline automatically decides where to split the pattern: patterns
whose MOP needs the VOP output (vector messages such as the FR layout) fold
the MOP into the SDDMM phase, because the aggregation kernel alone cannot
recompute the difference vectors — this matches how such models must be
expressed in DGL (``copy_e``-style aggregation of precomputed edge
vectors).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.patterns import OpPattern, ResolvedPattern, get_pattern
from ..core.validation import validate_operands
from .sddmm import SDDMMResult, sddmm
from .spmm import gspmm

__all__ = ["UnfusedResult", "unfused_fusedmm", "unfused_memory_bytes", "needs_vector_messages"]


def needs_vector_messages(resolved: ResolvedPattern) -> bool:
    """True when the pattern's per-edge message must be materialised as a
    full d-dimensional vector by an unfused pipeline.

    That happens when the MOP consumes the VOP output (e.g. ``MULDIFF`` in
    the FR layout) — the aggregation kernel cannot rebuild it from the
    scalar H — or, more generally, when the message entering aggregation is
    not a scalar.  SpMM-like patterns (GCN row of Table III) are the
    exception: DGL implements them as a single SpMM whose "messages" are
    just the scalar edge weights, so no d-dimensional intermediate is ever
    stored and the fair unfused baseline must not store one either.
    """
    if resolved.is_spmm_like:
        return False
    return resolved.mop.name == "MULDIFF" or not resolved.message_is_scalar


@dataclass
class UnfusedResult:
    """Output of the unfused pipeline plus accounting of the intermediate."""

    Z: np.ndarray
    intermediate_bytes: int
    message_dim: int


def unfused_fusedmm(
    A,
    X,
    Y=None,
    *,
    pattern: OpPattern | str = "sigmoid_embedding",
    block_size: int = 65536,
    return_details: bool = False,
    **pattern_overrides,
):
    """Compute the same result as :func:`repro.fusedmm` with separate SDDMM
    and SpMM kernels, materialising the intermediate H.

    Returns the output matrix ``Z``; pass ``return_details=True`` to get an
    :class:`UnfusedResult` carrying the intermediate-size accounting used
    by the memory experiment (Fig. 10b).
    """
    A, X, Y = validate_operands(A, X, Y)
    op_pattern = get_pattern(pattern, **pattern_overrides)
    resolved = op_pattern.resolved()

    if resolved.is_spmm_like:
        # DGL maps this directly onto its SpMM kernel: the "messages" are
        # the scalar edge weights already stored in A, so the SDDMM phase
        # degenerates to reading them out.
        H = SDDMMResult(A=A, messages=A.data.astype(X.dtype).copy())
        agg_pattern = op_pattern.with_ops(vop="NOOP", rop="NOOP", sop="NOOP", mop="MUL")
        Z = gspmm(H, Y, pattern=agg_pattern, block_size=block_size)
    elif needs_vector_messages(resolved):
        # SDDMM materialises the complete d-dimensional message; the SpMM
        # phase only aggregates (copy_e + reduce in DGL terms).
        H: SDDMMResult = sddmm(
            A, X, Y, pattern=op_pattern, block_size=block_size, include_mop=True
        )
        agg_pattern = op_pattern.with_ops(vop="NOOP", rop="NOOP", sop="NOOP", mop="NOOP")
        Z = gspmm(H, Y, pattern=agg_pattern, block_size=block_size)
    else:
        # Scalar messages: SDDMM produces the nnz-sized H, SpMM applies the
        # MOP (u_mul_e style) and the reduction.
        H = sddmm(A, X, Y, pattern=op_pattern, block_size=block_size, include_mop=False)
        Z = gspmm(H, Y, pattern=op_pattern, block_size=block_size)

    Z = Z.astype(X.dtype)
    if not return_details:
        return Z
    return UnfusedResult(
        Z=Z, intermediate_bytes=H.memory_bytes(), message_dim=H.message_dim
    )


def unfused_memory_bytes(
    A,
    d: int,
    *,
    pattern: OpPattern | str = "sigmoid_embedding",
    value_bytes: int = 4,
    index_bytes: int = 8,
    **pattern_overrides,
) -> int:
    """Analytical memory requirement of the unfused pipeline, following the
    paper's accounting of Section IV.C: operand storage (8md + 4nd + 12nnz
    bytes) **plus** the intermediate H, which costs ``12·nnz`` bytes for
    scalar messages and ``12·nnz·d`` bytes for vector messages (values and
    indices of a sparse tensor with d values per nonzero)."""
    from ..sparse import as_csr

    A = as_csr(A)
    resolved = get_pattern(pattern, **pattern_overrides).resolved()
    m, n, nnz = A.nrows, A.ncols, A.nnz
    operands = 2 * value_bytes * m * d + value_bytes * n * d + (index_bytes + value_bytes) * nnz
    per_entry = index_bytes + value_bytes * (d if needs_vector_messages(resolved) else 1)
    return operands + per_entry * nnz
