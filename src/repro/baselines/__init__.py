"""Baselines FusedMM is compared against.

* :mod:`~repro.baselines.sddmm` / :mod:`~repro.baselines.spmm` /
  :mod:`~repro.baselines.unfused` — the DGL-style unfused pipeline that
  materialises the intermediate edge-message matrix H.
* :mod:`~repro.baselines.dense` — the PyTorch-style dense-tensor baseline
  used in the end-to-end comparison (Table VIII).
* :mod:`~repro.baselines.mkl_like` — the vendor-optimised SpMM comparison
  (Table VII), backed by SciPy's compiled CSR matmul.
"""

from .dense import dense_fusedmm, dense_sigmoid_embedding, dense_spmm
from .mkl_like import InspectorExecutorSpMM, scipy_available, vendor_spmm
from .sddmm import SDDMMResult, sddmm
from .spmm import gspmm
from .unfused import (
    UnfusedResult,
    needs_vector_messages,
    unfused_fusedmm,
    unfused_memory_bytes,
)

__all__ = [
    "sddmm",
    "SDDMMResult",
    "gspmm",
    "unfused_fusedmm",
    "UnfusedResult",
    "unfused_memory_bytes",
    "needs_vector_messages",
    "dense_fusedmm",
    "dense_sigmoid_embedding",
    "dense_spmm",
    "vendor_spmm",
    "InspectorExecutorSpMM",
    "scipy_available",
]
