"""Shared length-prefixed framing + payload codecs for every binary transport.

Two subsystems speak framed binary protocols: the serving front-end's wire
protocol (:mod:`repro.serve.wire`, magic ``b"RW"``) and the distributed
worker transport (:mod:`repro.runtime.remote`, magic ``b"RK"``).  Both use
the exact same mechanics — a fixed header, a JSON-meta + raw-npy-blob
payload container, typed-error payloads — so the mechanics live here once
and each protocol instantiates a :class:`FrameCodec` with its own magic.

Frame layout (network byte order)::

    magic      2 bytes   protocol magic (b"RW" wire, b"RK" worker)
    version    1 byte    protocol version
    opcode     1 byte    protocol-specific OP_*
    request_id 8 bytes   sender-assigned; echoed on the response
    length     4 bytes   payload byte count
    payload    <length>  payload container (below)

Payload container: ``meta_len:u32 | meta JSON | (blob_len:u32 | npy blob)``
repeated once per name in ``meta["arrays"]`` — arrays ride as NumPy
``.npy`` blobs (bitwise-faithful dtypes, no float→decimal round trip),
everything scalar rides in the small JSON meta block.

Errors cross either protocol as ``{"status": ..., "error": ...}`` meta;
:func:`error_from_meta` rehydrates the typed
:class:`~repro.errors.ServeError` on the receiving side.

This module sits below both :mod:`repro.runtime` and :mod:`repro.serve`
in the layering — it must never import from either.
"""

from __future__ import annotations

import asyncio
import io
import json
import struct
from typing import Dict, Optional, Tuple

import numpy as np

from .errors import ReproError, serve_error_for_status

__all__ = [
    "ProtocolError",
    "FrameEOFError",
    "FRAME_HEADER",
    "FrameCodec",
    "npy_bytes",
    "array_from_npy",
    "encode_payload",
    "decode_payload",
    "error_payload",
    "error_from_meta",
]

#: magic(2s) | version(B) | opcode(B) | request_id(Q) | payload length(I)
FRAME_HEADER = struct.Struct("!2sBBQI")
_U32 = struct.Struct("!I")


class ProtocolError(ValueError):
    """Malformed input from the peer; carries the status to answer with."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class FrameEOFError(ProtocolError, ConnectionError):
    """The peer hung up mid-frame on a blocking read.

    Doubly typed on purpose: blocking clients historically surfaced a
    :class:`ConnectionError` for any EOF, while frame-aware callers (the
    remote worker controller) treat a mid-frame cut as a protocol-level
    partition — both ``except`` clauses keep working.
    """


# ---------------------------------------------------------------------- #
# npy array blobs
# ---------------------------------------------------------------------- #
def npy_bytes(array: np.ndarray) -> bytes:
    """``array`` serialised in NumPy ``.npy`` format."""
    buf = io.BytesIO()
    np.save(buf, np.ascontiguousarray(array), allow_pickle=False)
    return buf.getvalue()


def array_from_npy(blob: bytes) -> np.ndarray:
    """Parse a ``.npy`` blob (no pickles accepted)."""
    try:
        return np.load(io.BytesIO(blob), allow_pickle=False)
    except Exception as exc:
        raise ProtocolError(f"invalid npy payload: {exc}") from exc


# ---------------------------------------------------------------------- #
# Payload container (magic-independent)
# ---------------------------------------------------------------------- #
def encode_payload(
    meta: dict, arrays: Optional[Dict[str, np.ndarray]] = None
) -> bytes:
    """Serialise one payload container (meta JSON + named npy blobs)."""
    arrays = arrays or {}
    meta = dict(meta)
    meta["arrays"] = list(arrays)
    meta_blob = json.dumps(meta).encode("utf-8")
    parts = [_U32.pack(len(meta_blob)), meta_blob]
    for name in arrays:
        blob = npy_bytes(arrays[name])
        parts.append(_U32.pack(len(blob)))
        parts.append(blob)
    return b"".join(parts)


def decode_payload(blob: bytes) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Parse one payload container → ``(meta, {name: array})``.

    Strict: truncated length prefixes, blobs running past the payload or
    trailing garbage are all :class:`ProtocolError` — a framing bug must
    not silently decode to a partial request.
    """

    def take(n: int, what: str) -> bytes:
        nonlocal offset
        if offset + n > len(blob):
            raise ProtocolError(f"truncated payload while reading {what}")
        piece = blob[offset : offset + n]
        offset += n
        return piece

    offset = 0
    (meta_len,) = _U32.unpack(take(4, "meta length"))
    try:
        meta = json.loads(take(meta_len, "meta JSON").decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid payload meta: {exc}") from exc
    if not isinstance(meta, dict):
        raise ProtocolError("payload meta must be a JSON object")
    names = meta.get("arrays", [])
    if not isinstance(names, list):
        raise ProtocolError("meta 'arrays' must be a list of names")
    arrays: Dict[str, np.ndarray] = {}
    for name in names:
        (blob_len,) = _U32.unpack(take(4, f"length of array {name!r}"))
        arrays[str(name)] = array_from_npy(take(blob_len, f"array {name!r}"))
    if offset != len(blob):
        raise ProtocolError(
            f"{len(blob) - offset} trailing bytes after payload arrays"
        )
    return meta, arrays


def error_payload(status: int, message: str) -> bytes:
    """The standard error payload both protocols answer failures with."""
    return encode_payload({"status": status, "error": message})


def error_from_meta(meta: dict) -> ReproError:
    """Rehydrate the typed serving error an error payload describes."""
    return serve_error_for_status(
        int(meta.get("status", 500)), str(meta.get("error", ""))
    )


# ---------------------------------------------------------------------- #
# Frame codec (per-protocol magic + version)
# ---------------------------------------------------------------------- #
class FrameCodec:
    """Frame pack/unpack/read for one protocol's magic and version.

    One instance per protocol (module-level constant); both async readers
    (asyncio stream servers) and blocking readers (socket clients, the
    worker agent) are provided so the two sides of a connection can never
    drift in their framing.
    """

    header = FRAME_HEADER

    def __init__(self, magic: bytes, version: int) -> None:
        if len(magic) != 2:
            raise ValueError(f"frame magic must be 2 bytes, got {magic!r}")
        self.magic = magic
        self.version = version

    # ------------------------------------------------------------------ #
    def pack_frame(self, opcode: int, request_id: int, payload: bytes) -> bytes:
        """One serialised frame: fixed header + payload."""
        return (
            self.header.pack(
                self.magic, self.version, opcode, request_id, len(payload)
            )
            + payload
        )

    def unpack_header(self, blob: bytes) -> Tuple[int, int, int]:
        """Parse a header → ``(opcode, request_id, payload_length)``.

        Raises :class:`ProtocolError` on bad magic or version — the caller
        cannot trust anything after a framing failure, so it must close.
        """
        magic, version, opcode, request_id, length = self.header.unpack(blob)
        if magic != self.magic:
            raise ProtocolError(f"bad frame magic {magic!r}")
        if version != self.version:
            raise ProtocolError(
                f"unsupported wire version {version} (speaking {self.version})"
            )
        return opcode, request_id, length

    # ------------------------------------------------------------------ #
    async def read_frame_async(
        self, reader: asyncio.StreamReader, *, max_payload: int
    ) -> Optional[Tuple[int, int, bytes]]:
        """One frame off an asyncio reader; ``None`` on clean EOF.

        EOF mid-frame (header or payload) is a :class:`ProtocolError` —
        only a frame boundary is a legal place to hang up.
        """
        try:
            header = await reader.readexactly(self.header.size)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise ProtocolError("truncated frame header") from exc
        opcode, request_id, length = self.unpack_header(header)
        if length > max_payload:
            raise ProtocolError(
                f"frame payload of {length} bytes exceeds the {max_payload} cap",
                status=413,
            )
        try:
            payload = await reader.readexactly(length) if length else b""
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError("truncated frame payload") from exc
        return opcode, request_id, payload

    def read_frame(
        self, rfile, *, max_payload: Optional[int] = None
    ) -> Optional[Tuple[int, int, bytes]]:
        """One frame off a blocking binary file; ``None`` on clean EOF.

        Mirrors :meth:`read_frame_async` exactly: mid-frame EOF raises
        :class:`ProtocolError` so a peer dying between frames (legal) and
        one dying mid-frame (a partition or crash) stay distinguishable.
        ``socket.timeout`` from the underlying socket propagates — the
        caller owns liveness policy.
        """
        header = _read_exact(rfile, self.header.size, "frame header", eof_ok=True)
        if header is None:
            return None
        opcode, request_id, length = self.unpack_header(header)
        if max_payload is not None and length > max_payload:
            raise ProtocolError(
                f"frame payload of {length} bytes exceeds the {max_payload} cap",
                status=413,
            )
        payload = (
            _read_exact(rfile, length, "frame payload") if length else b""
        )
        return opcode, request_id, payload


def _read_exact(rfile, n: int, what: str, *, eof_ok: bool = False):
    """Read exactly ``n`` bytes from a blocking binary file.

    Clean EOF before the first byte returns ``None`` when ``eof_ok``;
    EOF anywhere else raises :class:`ProtocolError`.
    """
    chunks = []
    remaining = n
    while remaining:
        chunk = rfile.read(remaining)
        if not chunk:
            if eof_ok and remaining == n:
                return None
            raise FrameEOFError(f"connection closed while reading {what}")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
