"""Experiment: Table VII — SpMM specialisation of FusedMM vs the vendor SpMM.

The paper compares the SpMM specialisation of FusedMM (the GCN row of
Table III) against Intel MKL's SpMM, single-threaded and with all cores,
for d ∈ {64, 128, 256} on Ogbprot., Youtube and Orkut, and finds the two
comparable — the point being that the general-purpose fused kernel matches
a dedicated vendor SpMM on the one pattern where a vendor kernel exists.

MKL is unavailable offline; the vendor stand-in is SciPy's compiled CSR
SpMM (see :mod:`repro.baselines.mkl_like`).  The expectation for this
substrate is therefore different in absolute terms — a compiled C kernel
against NumPy-level blocking — but the qualitative claim under test is the
same: the fused SpMM stays within a small constant factor of the vendor
kernel rather than being orders of magnitude away (as the naive per-row
Python reference would be).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..baselines.mkl_like import InspectorExecutorSpMM, scipy_available
from ..bench.tables import format_table
from ..core.specialized import spmm_kernel
from ..graphs.datasets import load_dataset
from ..graphs.features import random_features
from ..perf.timer import time_kernel

__all__ = ["PAPER_TABLE7", "run", "main"]

#: Paper Table VII kernel times in seconds (single thread / 48 threads).
PAPER_TABLE7: List[Dict[str, object]] = [
    {"graph": "ogbprot", "method": "MKL", "d": 64, "t1": 1.017, "t48": 0.034},
    {"graph": "ogbprot", "method": "FusedMM", "d": 64, "t1": 0.951, "t48": 0.031},
    {"graph": "ogbprot", "method": "MKL", "d": 128, "t1": 2.310, "t48": 0.094},
    {"graph": "ogbprot", "method": "FusedMM", "d": 128, "t1": 1.990, "t48": 0.075},
    {"graph": "ogbprot", "method": "MKL", "d": 256, "t1": 5.318, "t48": 0.264},
    {"graph": "ogbprot", "method": "FusedMM", "d": 256, "t1": 4.125, "t48": 0.336},
    {"graph": "youtube", "method": "MKL", "d": 64, "t1": 0.142, "t48": 0.012},
    {"graph": "youtube", "method": "FusedMM", "d": 64, "t1": 0.132, "t48": 0.015},
    {"graph": "youtube", "method": "MKL", "d": 128, "t1": 0.310, "t48": 0.031},
    {"graph": "youtube", "method": "FusedMM", "d": 128, "t1": 0.261, "t48": 0.028},
    {"graph": "youtube", "method": "MKL", "d": 256, "t1": 0.606, "t48": 0.071},
    {"graph": "youtube", "method": "FusedMM", "d": 256, "t1": 0.524, "t48": 0.082},
    {"graph": "orkut", "method": "MKL", "d": 64, "t1": 6.336, "t48": 0.380},
    {"graph": "orkut", "method": "FusedMM", "d": 64, "t1": 5.876, "t48": 0.389},
    {"graph": "orkut", "method": "MKL", "d": 128, "t1": 14.356, "t48": 0.852},
    {"graph": "orkut", "method": "FusedMM", "d": 128, "t1": 11.897, "t48": 0.828},
    {"graph": "orkut", "method": "MKL", "d": 256, "t1": 29.348, "t48": 1.961},
    {"graph": "orkut", "method": "FusedMM", "d": 256, "t1": 23.292, "t48": 2.775},
]

DEFAULT_GRAPHS = ("ogbprot", "youtube", "orkut")
FAST_DIMS = (64, 128)
FULL_DIMS = (64, 128, 256)


def run(
    *,
    graphs: Sequence[str] = DEFAULT_GRAPHS,
    dims: Iterable[int] | None = None,
    full: bool = False,
    scale: float = 1.0,
    repeats: int = 5,
    num_threads: int = 1,
) -> List[Dict]:
    """Time the FusedMM SpMM specialisation against the vendor SpMM.

    Each row reports both kernels' mean seconds and the ratio
    ``fusedmm / vendor`` (lower is better; 1.0 means parity, the paper's
    finding)."""
    dims = tuple(dims) if dims is not None else (FULL_DIMS if full else FAST_DIMS)
    rows: List[Dict] = []
    vendor_ok = scipy_available()
    for graph_name in graphs:
        graph = load_dataset(graph_name, scale=scale)
        A = graph.adjacency
        for d in dims:
            Y = random_features(A.ncols, int(d), seed=1)
            fused_t = time_kernel(
                spmm_kernel, A, Y, num_threads=num_threads, repeats=repeats
            ).mean
            row: Dict[str, object] = {
                "graph": graph_name,
                "d": int(d),
                "fusedmm_spmm_s": fused_t,
            }
            if vendor_ok:
                handle = InspectorExecutorSpMM(A)
                vendor_t = time_kernel(handle, Y, repeats=repeats).mean
                row["vendor_spmm_s"] = vendor_t
                row["fused_over_vendor"] = fused_t / max(vendor_t, 1e-12)
            rows.append(row)
    return rows


def main(full: bool = False) -> None:
    """Print the paper's Table VII and the regenerated comparison."""
    print(format_table(PAPER_TABLE7, title="Table VII (paper, seconds)"))
    print()
    print(
        format_table(
            run(full=full),
            title="Table VII (this reproduction: FusedMM SpMM specialisation vs SciPy vendor SpMM)",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
