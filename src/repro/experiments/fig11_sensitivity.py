"""Experiment: Fig. 11 — parameter sensitivity.

Fig. 11(a): FusedMM-over-DGL speedup on RMAT graphs with 100K vertices as
the average degree grows from 10 to 140 (the speedup increases with
density, for both the FR model and graph embedding).

Fig. 11(b): kernel time of FusedMM and DGL on the Flickr graph as the
feature dimension grows from 64 to 1024 (both grow with d, FusedMM stays
faster everywhere and the gap widens).

Both sweeps are regenerated here with the package's own RMAT generator and
the synthetic Flickr twin.  The vertex count of the degree sweep is scaled
down (configurable) so the whole figure regenerates quickly; the property
under test — the monotone trends — does not depend on the absolute size.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..bench.harness import compare_kernels
from ..bench.sweep import degree_sweep_graphs, dimension_sweep
from ..bench.tables import format_table
from ..graphs.datasets import load_dataset

__all__ = ["PAPER_FIG11_SHAPE", "run_degree_sweep", "run_dimension_sweep", "main"]

PAPER_FIG11_SHAPE = (
    "Fig. 11(a): the FusedMM-over-DGL speedup increases with the average degree "
    "(roughly 8x at degree 20 to 16x at degree 140 for the FR model). "
    "Fig. 11(b): both kernels slow down as d grows on Flickr; FusedMM is faster for "
    "every d and the gap widens with d."
)

FAST_DEGREES = (4, 8, 16, 32)
FULL_DEGREES = (10, 20, 40, 80, 140)
FAST_DIMS = (64, 128, 256)
FULL_DIMS = (64, 128, 256, 512, 1024)


def run_degree_sweep(
    *,
    num_vertices: int = 20000,
    avg_degrees: Sequence[float] | None = None,
    applications: Sequence[str] = ("fr_layout", "sigmoid_embedding"),
    d: int = 128,
    full: bool = False,
    repeats: int = 2,
    seed: int = 0,
) -> List[Dict]:
    """Fig. 11(a): speedup over the unfused baseline vs average degree."""
    degrees = tuple(avg_degrees) if avg_degrees is not None else (
        FULL_DEGREES if full else FAST_DEGREES
    )
    rows: List[Dict] = []
    for item in degree_sweep_graphs(num_vertices, degrees, seed=seed):
        for pattern in applications:
            row = compare_kernels(
                f"rmat-deg{item.target_avg_degree:g}",
                item.graph,
                d,
                pattern=pattern,
                app_name=pattern,
                repeats=repeats,
                include_generic=False,
            )
            row["target_avg_degree"] = item.target_avg_degree
            row["realised_avg_degree"] = round(item.realised_avg_degree, 2)
            rows.append(row)
    return rows


def run_dimension_sweep(
    *,
    graph: str = "flickr",
    dims: Sequence[int] | None = None,
    pattern: str = "sigmoid_embedding",
    full: bool = False,
    scale: float = 1.0,
    repeats: int = 2,
) -> List[Dict]:
    """Fig. 11(b): kernel time vs feature dimension on Flickr."""
    dims = dimension_sweep(dims if dims is not None else (FULL_DIMS if full else FAST_DIMS))
    g = load_dataset(graph, scale=scale)
    rows: List[Dict] = []
    for d in dims:
        row = compare_kernels(
            graph,
            g.adjacency,
            d,
            pattern=pattern,
            app_name="embedding",
            repeats=repeats,
            include_generic=False,
        )
        rows.append(row)
    return rows


def main(full: bool = False) -> None:
    """Print both sensitivity sweeps."""
    print(PAPER_FIG11_SHAPE)
    print()
    print(format_table(run_degree_sweep(full=full), title="Fig. 11(a) — speedup vs average degree (RMAT)"))
    print()
    print(format_table(run_dimension_sweep(full=full), title="Fig. 11(b) — kernel time vs dimension (Flickr twin)"))


if __name__ == "__main__":  # pragma: no cover
    main()
