"""Experiment: embedding quality (Section V.D accuracy check).

The paper verifies that FusedMM changes nothing about the *result* of the
computation: Force2Vec trained with FusedMM kernels reaches the same
F1-micro node-classification scores as the original implementation — 0.78
on Cora and 0.79 on Pubmed.

This module runs the same check on the synthetic citation-graph twins:
train Force2Vec once with the fused backend and once with the unfused
(DGL-style) backend from the same seed, evaluate both embeddings with the
logistic-regression protocol of :mod:`repro.apps.classify`, and report the
two F1 scores.  The claim reproduced is the *equality* of the two backends
(they execute the same mathematics); the absolute F1 depends on the
synthetic graph's community strength and the training budget and is
reported alongside the paper's numbers in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..apps.classify import evaluate_embeddings
from ..apps.force2vec import Force2Vec, Force2VecConfig
from ..bench.tables import format_table
from ..graphs.datasets import load_dataset

__all__ = ["PAPER_F1", "run", "main"]

#: F1-micro scores reported in Section V.D of the paper.
PAPER_F1: Dict[str, float] = {"cora": 0.78, "pubmed": 0.79}


def run(
    *,
    graphs: Sequence[str] = ("cora", "pubmed"),
    backends: Sequence[str] = ("fused", "unfused"),
    dim: int = 64,
    epochs: int = 40,
    learning_rate: float = 0.1,
    scale: float = 1.0,
    seed: int = 0,
    train_fraction: float = 0.5,
) -> List[Dict]:
    """Train Force2Vec per backend and evaluate node classification."""
    rows: List[Dict] = []
    for graph_name in graphs:
        graph = load_dataset(graph_name, scale=scale)
        if graph.labels is None:
            continue
        for backend in backends:
            config = Force2VecConfig(
                dim=dim,
                epochs=epochs,
                learning_rate=learning_rate,
                seed=seed,
                backend=backend,
            )
            model = Force2Vec(graph, config)
            embeddings = model.train()
            metrics = evaluate_embeddings(
                embeddings, graph.labels, train_fraction=train_fraction, seed=seed
            )
            rows.append(
                {
                    "graph": graph_name,
                    "backend": backend,
                    "f1_micro": round(metrics["f1_micro"], 4),
                    "f1_macro": round(metrics["f1_macro"], 4),
                    "paper_f1_micro": PAPER_F1.get(graph_name),
                    "epochs": epochs,
                    "dim": dim,
                    "seconds_per_epoch": round(model.average_epoch_seconds(), 4),
                }
            )
    return rows


def main() -> None:
    """Print the accuracy comparison."""
    print(
        format_table(
            run(),
            title="Section V.D — Force2Vec embedding quality (F1-micro), fused vs unfused backends",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
