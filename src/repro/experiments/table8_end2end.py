"""Experiment: Table VIII — end-to-end Force2Vec training time per epoch.

The paper trains the Force2Vec graph-embedding algorithm end to end on
Cora and Pubmed (d = 128, batch size 256, 800 epochs) with three kernel
implementations — PyTorch (dense tensors), DGL (unfused SDDMM + SpMM) and
FusedMM — and reports per-epoch time, with FusedMM 25–28× faster than DGL
and 45–49× faster than PyTorch.

This module runs the same three-backend comparison with this package's
:class:`~repro.apps.force2vec.Force2Vec` trainer.  The backend strings map
as: ``dense`` → PyTorch row, ``unfused`` → DGL row, ``fused`` → FusedMM
row.  Only a few epochs are timed (per-epoch time is stable), and the
embedding dimension/batch size default to the paper's values.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..apps.force2vec import Force2Vec, Force2VecConfig
from ..bench.tables import format_table
from ..graphs.datasets import load_dataset

__all__ = ["PAPER_TABLE8", "BACKEND_LABELS", "run", "main"]

#: Paper Table VIII: per-epoch seconds and speedup of FusedMM over each method.
PAPER_TABLE8: List[Dict[str, object]] = [
    {"graph": "cora", "method": "PyTorch", "seconds_per_epoch": 0.342, "slowdown_vs_fusedmm": 48.9},
    {"graph": "cora", "method": "DGL", "seconds_per_epoch": 0.177, "slowdown_vs_fusedmm": 25.3},
    {"graph": "cora", "method": "FusedMM", "seconds_per_epoch": 0.007, "slowdown_vs_fusedmm": 1.0},
    {"graph": "pubmed", "method": "PyTorch", "seconds_per_epoch": 2.590, "slowdown_vs_fusedmm": 45.4},
    {"graph": "pubmed", "method": "DGL", "seconds_per_epoch": 1.415, "slowdown_vs_fusedmm": 28.3},
    {"graph": "pubmed", "method": "FusedMM", "seconds_per_epoch": 0.057, "slowdown_vs_fusedmm": 1.0},
]

#: Mapping from this package's backend names to the paper's method labels.
BACKEND_LABELS: Dict[str, str] = {
    "dense": "PyTorch (dense)",
    "unfused": "DGL (unfused)",
    "fused": "FusedMM",
}


def run(
    *,
    graphs: Sequence[str] = ("cora", "pubmed"),
    backends: Sequence[str] = ("dense", "unfused", "fused"),
    dim: int = 128,
    batch_size: int = 256,
    epochs: int = 2,
    scale: float = 1.0,
    seed: int = 0,
) -> List[Dict]:
    """Time Force2Vec epochs for each backend on each graph.

    Returns one row per (graph, backend) with the mean per-epoch seconds
    and the slowdown relative to the fused backend on the same graph.
    """
    rows: List[Dict] = []
    for graph_name in graphs:
        graph = load_dataset(graph_name, scale=scale)
        per_backend: Dict[str, float] = {}
        for backend in backends:
            config = Force2VecConfig(
                dim=dim,
                batch_size=batch_size,
                epochs=epochs,
                seed=seed,
                backend=backend,
            )
            model = Force2Vec(graph, config)
            model.train()
            per_backend[backend] = model.average_epoch_seconds()
        fused_time = per_backend.get("fused", min(per_backend.values()))
        for backend in backends:
            rows.append(
                {
                    "graph": graph_name,
                    "method": BACKEND_LABELS.get(backend, backend),
                    "seconds_per_epoch": per_backend[backend],
                    "slowdown_vs_fusedmm": per_backend[backend] / max(fused_time, 1e-12),
                }
            )
    return rows


def main() -> None:
    """Print the paper's Table VIII and the regenerated comparison."""
    print(format_table(PAPER_TABLE8, title="Table VIII (paper)"))
    print()
    print(format_table(run(), title="Table VIII (this reproduction)"))


if __name__ == "__main__":  # pragma: no cover
    main()
