"""Experiment: Fig. 9 — kernel time on the AMD EPYC server.

Same structure as :mod:`repro.experiments.fig8_arm` but for the AMD EPYC
7551 platform and the two applications the paper shows there (FR model and
graph embedding), with FusedMM speedups of roughly 1.5–11.4×.  See the ARM
module and DESIGN.md for the measured-plus-modelled substitution.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..bench.tables import format_table
from ..perf.machine import MACHINES
from .fig8_arm import run as _run_on_machine

__all__ = ["PAPER_FIG9_SPEEDUPS", "run", "main", "MACHINE_KEY"]

MACHINE_KEY = "amd_epyc_7551"

#: FusedMM-over-DGL speedups read off the paper's Fig. 9 bars (d=128).
PAPER_FIG9_SPEEDUPS: Dict[tuple, float] = {
    ("harvard", "fr"): 11.4,
    ("flickr", "fr"): 5.9,
    ("amazon", "fr"): 2.7,
    ("youtube", "fr"): 5.6,
    ("harvard", "embedding"): 3.6,
    ("flickr", "embedding"): 2.6,
    ("amazon", "embedding"): 1.5,
    ("youtube", "embedding"): 4.8,
}

DEFAULT_GRAPHS = ("harvard", "flickr", "amazon", "youtube")
DEFAULT_APPS = ("fr", "embedding")


def run(
    *,
    graphs: Sequence[str] = DEFAULT_GRAPHS,
    applications: Sequence[str] = DEFAULT_APPS,
    d: int = 128,
    scale: float = 1.0,
    repeats: int = 2,
) -> List[Dict]:
    """Measured host comparison + EPYC machine-model prediction."""
    rows = _run_on_machine(
        graphs=graphs,
        applications=applications,
        d=d,
        scale=scale,
        repeats=repeats,
        machine_key=MACHINE_KEY,
    )
    for row in rows:
        key = (row["graph"], row["app"])
        row.pop("paper_speedup", None)
        if key in PAPER_FIG9_SPEEDUPS:
            row["paper_speedup"] = PAPER_FIG9_SPEEDUPS[key]
    return rows


def main() -> None:
    """Print the regenerated Fig. 9 comparison."""
    print(
        format_table(
            run(),
            title=f"Fig. 9 — DGL vs FusedMM on {MACHINES[MACHINE_KEY].name} "
            "(host-measured speedups + machine-model prediction)",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
