"""Run every registered experiment and assemble a Markdown report.

This is the generator behind the measured sections of EXPERIMENTS.md and
behind ``python -m repro report``.  It runs each experiment at a
configurable scale (the defaults keep the full sweep under ~15 minutes on a
laptop; ``quick=True`` trims it to a smoke-test-sized pass) and renders the
paper-vs-measured comparison tables with :class:`repro.bench.report.ExperimentReport`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from ..bench.report import ExperimentReport
from ..bench.tables import format_markdown_table
from . import (
    accuracy_f1,
    ablations,
    fig7_roofline,
    fig8_arm,
    fig9_amd,
    fig10_scaling_memory,
    fig11_sensitivity,
    table5_datasets,
    table6_kernels,
    table7_spmm_mkl,
    table8_end2end,
)

__all__ = ["generate_report"]


def generate_report(
    output: Union[str, Path] = "EXPERIMENTS_GENERATED.md",
    *,
    scale: float = 0.5,
    quick: bool = False,
) -> Path:
    """Run all experiments and write the Markdown report to ``output``.

    Parameters
    ----------
    scale:
        Dataset scale factor applied to the timing experiments.
    quick:
        Use the smallest workable configurations (for CI smoke runs).
    """
    scale = min(scale, 0.25) if quick else scale
    repeats = 1 if quick else 2
    report = ExperimentReport("FusedMM reproduction — regenerated experiment results")

    # Table V
    t5 = table5_datasets.run(scale=1.0 if not quick else 0.25)
    report.add_comparison(
        "Table V — datasets",
        t5["paper"],
        t5["measured"],
        note="Synthetic twins; the large graphs are scaled down (scale_factor column).",
    )

    # Table VI
    t6 = table6_kernels.run(
        graphs=("ogbprot", "youtube") if quick else ("ogbprot", "youtube", "orkut"),
        dims=(32,) if quick else (32, 128),
        scale=scale,
        repeats=repeats,
        include_generic=not quick,
    )
    report.add_section(
        "Table VI — kernel time (DGL-style unfused vs FusedMM vs FusedMMopt)",
        format_markdown_table(t6),
    )

    # Table VII
    t7 = table7_spmm_mkl.run(
        graphs=("youtube",) if quick else ("ogbprot", "youtube"),
        dims=(64,) if quick else (64, 128),
        scale=scale,
        repeats=repeats,
    )
    report.add_comparison(
        "Table VII — SpMM specialisation vs vendor SpMM",
        table7_spmm_mkl.PAPER_TABLE7,
        t7,
        note="The vendor stand-in is SciPy's compiled CSR SpMM (MKL unavailable offline).",
    )

    # Table VIII
    t8 = table8_end2end.run(
        graphs=("cora",) if quick else ("cora", "pubmed"),
        epochs=1 if quick else 2,
        dim=64 if quick else 128,
        scale=scale if not quick else 0.5,
    )
    report.add_comparison(
        "Table VIII — end-to-end Force2Vec per-epoch time",
        table8_end2end.PAPER_TABLE8,
        t8,
    )

    # Fig. 7
    f7 = fig7_roofline.run(
        graphs=("youtube",) if quick else ("ogbprot", "youtube", "orkut"),
        d=64 if quick else 128,
        scale=scale,
        repeats=repeats,
    )
    report.add_comparison("Fig. 7 — roofline", fig7_roofline.PAPER_FIG7, f7)

    # Figs. 8 and 9
    f8 = fig8_arm.run(
        graphs=("amazon",) if quick else ("harvard", "flickr", "amazon", "youtube"),
        d=64 if quick else 128,
        scale=scale,
        repeats=1,
    )
    report.add_section("Fig. 8 — ARM ThunderX (measured host speedups + machine model)", format_markdown_table(f8))
    f9 = fig9_amd.run(
        graphs=("amazon",) if quick else ("harvard", "flickr", "amazon", "youtube"),
        d=64 if quick else 128,
        scale=scale,
        repeats=1,
    )
    report.add_section("Fig. 9 — AMD EPYC (measured host speedups + machine model)", format_markdown_table(f9))

    # Fig. 10
    f10 = fig10_scaling_memory.run_scaling(
        graph="youtube" if quick else "orkut", d=64 if quick else 256, scale=scale, repeats=1
    )
    report.add_section(
        "Fig. 10(a) — strong scaling",
        "Measured host sweep:\n\n"
        + format_markdown_table(f10["measured"])
        + "\n\nModelled 1-32 thread curve (calibrated Amdahl/bandwidth model):\n\n"
        + format_markdown_table(f10["modelled"])
        + "\n\nPaper (Orkut, d=256):\n\n"
        + format_markdown_table(f10["paper"]),
    )
    f10b = fig10_scaling_memory.run_memory(scale=scale)
    report.add_section("Fig. 10(b) — memory consumption (FR model)", format_markdown_table(f10b))

    # Fig. 11
    f11a = fig11_sensitivity.run_degree_sweep(
        num_vertices=4000 if quick else 20000,
        avg_degrees=(4, 16) if quick else (4, 8, 16, 32),
        repeats=1,
    )
    f11b = fig11_sensitivity.run_dimension_sweep(
        dims=(64, 128) if quick else (64, 128, 256), scale=scale, repeats=repeats
    )
    report.add_section("Fig. 11(a) — speedup vs average degree (RMAT)", format_markdown_table(f11a))
    report.add_section("Fig. 11(b) — kernel time vs dimension (Flickr twin)", format_markdown_table(f11b))

    # Accuracy
    acc = accuracy_f1.run(
        graphs=("cora",) if quick else ("cora", "pubmed"),
        epochs=5 if quick else 40,
        dim=32 if quick else 64,
        scale=1.0,
    )
    report.add_section("Section V.D — embedding quality (F1-micro)", format_markdown_table(acc))

    # Ablations
    if not quick:
        report.add_section(
            "Ablation — backend ladder",
            format_markdown_table(ablations.run_backend_ladder(scale=min(scale, 0.5))),
        )
        report.add_section(
            "Ablation — blocking strategy crossover",
            format_markdown_table(ablations.run_strategy_crossover()),
        )

    return report.write(output)


if __name__ == "__main__":  # pragma: no cover
    generate_report()
