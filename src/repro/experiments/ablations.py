"""Ablations of the design choices DESIGN.md calls out.

These experiments are not tables of the paper; they probe the design
decisions the paper motivates qualitatively:

* **backend ladder** — generic (Alg. 1) vs optimized (blocked) vs
  specialized vs generated kernels on one problem, quantifying how much
  each optimization level contributes (the paper's FusedMM vs FusedMMopt
  split, refined);
* **block-size sweep** — sensitivity of the edge-blocked kernel to its
  block size (the register/tile-blocking analogue the autotuner searches);
* **strategy crossover** — row-blocked vs edge-blocked kernels as the
  average degree changes, validating the dispatcher's degree-based
  heuristic;
* **partition balance** — nnz-balanced 1-D partitioning vs naive equal-row
  partitioning on a skewed graph.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..bench.tables import format_table
from ..core.autotune import DEFAULT_BLOCK_CANDIDATES
from ..core.codegen import compile_kernel
from ..core.fused import fusedmm
from ..core.optimized import fusedmm_edgeblocked, fusedmm_rowblocked
from ..core.partition import part1d, partition_balance
from ..core.patterns import get_pattern
from ..core.specialized import get_specialized_kernel
from ..graphs.datasets import load_dataset
from ..graphs.generators import rmat
from ..graphs.features import random_features
from ..perf.timer import time_kernel

__all__ = [
    "run_backend_ladder",
    "run_block_size_sweep",
    "run_strategy_crossover",
    "run_partition_balance",
    "main",
]


def run_backend_ladder(
    *,
    graph: str = "youtube",
    d: int = 128,
    pattern: str = "sigmoid_embedding",
    scale: float = 0.5,
    repeats: int = 3,
) -> List[Dict]:
    """Time every backend on the same problem (generic timed on a sample)."""
    g = load_dataset(graph, scale=scale)
    A = g.adjacency
    X = random_features(A.nrows, d, seed=0)
    resolved = get_pattern(pattern).resolved()
    rows: List[Dict] = []

    sample_rows = max(1, min(A.nrows, 2000))
    A_sample = A.row_slice(0, sample_rows)
    generic_sample_t = time_kernel(
        fusedmm, A_sample, X[:sample_rows], X, pattern=pattern, backend="generic",
        repeats=1, warmup=0,
    ).mean
    generic_t = generic_sample_t * (A.nnz / max(A_sample.nnz, 1))
    rows.append({"backend": "generic (Alg. 1)", "seconds": generic_t, "extrapolated": True})

    for strategy, fn in (("optimized-row", fusedmm_rowblocked), ("optimized-edge", fusedmm_edgeblocked)):
        t = time_kernel(fn, A, X, X, pattern=pattern, repeats=repeats).mean
        rows.append({"backend": strategy, "seconds": t, "extrapolated": False})

    generated = compile_kernel(resolved)
    t = time_kernel(generated, A, X, X, repeats=repeats).mean
    rows.append({"backend": "generated", "seconds": t, "extrapolated": False})

    specialized = get_specialized_kernel(resolved)
    if specialized is not None:
        t = time_kernel(specialized, A, X, X, repeats=repeats).mean
        rows.append({"backend": "specialized", "seconds": t, "extrapolated": False})

    from ..core.jit import jit_available, jit_supports_pattern

    if jit_available() and jit_supports_pattern(resolved):
        t = time_kernel(
            fusedmm, A, X, X, pattern=pattern, backend="jit", repeats=repeats
        ).mean
        rows.append({"backend": "jit", "seconds": t, "extrapolated": False})

    base = rows[0]["seconds"]
    for row in rows:
        row["speedup_vs_generic"] = round(base / max(row["seconds"], 1e-12), 2)
    return rows


def run_block_size_sweep(
    *,
    graph: str = "youtube",
    d: int = 128,
    pattern: str = "sigmoid_embedding",
    block_sizes: Sequence[int] = DEFAULT_BLOCK_CANDIDATES,
    scale: float = 0.5,
    repeats: int = 3,
) -> List[Dict]:
    """Sensitivity of the edge-blocked kernel to its block size."""
    g = load_dataset(graph, scale=scale)
    A = g.adjacency
    X = random_features(A.nrows, d, seed=0)
    rows = []
    for block in block_sizes:
        t = time_kernel(
            fusedmm_edgeblocked, A, X, X, pattern=pattern, block_size=int(block), repeats=repeats
        ).mean
        rows.append({"block_size": int(block), "seconds": t})
    best = min(r["seconds"] for r in rows)
    for r in rows:
        r["slowdown_vs_best"] = round(r["seconds"] / max(best, 1e-12), 3)
    return rows


def run_strategy_crossover(
    *,
    num_vertices: int = 8000,
    avg_degrees: Sequence[float] = (2, 8, 32, 128),
    d: int = 64,
    pattern: str = "sigmoid_embedding",
    repeats: int = 2,
    seed: int = 0,
) -> List[Dict]:
    """Row- vs edge-blocked kernel time as the average degree grows."""
    rows = []
    for i, degree in enumerate(avg_degrees):
        A = rmat(num_vertices, int(num_vertices * degree / 2), seed=seed + i)
        X = random_features(A.nrows, d, seed=0)
        t_row = time_kernel(
            fusedmm_rowblocked, A, X, X, pattern=pattern, repeats=repeats
        ).mean
        t_edge = time_kernel(
            fusedmm_edgeblocked, A, X, X, pattern=pattern, repeats=repeats
        ).mean
        rows.append(
            {
                "target_avg_degree": degree,
                "realised_avg_degree": round(A.avg_degree(), 2),
                "row_blocked_s": t_row,
                "edge_blocked_s": t_edge,
                "edge_faster": bool(t_edge < t_row),
            }
        )
    return rows


def run_partition_balance(
    *,
    graph: str = "youtube",
    num_parts: int = 8,
    scale: float = 1.0,
    sort_by_degree: bool = True,
) -> List[Dict]:
    """nnz-balanced PART1D vs naive equal-row partitioning on a skewed graph.

    ``sort_by_degree`` reorders rows by decreasing degree first — the
    ordering many real graph dumps ship with (hubs first), and the case
    where naive equal-row partitioning is maximally unbalanced while
    PART1D stays near 1.0.
    """
    g = load_dataset(graph, scale=scale)
    A = g.adjacency
    if sort_by_degree:
        order = np.argsort(-A.row_degrees())
        A = A.select_rows(order)
    balanced = part1d(A, num_parts)
    # Naive equal-row partitioning for comparison.
    bounds = np.linspace(0, A.nrows, num_parts + 1).astype(np.int64)
    from ..core.partition import RowPartition

    naive = [
        RowPartition(int(bounds[i]), int(bounds[i + 1]), int(A.indptr[bounds[i + 1]] - A.indptr[bounds[i]]))
        for i in range(num_parts)
    ]
    return [
        {
            "scheme": "part1d (nnz-balanced)",
            "parts": num_parts,
            "max_nnz": max(p.nnz for p in balanced),
            "balance_factor": round(partition_balance(balanced), 3),
        },
        {
            "scheme": "equal rows (naive)",
            "parts": num_parts,
            "max_nnz": max(p.nnz for p in naive),
            "balance_factor": round(partition_balance(naive), 3),
        },
    ]


def main() -> None:
    """Print all ablations."""
    print(format_table(run_backend_ladder(), title="Ablation: backend ladder"))
    print()
    print(format_table(run_block_size_sweep(), title="Ablation: edge-block size sweep"))
    print()
    print(format_table(run_strategy_crossover(), title="Ablation: row- vs edge-blocking crossover"))
    print()
    print(format_table(run_partition_balance(), title="Ablation: partition balance"))


if __name__ == "__main__":  # pragma: no cover
    main()
