"""Experiment: Table V — dataset statistics.

Regenerates the dataset table (vertices, edges, average degree, maximum
degree) from the synthetic dataset registry and prints it next to the
paper's reported statistics, so the scale factors applied to the big graphs
are visible in one place.
"""

from __future__ import annotations

from typing import Dict, List

from ..bench.tables import format_table
from ..graphs.datasets import list_datasets, load_dataset, paper_table5

__all__ = ["PAPER_TABLE5", "run", "main"]

#: The paper's Table V rows, verbatim.
PAPER_TABLE5: List[Dict[str, object]] = paper_table5()


def run(*, scale: float = 1.0, feature_dim: int | None = None) -> Dict[str, List[Dict]]:
    """Generate every registered dataset and collect its statistics.

    Returns ``{"paper": [...], "measured": [...]}`` with one row per graph.
    """
    measured = []
    for name in list_datasets():
        graph = load_dataset(name, scale=scale, feature_dim=feature_dim)
        row = graph.stats().as_row()
        row["scale_factor"] = round(float(graph.meta.get("scale_factor", 1.0)), 2)
        measured.append(row)
    return {"paper": PAPER_TABLE5, "measured": measured}


def main() -> None:
    """Print the paper and regenerated tables."""
    results = run()
    print(format_table(results["paper"], title="Table V (paper)"))
    print()
    print(format_table(results["measured"], title="Table V (synthetic registry, this reproduction)"))


if __name__ == "__main__":  # pragma: no cover
    main()
