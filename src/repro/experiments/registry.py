"""Registry of all paper experiments.

Maps a stable experiment identifier (the table/figure number in the paper)
to the module that regenerates it, its entry points and a short
description, so the benchmark harness, EXPERIMENTS.md and the command line
(`python -m repro.experiments.<module>`) stay in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from . import (
    accuracy_f1,
    ablations,
    fig7_roofline,
    fig8_arm,
    fig9_amd,
    fig10_scaling_memory,
    fig11_sensitivity,
    table5_datasets,
    table6_kernels,
    table7_spmm_mkl,
    table8_end2end,
)

__all__ = ["Experiment", "EXPERIMENTS", "list_experiments", "get_experiment"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper experiment."""

    key: str
    paper_reference: str
    description: str
    module: object
    runners: Dict[str, Callable]

    def run_all(self, **kwargs) -> Dict[str, object]:
        """Run every runner of this experiment and collect the results."""
        return {name: fn(**kwargs) for name, fn in self.runners.items()}


EXPERIMENTS: Dict[str, Experiment] = {
    "table5": Experiment(
        key="table5",
        paper_reference="Table V",
        description="Dataset statistics (synthetic registry vs paper)",
        module=table5_datasets,
        runners={"datasets": table5_datasets.run},
    ),
    "table6": Experiment(
        key="table6",
        paper_reference="Table VI",
        description="Kernel time: DGL vs FusedMM vs FusedMMopt for embedding/FR/GCN",
        module=table6_kernels,
        runners={"kernels": table6_kernels.run},
    ),
    "table7": Experiment(
        key="table7",
        paper_reference="Table VII",
        description="SpMM specialisation vs vendor (MKL-like) SpMM",
        module=table7_spmm_mkl,
        runners={"spmm": table7_spmm_mkl.run},
    ),
    "table8": Experiment(
        key="table8",
        paper_reference="Table VIII",
        description="End-to-end Force2Vec per-epoch time: PyTorch-like vs DGL-like vs FusedMM",
        module=table8_end2end,
        runners={"end2end": table8_end2end.run},
    ),
    "fig7": Experiment(
        key="fig7",
        paper_reference="Fig. 7",
        description="Roofline model: arithmetic intensity and attained GFLOP/s",
        module=fig7_roofline,
        runners={"roofline": fig7_roofline.run},
    ),
    "fig8": Experiment(
        key="fig8",
        paper_reference="Fig. 8",
        description="ARM ThunderX comparison (host-measured + machine model)",
        module=fig8_arm,
        runners={"arm": fig8_arm.run},
    ),
    "fig9": Experiment(
        key="fig9",
        paper_reference="Fig. 9",
        description="AMD EPYC comparison (host-measured + machine model)",
        module=fig9_amd,
        runners={"amd": fig9_amd.run},
    ),
    "fig10": Experiment(
        key="fig10",
        paper_reference="Fig. 10",
        description="Strong scaling and memory consumption",
        module=fig10_scaling_memory,
        runners={
            "scaling": fig10_scaling_memory.run_scaling,
            "memory": fig10_scaling_memory.run_memory,
        },
    ),
    "fig11": Experiment(
        key="fig11",
        paper_reference="Fig. 11",
        description="Sensitivity to average degree and feature dimension",
        module=fig11_sensitivity,
        runners={
            "degree": fig11_sensitivity.run_degree_sweep,
            "dimension": fig11_sensitivity.run_dimension_sweep,
        },
    ),
    "accuracy": Experiment(
        key="accuracy",
        paper_reference="Section V.D",
        description="Force2Vec embedding quality (F1-micro), fused vs unfused",
        module=accuracy_f1,
        runners={"f1": accuracy_f1.run},
    ),
    "ablations": Experiment(
        key="ablations",
        paper_reference="Sections III-IV (design choices)",
        description="Backend ladder, block-size sweep, blocking crossover, partition balance",
        module=ablations,
        runners={
            "backend_ladder": ablations.run_backend_ladder,
            "block_size": ablations.run_block_size_sweep,
            "crossover": ablations.run_strategy_crossover,
            "partition": ablations.run_partition_balance,
        },
    ),
}


def list_experiments() -> List[str]:
    """Keys of all registered experiments."""
    return sorted(EXPERIMENTS)


def get_experiment(key: str) -> Experiment:
    """Look up an experiment by key (raises ``KeyError`` with the available
    keys listed)."""
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {key!r}; available: {', '.join(list_experiments())}")
    return EXPERIMENTS[key]
