"""Paper experiments — one module per table/figure of the evaluation
section (see DESIGN.md's per-experiment index and the registry in
:mod:`repro.experiments.registry`)."""

from . import (
    ablations,
    accuracy_f1,
    fig7_roofline,
    fig8_arm,
    fig9_amd,
    fig10_scaling_memory,
    fig11_sensitivity,
    table5_datasets,
    table6_kernels,
    table7_spmm_mkl,
    table8_end2end,
)

__all__ = [
    "table5_datasets",
    "table6_kernels",
    "table7_spmm_mkl",
    "table8_end2end",
    "fig7_roofline",
    "fig8_arm",
    "fig9_amd",
    "fig10_scaling_memory",
    "fig11_sensitivity",
    "accuracy_f1",
    "ablations",
]
