"""Experiment: Table VI — kernel time for Graph Embedding, FR model and GCN.

The paper's Table VI reports, on the Intel server, the kernel time of

* DGL (unfused SDDMM + SpMM),
* FusedMM (the general, unoptimized fused kernel), and
* FusedMMopt (the SIMD-vectorized fused kernel),

for three applications (graph embedding, FR graph layout, GCN) on three
graphs (Ogbprot., Youtube, Orkut) across dimensions 32–512, together with
the FusedMMopt-over-DGL speedup.

This module regenerates the same grid on the synthetic dataset twins.  The
default ("fast") configuration trims the dimension list and uses the scaled
graphs so the whole table regenerates in minutes; ``full=True`` runs the
paper's complete dimension sweep.

Expected shape of the reproduction (see EXPERIMENTS.md for measured
numbers): the fused kernels beat the unfused pipeline everywhere, the gap
grows with d (the intermediate H the unfused pipeline writes and re-reads
grows as O(nnz·d) for FR and O(nnz) for the scalar-message patterns), and
the densest graph (ogbprot) shows the largest speedups.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..bench.harness import compare_kernels
from ..bench.tables import format_table
from ..graphs.datasets import load_dataset

__all__ = ["PAPER_SPEEDUPS", "APPLICATIONS", "run", "main"]

#: Applications of Table VI mapped to their FusedMM patterns.
APPLICATIONS: Dict[str, str] = {
    "embedding": "sigmoid_embedding",
    "fr": "fr_layout",
    "gcn": "gcn",
}

#: FusedMMopt-over-DGL speedups reported in the paper's Table VI
#: (graph, application, d) → speedup.  "×" (out-of-memory) cells are omitted.
PAPER_SPEEDUPS: Dict[tuple, float] = {
    ("ogbprot", "embedding", 32): 3.385,
    ("ogbprot", "embedding", 128): 9.488,
    ("ogbprot", "embedding", 512): 13.433,
    ("ogbprot", "fr", 32): 11.487,
    ("ogbprot", "fr", 128): 34.389,
    ("ogbprot", "gcn", 32): 7.535,
    ("ogbprot", "gcn", 128): 22.349,
    ("youtube", "embedding", 32): 4.255,
    ("youtube", "embedding", 128): 8.463,
    ("youtube", "embedding", 512): 11.647,
    ("youtube", "fr", 32): 7.899,
    ("youtube", "fr", 128): 11.174,
    ("youtube", "gcn", 32): 4.789,
    ("youtube", "gcn", 128): 5.541,
    ("orkut", "embedding", 32): 5.089,
    ("orkut", "embedding", 128): 7.202,
    ("orkut", "embedding", 512): 6.856,
    ("orkut", "fr", 32): 12.372,
    ("orkut", "fr", 128): 14.414,
    ("orkut", "gcn", 32): 6.967,
    ("orkut", "gcn", 128): 8.854,
}

DEFAULT_GRAPHS = ("ogbprot", "youtube", "orkut")
FAST_DIMS = (32, 128)
FULL_DIMS = (32, 64, 128, 256, 512)


def run(
    *,
    graphs: Sequence[str] = DEFAULT_GRAPHS,
    dims: Iterable[int] | None = None,
    applications: Sequence[str] = tuple(APPLICATIONS),
    full: bool = False,
    scale: float = 1.0,
    repeats: int = 3,
    include_generic: bool = True,
    num_threads: int = 1,
) -> List[Dict]:
    """Regenerate the Table VI grid; returns one row per
    (graph, application, dimension)."""
    dims = tuple(dims) if dims is not None else (FULL_DIMS if full else FAST_DIMS)
    rows: List[Dict] = []
    for graph_name in graphs:
        graph = load_dataset(graph_name, scale=scale)
        for app in applications:
            pattern = APPLICATIONS[app]
            for d in dims:
                row = compare_kernels(
                    graph_name,
                    graph.adjacency,
                    int(d),
                    pattern=pattern,
                    app_name=app,
                    repeats=repeats,
                    include_generic=include_generic,
                    num_threads=num_threads,
                )
                key = (graph_name, app, int(d))
                if key in PAPER_SPEEDUPS:
                    row["paper_speedup"] = PAPER_SPEEDUPS[key]
                rows.append(row)
    return rows


def main(full: bool = False) -> None:
    """Print the regenerated Table VI."""
    rows = run(full=full)
    print(
        format_table(
            rows,
            title="Table VI — kernel time (s) and FusedMMopt speedup over the unfused (DGL-style) baseline",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
