"""Experiment: Fig. 10 — strong scaling (a) and memory consumption (b).

Fig. 10(a): strong scaling of FusedMM and DGL for graph embedding on Orkut
with d = 256 — FusedMM reaches ~20× on 32 cores, DGL ~16×, and FusedMM is
faster at every thread count.

Fig. 10(b): memory consumption of the FR model on Ogbprot. as d grows from
16 to 256 — DGL's memory grows linearly with d (it stores the d-dimensional
edge messages in H) while FusedMM's stays essentially flat.

The scaling part measures the thread sweep that is possible on this host
and adds the calibrated Amdahl/bandwidth model curve for the full 1–32
range (see :mod:`repro.perf.scaling`); the memory part evaluates the
analytical byte model of Section IV.C (cross-checked elsewhere by
``tracemalloc`` measurements in the test suite).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..bench.tables import format_table
from ..core.parallel import available_threads
from ..core.specialized import sigmoid_embedding_kernel
from ..graphs.datasets import load_dataset
from ..graphs.features import random_features
from ..perf.memory import memory_model_sweep
from ..perf.scaling import modeled_scaling_curve, strong_scaling
from ..sparse import as_csr

__all__ = ["PAPER_FIG10A", "PAPER_FIG10B_SHAPE", "run_scaling", "run_memory", "main"]

#: Approximate speedups read off the paper's Fig. 10(a) (Orkut, d=256).
PAPER_FIG10A: List[Dict[str, object]] = [
    {"threads": 1, "fusedmm_speedup": 1.0, "dgl_speedup": 1.0},
    {"threads": 8, "fusedmm_speedup": 7.0, "dgl_speedup": 6.0},
    {"threads": 16, "fusedmm_speedup": 13.0, "dgl_speedup": 11.0},
    {"threads": 32, "fusedmm_speedup": 20.0, "dgl_speedup": 16.0},
]

#: The property Fig. 10(b) demonstrates.
PAPER_FIG10B_SHAPE = (
    "DGL memory grows linearly with d for the FR model (H stores d values per edge); "
    "FusedMM memory stays flat in the sparse part and grows only with the dense operands."
)


def run_scaling(
    *,
    graph: str = "orkut",
    d: int = 256,
    scale: float = 1.0,
    thread_counts: Sequence[int] | None = None,
    model_threads: Sequence[int] = (1, 2, 4, 8, 16, 32),
    repeats: int = 2,
) -> Dict[str, List[Dict]]:
    """Measured thread sweep on the host + modelled 1–32 thread curve."""
    g = load_dataset(graph, scale=scale)
    A = g.adjacency
    X = random_features(A.nrows, d, seed=0)
    max_threads = available_threads()
    if thread_counts is None:
        thread_counts = sorted({1, min(2, max_threads), min(4, max_threads)})

    def kernel(num_threads: int = 1):
        return sigmoid_embedding_kernel(A, X, X, num_threads=num_threads)

    measured = [p.as_row() for p in strong_scaling(kernel, thread_counts, repeats=repeats)]
    single = measured[0]["seconds"] if measured else 1.0
    modelled = [p.as_row() for p in modeled_scaling_curve(float(single), model_threads)]
    return {"measured": measured, "modelled": modelled, "paper": PAPER_FIG10A}


def run_memory(
    *,
    graph: str = "ogbprot",
    dims: Sequence[int] = (16, 32, 64, 128, 256),
    scale: float = 1.0,
) -> List[Dict]:
    """The Fig. 10(b) sweep: fused vs unfused memory (MB) as d grows."""
    g = load_dataset(graph, scale=scale)
    sweep = memory_model_sweep(as_csr(g.adjacency), dims, pattern="fr_layout")
    rows = []
    for d, entry in sweep.items():
        rows.append(
            {
                "d": d,
                "fusedmm_mb": round(entry["fusedmm_mb"], 2),
                "dgl_mb": round(entry["unfused_mb"], 2),
                "ratio": round(entry["unfused_mb"] / max(entry["fusedmm_mb"], 1e-9), 2),
            }
        )
    return rows


def main() -> None:
    """Print both halves of Fig. 10."""
    scaling = run_scaling()
    print(format_table(scaling["paper"], title="Fig. 10(a) (paper, Orkut d=256)"))
    print()
    print(format_table(scaling["measured"], title="Fig. 10(a) measured thread sweep (host)"))
    print()
    print(format_table(scaling["modelled"], title="Fig. 10(a) modelled 1-32 thread curve"))
    print()
    print(PAPER_FIG10B_SHAPE)
    print(format_table(run_memory(), title="Fig. 10(b) memory sweep (FR model)"))


if __name__ == "__main__":  # pragma: no cover
    main()
