"""Experiment: Fig. 7 — roofline model of FusedMM for graph embedding.

The paper plots, for Ogbprot., Youtube and Orkut at d = 128, the arithmetic
intensity of Eq. 4 against the attained GFLOP/s of the optimized FusedMM,
under a 100 GB/s STREAM-bandwidth roof, and reports e.g. 63.21 GFLOP/s
attained vs 95.27 GFLOP/s attainable for Orkut (AI ≈ 0.95).

This module regenerates the same series on the synthetic graph twins: the
AI comes from the same formula, the bandwidth roof is measured on the host
with a STREAM-triad loop, and the attained GFLOP/s comes from timing the
optimized kernel.  Absolute GFLOP/s are far below the paper's (NumPy vs
hand-vectorized C), but the qualitative orderings under test are (a) AI
grows with the graph's average degree, and (b) the attained performance is
a sizable fraction of the bandwidth-bound roof for the dense graphs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..bench.tables import format_table
from ..core.fused import fusedmm
from ..graphs.datasets import load_dataset
from ..graphs.features import random_features
from ..perf.roofline import measure_stream_bandwidth, roofline_point
from ..perf.timer import time_kernel

__all__ = ["PAPER_FIG7", "run", "main"]

#: Points reported in the paper's Fig. 7 discussion (Intel server, d=128).
PAPER_FIG7: List[Dict[str, object]] = [
    {"graph": "orkut", "AI": 0.95, "attained_gflops": 63.21, "attainable_gflops": 95.27},
    {"graph": "ogbprot", "AI": 0.99, "attained_gflops": None, "attainable_gflops": None},
    {"graph": "youtube", "AI": 0.66, "attained_gflops": None, "attainable_gflops": None},
]


def run(
    *,
    graphs: Sequence[str] = ("ogbprot", "youtube", "orkut"),
    d: int = 128,
    scale: float = 1.0,
    repeats: int = 3,
    pattern: str = "sigmoid_embedding",
) -> List[Dict]:
    """Compute the roofline points for the requested graphs."""
    bandwidth = measure_stream_bandwidth()
    rows: List[Dict] = []
    for graph_name in graphs:
        graph = load_dataset(graph_name, scale=scale)
        A = graph.adjacency
        X = random_features(A.nrows, d, seed=0)
        timing = time_kernel(
            fusedmm, A, X, pattern=pattern, backend="auto", repeats=repeats
        )
        point = roofline_point(
            graph_name, A, d, timing.mean, pattern=pattern, bandwidth_gbs=bandwidth
        )
        row = point.as_row()
        row["avg_degree"] = round(A.avg_degree(), 2)
        rows.append(row)
    return rows


def main() -> None:
    """Print the paper's Fig. 7 points and the regenerated ones."""
    print(format_table(PAPER_FIG7, title="Fig. 7 (paper, Intel server, 100 GB/s roof)"))
    print()
    print(format_table(run(), title="Fig. 7 (this reproduction, host-measured bandwidth roof)"))


if __name__ == "__main__":  # pragma: no cover
    main()
