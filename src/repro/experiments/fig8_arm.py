"""Experiment: Fig. 8 — kernel time on the ARM ThunderX server.

The paper's Fig. 8 compares DGL against FusedMM on an ARM ThunderX CN8890
for four graphs (Harvard, Flickr, Amazon, Youtube) and three applications
(FR model, graph embedding, GCN) at d = 128, reporting FusedMM speedups of
roughly 2.5–19×.

No ARM hardware is available to this reproduction, so the figure is
regenerated in two parts (the substitution is documented in DESIGN.md):

1. **measured** — the same DGL-vs-FusedMM comparison is run on the host,
   which establishes the fused-vs-unfused speedup per graph/application on
   this substrate;
2. **modelled** — the roofline machine model of
   :mod:`repro.perf.machine`, instantiated with the ThunderX profile of
   Table IV and calibrated with one host measurement, predicts the absolute
   kernel times on the ARM server for both kernels, from which the
   modelled speedup follows.

The claim under test is that the fused kernel's advantage persists across
architectures because it is rooted in memory traffic, which the ThunderX's
lower bandwidth amplifies rather than hides.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..bench.harness import compare_kernels
from ..bench.tables import format_table
from ..graphs.datasets import load_dataset
from ..perf.machine import MACHINES, calibrate_efficiency, predict_kernel_time

__all__ = ["PAPER_FIG8_SPEEDUPS", "run", "main", "MACHINE_KEY"]

MACHINE_KEY = "arm_thunderx_cn8890"

#: FusedMM-over-DGL speedups read off the paper's Fig. 8 bars (d=128).
PAPER_FIG8_SPEEDUPS: Dict[tuple, float] = {
    ("harvard", "fr"): 19.2,
    ("flickr", "fr"): 13.6,
    ("amazon", "fr"): 4.1,
    ("youtube", "fr"): 11.0,
    ("harvard", "embedding"): 7.3,
    ("flickr", "embedding"): 11.3,
    ("amazon", "embedding"): 1.4,
    ("youtube", "embedding"): 12.4,
    ("harvard", "gcn"): 18.1,
    ("flickr", "gcn"): 10.8,
    ("amazon", "gcn"): 2.5,
    ("youtube", "gcn"): 10.4,
}

APPLICATIONS = {"fr": "fr_layout", "embedding": "sigmoid_embedding", "gcn": "gcn"}
DEFAULT_GRAPHS = ("harvard", "flickr", "amazon", "youtube")


def run(
    *,
    graphs: Sequence[str] = DEFAULT_GRAPHS,
    applications: Sequence[str] = tuple(APPLICATIONS),
    d: int = 128,
    scale: float = 1.0,
    repeats: int = 2,
    machine_key: str = MACHINE_KEY,
) -> List[Dict]:
    """Measured host comparison + modelled target-machine prediction."""
    machine = MACHINES[machine_key]
    rows: List[Dict] = []
    for graph_name in graphs:
        graph = load_dataset(graph_name, scale=scale)
        A = graph.adjacency
        for app in applications:
            pattern = APPLICATIONS[app]
            measured = compare_kernels(
                graph_name,
                A,
                d,
                pattern=pattern,
                app_name=app,
                repeats=repeats,
                include_generic=False,
            )
            scalar = pattern != "fr_layout"
            # Calibrate the model once per case from the host's fused time,
            # then reuse the efficiency for both kernels on the target.
            eff = calibrate_efficiency(
                measured["fusedmmopt_s"], A, d, "intel_skylake_8160", pattern=pattern,
                fused=True, scalar_messages=scalar, num_threads=1,
            )
            t_fused = predict_kernel_time(
                A, d, machine, pattern=pattern, fused=True,
                scalar_messages=scalar, efficiency=eff,
            )
            t_unfused = predict_kernel_time(
                A, d, machine, pattern=pattern, fused=False,
                scalar_messages=scalar, efficiency=eff,
            )
            row = {
                "graph": graph_name,
                "app": app,
                "d": d,
                "host_dgl_s": measured["dgl_s"],
                "host_fusedmm_s": measured["fusedmmopt_s"],
                "host_speedup": measured["speedup_opt_vs_dgl"],
                "model_dgl_s": t_unfused,
                "model_fusedmm_s": t_fused,
                "model_speedup": t_unfused / max(t_fused, 1e-12),
            }
            key = (graph_name, app)
            if key in PAPER_FIG8_SPEEDUPS:
                row["paper_speedup"] = PAPER_FIG8_SPEEDUPS[key]
            rows.append(row)
    return rows


def main() -> None:
    """Print the regenerated Fig. 8 comparison."""
    print(
        format_table(
            run(),
            title=f"Fig. 8 — DGL vs FusedMM on {MACHINES[MACHINE_KEY].name} "
            "(host-measured speedups + machine-model prediction)",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
