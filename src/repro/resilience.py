"""Unified resilience policies: retry/backoff, health scoring, fault plans.

Before this module every layer hand-rolled its own recovery — the worker
agent slept a fixed second between reconnects, the controller evicted a
host on one missed ping, a flapping host could re-register into an
endless crash→rejoin loop, and the serve clients had a single hard-coded
stale-connection retry.  The three policies here replace those local
conventions with one audited subsystem:

* :class:`RetryPolicy` — capped exponential backoff with *deterministic*
  seeded jitter and deadline-aware budgets.  Stateless and hashable; per
  attempt state lives in :class:`RetryState` so one policy object can be
  shared by every connection.
* :class:`HealthTracker` — a per-key circuit breaker: K failures inside a
  sliding window quarantine the key; after the quarantine period a single
  *probe* admission tests recovery (success closes the circuit, failure
  re-quarantines).  The controller keys it by host *name*, so a flapper
  that re-registers under a fresh ``host_id`` is still recognised.
* :class:`FaultPlan` / :class:`FaultInjector` — deterministic seeded
  fault-injection schedules (``crash`` / ``disconnect`` / ``delay`` /
  ``drop_frame`` at step *k*), the generalisation of the lone
  ``crash_after`` hook.  Plans round-trip through a compact string spec
  (``"delay@2:0.5,crash@5+"``) so the same schedule travels through CLI
  flags, environment variables and the chaos harness unchanged.

Everything here is dependency-free (stdlib only) and deliberately knows
nothing about sockets, frames or kernels — the runtime, remote and serve
layers *consume* these policies; they never subclass them.
"""

from __future__ import annotations

import random
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from collections import deque

__all__ = [
    "RetryPolicy",
    "RetryState",
    "retry_call",
    "HealthTracker",
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "FAULT_KINDS",
]


def seed_from_name(name: str) -> int:
    """A stable 32-bit seed derived from an identifier string.

    Used to de-correlate jitter across a fleet deterministically: every
    agent jitters differently, but the same agent name always produces
    the same schedule (reproducible soak runs).
    """
    return zlib.crc32(name.encode("utf-8", "replace")) & 0xFFFFFFFF


# ---------------------------------------------------------------------- #
# Retry / backoff
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter and budgets.

    Attributes
    ----------
    base_delay:
        Delay before the first retry (seconds); attempt *n* waits
        ``base_delay * multiplier**n`` capped at ``max_delay``.
    max_delay:
        Upper bound on any single delay.
    multiplier:
        Exponential growth factor (>= 1).
    jitter:
        Fractional jitter: each delay is scaled by a uniform draw from
        ``[1 - jitter, 1 + jitter]``.  ``0`` disables jitter.
    max_attempts:
        Retries allowed before giving up (``None`` = unbounded — bound by
        ``deadline_s`` or the caller instead).
    deadline_s:
        Total sleep budget across all retries of one :class:`RetryState`
        (``None`` = unbounded).  The final delay is truncated to the
        remaining budget rather than overshooting it.
    seed:
        Seed of the jitter stream.  ``None`` draws from the process RNG
        (non-reproducible); any int makes ``delay(attempt, salt=...)`` a
        pure function — the chaos harness and the tests rely on that.
    """

    base_delay: float = 0.5
    max_delay: float = 30.0
    multiplier: float = 2.0
    jitter: float = 0.5
    max_attempts: Optional[int] = None
    deadline_s: Optional[float] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.max_attempts is not None and self.max_attempts < 0:
            raise ValueError(
                f"max_attempts must be >= 0, got {self.max_attempts}"
            )

    def backoff(self, attempt: int) -> float:
        """The un-jittered delay of retry ``attempt`` (0-based)."""
        return min(self.max_delay, self.base_delay * self.multiplier ** attempt)

    def delay(self, attempt: int, *, salt: int = 0) -> float:
        """The jittered delay of retry ``attempt``.

        With a ``seed`` this is a pure function of ``(attempt, salt)``;
        ``salt`` de-correlates independent consumers of one shared
        policy (e.g. per-host or per-connection).
        """
        base = self.backoff(attempt)
        if self.jitter <= 0.0 or base <= 0.0:
            return base
        if self.seed is None:
            u = random.random()
        else:
            # One integer from (seed, salt, attempt) — multiplicative
            # mixing, not hash(), which is per-process salted for str.
            mix = (
                (self.seed & 0xFFFFFFFF) * 0x9E3779B1
                + (salt & 0xFFFFFFFF) * 0x85EBCA6B
                + attempt * 0xC2B2AE35
            ) & 0xFFFFFFFFFFFFFFFF
            u = random.Random(mix).random()
        return base * (1.0 - self.jitter + 2.0 * self.jitter * u)

    def start(
        self, *, salt: int = 0, clock: Callable[[], float] = time.monotonic
    ) -> "RetryState":
        """A fresh attempt-tracking state for one retry sequence."""
        return RetryState(policy=self, salt=salt, clock=clock)


@dataclass
class RetryState:
    """Mutable per-sequence state of one :class:`RetryPolicy` consumer."""

    policy: RetryPolicy
    salt: int = 0
    clock: Callable[[], float] = time.monotonic
    attempts: int = 0
    _deadline: Optional[float] = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.policy.deadline_s is not None:
            self._deadline = self.clock() + self.policy.deadline_s

    def next_delay(self) -> Optional[float]:
        """Seconds to wait before the next retry, or ``None`` when the
        attempt/deadline budget is spent (caller should give up)."""
        policy = self.policy
        if (
            policy.max_attempts is not None
            and self.attempts >= policy.max_attempts
        ):
            return None
        delay = policy.delay(self.attempts, salt=self.salt)
        if self._deadline is not None:
            remaining = self._deadline - self.clock()
            if remaining <= 0.0:
                return None
            delay = min(delay, remaining)
        self.attempts += 1
        return delay

    def sleep(self, interrupt: Optional[threading.Event] = None) -> bool:
        """Wait out the next delay.  Returns ``False`` when the budget is
        spent or ``interrupt`` fired during the wait."""
        delay = self.next_delay()
        if delay is None:
            return False
        if interrupt is not None:
            return not interrupt.wait(delay)
        time.sleep(delay)
        return True


def retry_call(
    fn: Callable[[], object],
    *,
    policy: RetryPolicy,
    retry_on: Tuple[type, ...] = (ConnectionError, OSError, TimeoutError),
    on_retry: Optional[Callable[[BaseException, int, float], None]] = None,
    salt: int = 0,
):
    """Call ``fn`` under ``policy``, retrying on ``retry_on`` exceptions.

    The last exception propagates once the budget is spent.  ``on_retry``
    (if given) observes ``(exc, attempt_number, delay)`` before each
    sleep — the serve clients use it to count retries.
    """
    state = policy.start(salt=salt)
    while True:
        try:
            return fn()
        except retry_on as exc:
            delay = state.next_delay()
            if delay is None:
                raise
            if on_retry is not None:
                on_retry(exc, state.attempts, delay)
            time.sleep(delay)


# ---------------------------------------------------------------------- #
# Health tracking / circuit breaking
# ---------------------------------------------------------------------- #
_CLOSED = "closed"
_OPEN = "quarantined"
_PROBING = "probing"


class _KeyHealth:
    __slots__ = ("failures", "state", "quarantined_until", "probe_open")

    def __init__(self) -> None:
        self.failures: Deque[float] = deque()
        self.state = _CLOSED
        self.quarantined_until = 0.0
        self.probe_open = False


class HealthTracker:
    """Per-key circuit breaker with quarantine and probing re-admission.

    State machine per key (thread-safe)::

        closed --(K failures in window)--> quarantined
        quarantined --(quarantine_s elapses, next allow())--> probing
        probing --(record_success)--> closed
        probing --(record_failure)--> quarantined   (fresh period)

    ``allow(key)`` answers "may this key be admitted right now?".  While
    probing, exactly one admission is outstanding at a time, so a single
    probe — not a thundering herd — tests the recovered key.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        failure_window_s: float = 30.0,
        quarantine_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = int(failure_threshold)
        self.failure_window_s = float(failure_window_s)
        self.quarantine_s = float(quarantine_s)
        self.clock = clock
        self.quarantines = 0
        self.probes = 0
        self._keys: Dict[str, _KeyHealth] = {}
        self._lock = threading.Lock()

    # -- transitions --------------------------------------------------- #
    def _quarantine(self, entry: _KeyHealth, now: float) -> None:
        entry.state = _OPEN
        entry.quarantined_until = now + self.quarantine_s
        entry.failures.clear()
        entry.probe_open = False
        self.quarantines += 1

    def record_failure(self, key: str) -> bool:
        """Score one failure; returns True when the key just got (or
        stays) quarantined."""
        now = self.clock()
        with self._lock:
            entry = self._keys.setdefault(key, _KeyHealth())
            if entry.state == _PROBING:
                # The probe failed: straight back to quarantine.
                self._quarantine(entry, now)
                return True
            if entry.state == _OPEN:
                return True
            entry.failures.append(now)
            horizon = now - self.failure_window_s
            while entry.failures and entry.failures[0] < horizon:
                entry.failures.popleft()
            if len(entry.failures) >= self.failure_threshold:
                self._quarantine(entry, now)
                return True
            return False

    def record_success(self, key: str) -> None:
        """A successful exchange closes the circuit and clears scoring."""
        with self._lock:
            entry = self._keys.get(key)
            if entry is None:
                return
            entry.state = _CLOSED
            entry.failures.clear()
            entry.probe_open = False

    def allow(self, key: str) -> bool:
        """May ``key`` be admitted right now?  Transitions quarantined
        keys to probing once their period elapsed (one probe at a time)."""
        now = self.clock()
        with self._lock:
            entry = self._keys.get(key)
            if entry is None or entry.state == _CLOSED:
                return True
            if entry.state == _OPEN:
                if now < entry.quarantined_until:
                    return False
                entry.state = _PROBING
                entry.probe_open = True
                self.probes += 1
                return True
            # probing: one outstanding admission at a time
            if entry.probe_open:
                return False
            entry.probe_open = True
            self.probes += 1
            return True

    def state(self, key: str) -> str:
        with self._lock:
            entry = self._keys.get(key)
            return _CLOSED if entry is None else entry.state

    def quarantined_now(self) -> int:
        now = self.clock()
        with self._lock:
            return sum(
                1
                for e in self._keys.values()
                if e.state == _OPEN and now < e.quarantined_until
            )

    def stats(self) -> Dict[str, int]:
        return {
            "quarantined_hosts": self.quarantines,
            "quarantined_now": self.quarantined_now(),
            "probes": self.probes,
        }


# ---------------------------------------------------------------------- #
# Fault injection
# ---------------------------------------------------------------------- #
#: The fault vocabulary every injection site understands (sites map kinds
#: they cannot express onto the closest one they can — e.g. the HTTP
#: server treats ``drop_frame`` as ``disconnect``).
FAULT_KINDS = ("crash", "disconnect", "delay", "drop_frame")


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    ``step`` is the 1-based ordinal of the guarded operation (RUN frames
    for a worker agent, requests for a server).  ``sticky`` faults fire
    at ``step`` *and every step after it* — the semantics of the legacy
    ``crash_after`` hook, where a crashed process stays crashed.
    ``arg`` carries the kind's parameter (seconds for ``delay``).
    """

    kind: str
    step: int
    arg: float = 0.0
    sticky: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.step < 1:
            raise ValueError(f"fault step must be >= 1, got {self.step}")

    def to_spec(self) -> str:
        spec = f"{self.kind}@{self.step}"
        if self.sticky:
            spec += "+"
        if self.arg:
            spec += f":{self.arg:g}"
        return spec


class FaultPlan:
    """A deterministic schedule of :class:`Fault` events.

    Plans are immutable; the per-site step counter lives in
    :class:`FaultInjector`.  String spec grammar (comma-separated)::

        <kind>@<step>            fire once at step
        <kind>@<step>+           fire at step and every later step
        <kind>@<step>:<arg>      with a parameter (delay seconds)

    e.g. ``"delay@2:0.5,drop_frame@4,crash@7+"``.
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        ordered = sorted(faults, key=lambda f: (f.step, f.kind))
        self._exact: Dict[int, Fault] = {
            f.step: f for f in ordered if not f.sticky
        }
        self._sticky: List[Fault] = [f for f in ordered if f.sticky]
        self._faults = tuple(ordered)

    # -- constructors --------------------------------------------------- #
    @classmethod
    def crash_after(cls, n: int) -> "FaultPlan":
        """The legacy hook: crash on the Nth guarded step and every one
        after it (a dead process stays dead until something restarts it)."""
        return cls([Fault("crash", int(n), sticky=True)])

    @classmethod
    def from_spec(cls, spec: Optional[str]) -> "FaultPlan":
        """Parse the string grammar; ``None``/empty yields an empty plan."""
        if not spec:
            return cls()
        faults: List[Fault] = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            try:
                kind, _, rest = token.partition("@")
                step_part, _, arg_part = rest.partition(":")
                sticky = step_part.endswith("+")
                if sticky:
                    step_part = step_part[:-1]
                faults.append(
                    Fault(
                        kind=kind.strip(),
                        step=int(step_part),
                        arg=float(arg_part) if arg_part else 0.0,
                        sticky=sticky,
                    )
                )
            except ValueError as exc:
                raise ValueError(
                    f"bad fault spec token {token!r} "
                    f"(grammar: kind@step[+][:arg]): {exc}"
                ) from None
        return cls(faults)

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        steps: int,
        rate: float = 0.25,
        kinds: Sequence[str] = FAULT_KINDS,
        max_delay_s: float = 0.5,
        start: int = 1,
    ) -> "FaultPlan":
        """A pseudo-random schedule, fully determined by ``seed``.

        Each step in ``[start, start + steps)`` independently carries a
        fault with probability ``rate``; kinds are drawn uniformly from
        ``kinds``.  ``crash`` faults are never emitted sticky here — a
        seeded soak wants the process flapping, not gone.
        """
        rng = random.Random(seed)
        faults: List[Fault] = []
        for step in range(start, start + steps):
            if rng.random() >= rate:
                continue
            kind = kinds[rng.randrange(len(kinds))]
            arg = (
                round(rng.uniform(0.05, max_delay_s), 3)
                if kind == "delay"
                else 0.0
            )
            faults.append(Fault(kind=kind, step=step, arg=arg))
        return cls(faults)

    # -- queries -------------------------------------------------------- #
    def at(self, step: int) -> Optional[Fault]:
        """The fault scheduled at ``step`` (exact beats sticky), if any."""
        fault = self._exact.get(step)
        if fault is not None:
            return fault
        for sticky in self._sticky:
            if step >= sticky.step:
                return sticky
        return None

    @property
    def faults(self) -> Tuple[Fault, ...]:
        return self._faults

    def kinds_scheduled(self) -> Tuple[str, ...]:
        return tuple(sorted({f.kind for f in self._faults}))

    def to_spec(self) -> str:
        return ",".join(f.to_spec() for f in self._faults)

    def __len__(self) -> int:
        return len(self._faults)

    def __bool__(self) -> bool:
        return bool(self._faults)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self._faults == other._faults

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({self.to_spec()!r})"


class FaultInjector:
    """The per-site step counter over a :class:`FaultPlan`.

    ``step()`` advances the counter and returns the fault due now (or
    ``None``); every fired fault is recorded in :attr:`fired` so a
    harness can assert coverage ("≥ 1 fault of each kind exercised").
    Thread-safe — serve handlers step it from multiple connections.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        *,
        log: Optional[Callable[[Fault, int], None]] = None,
    ) -> None:
        self.plan = plan or FaultPlan()
        self.log = log
        self.steps = 0
        self.fired: List[Fault] = []
        self._lock = threading.Lock()

    def step(self) -> Optional[Fault]:
        with self._lock:
            self.steps += 1
            fault = self.plan.at(self.steps)
            if fault is not None:
                self.fired.append(fault)
                step = self.steps
        if fault is not None and self.log is not None:
            self.log(fault, step)
        return fault

    def kinds_fired(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted({f.kind for f in self.fired}))

    def __bool__(self) -> bool:
        return bool(self.plan)
