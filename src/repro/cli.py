"""Command-line interface: ``python -m repro <command>``.

Sub-commands
------------
``datasets``      list the synthetic dataset registry (Table V twin)
``patterns``      list the built-in operator patterns (Table III)
``experiments``   list the registered paper experiments
``run``           run one experiment and print its tables
``kernel``        time one kernel comparison on one graph/dimension
``bench``         system benchmarks (``bench runtime``: plan-cache and
                  batch-packing throughput of the kernel runtime;
                  ``bench shard``: multi-process shard scaling;
                  ``bench jit``: JIT backend speedup vs the NumPy backends;
                  ``bench reorder``: locality tier — vertex reordering +
                  cache-blocked execution vs the natural ordering;
                  ``bench serve``: serving throughput — micro-batching
                  coalescer vs one-request-at-a-time dispatch;
                  ``bench remote``: distributed tier — TCP worker hosts
                  vs in-process sharding, with kill-one-host and
                  straggler-hedging legs;
                  ``bench dynamic``: dynamic graphs — incremental
                  update vs full rebuild+replan, bitwise identity across
                  shard counts and on remote hosts with dirty-shard
                  delta shipping;
                  ``bench compare``: diff BENCH_*.json trend records and
                  gate on regressions)
``runtime``       runtime observability (``runtime stats``: drive a
                  KernelRuntime through an epoch workload and print its
                  counters — plan-cache hit rate, scheduling, shard tier;
                  ``--serve`` also drives the micro-batching coalescer and
                  prints its window/queue metrics)
``serve``         start the async HTTP serving front-end: request
                  coalescing + micro-batching over the kernel runtime
                  (``/v1/kernel``, ``/v1/embed/<model>``, ``/healthz``,
                  ``/statz``); ``--remote-port`` additionally opens the
                  distributed controller for ``repro worker`` hosts
``worker``        start one distributed worker host: connects to a
                  controller (a ``KernelRuntime`` with ``remote_port``
                  set, e.g. ``repro serve --remote-port``), receives CSR
                  shards once per matrix and executes row-ranges;
                  ``--fault-plan`` arms deterministic fault injection
``chaos``         deterministic chaos soak over the resilience layer:
                  seeded faults against workers, controller and serving
                  front-ends, gated on bitwise outputs and zero hangs
``report``        regenerate EXPERIMENTS.md style results (all experiments,
                  scaled down) and write them to a Markdown file

The CLI is a thin veneer over the library — everything it does is also
available programmatically through :mod:`repro.experiments` and
:mod:`repro.bench`.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .bench.tables import format_table
from .core.patterns import PATTERNS, get_pattern
from .graphs.datasets import list_datasets, load_dataset, paper_table5

__all__ = ["main", "build_parser"]


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    paper = {row["graph"]: row for row in paper_table5()}
    for name in list_datasets():
        graph = load_dataset(name, scale=args.scale)
        row = graph.stats().as_row()
        row["paper_vertices"] = paper[name]["vertices"]
        row["paper_avg_degree"] = paper[name]["avg_degree"]
        rows.append(row)
    print(format_table(rows, title=f"Synthetic dataset registry (scale={args.scale})"))
    return 0


def _cmd_patterns(_args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(PATTERNS):
        resolved = get_pattern(name).resolved()
        row = {"pattern": name, **resolved.op_names()}
        row["description"] = PATTERNS[name].description[:60]
        rows.append(row)
    print(format_table(rows, title="Built-in operator patterns (Table III)"))
    return 0


def _cmd_experiments(_args: argparse.Namespace) -> int:
    from .experiments.registry import EXPERIMENTS

    rows = [
        {"key": exp.key, "paper": exp.paper_reference, "description": exp.description}
        for exp in EXPERIMENTS.values()
    ]
    print(format_table(rows, title="Registered paper experiments"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .experiments.registry import get_experiment

    experiment = get_experiment(args.key)
    print(f"# {experiment.paper_reference}: {experiment.description}\n")
    main_fn = getattr(experiment.module, "main", None)
    if main_fn is not None and not args.raw:
        main_fn()
        return 0
    for name, runner in experiment.runners.items():
        results = runner()
        if isinstance(results, list):
            print(format_table(results, title=name))
        else:
            print(name, results)
    return 0


def _cmd_kernel(args: argparse.Namespace) -> int:
    from .bench.harness import compare_kernels

    graph = load_dataset(args.graph, scale=args.scale)
    rows = [
        compare_kernels(
            graph.name,
            graph.adjacency,
            d,
            pattern=args.pattern,
            repeats=args.repeats,
            include_generic=not args.no_generic,
            num_threads=args.threads,
        )
        for d in args.dims
    ]
    print(format_table(rows, title=f"Kernel comparison on {graph.name} ({args.pattern})"))
    return 0


def _cmd_bench_runtime(args: argparse.Namespace) -> int:
    from .bench.runtime_bench import bench_batch_packing, bench_plan_cache

    rows = [
        bench_plan_cache(
            num_nodes=args.nodes,
            avg_degree=args.avg_degree,
            dim=d,
            repeats=args.repeats,
            num_threads=args.threads,
        )
        for d in args.dims
    ]
    rows.append(
        bench_batch_packing(
            num_requests=args.batch,
            repeats=args.repeats,
            num_threads=args.threads or None,
        )
    )
    print(format_table(rows, title="Kernel-runtime throughput (plan cache + batching)"))
    if args.json:
        from .bench.record import record_benchmark

        print(f"wrote {record_benchmark('runtime', rows, path=args.json)}")
    return 0


def _cmd_bench_shard(args: argparse.Namespace) -> int:
    from .bench.shard_bench import bench_shard_scaling

    rows = bench_shard_scaling(
        num_nodes=args.nodes,
        avg_degree=args.avg_degree,
        dim=args.dim,
        repeats=args.repeats,
        shard_counts=args.shards,
        pattern=args.pattern,
    )
    print(format_table(rows, title="Shard scaling (multi-process tier)"))
    if args.json:
        from .bench.record import record_benchmark

        print(f"wrote {record_benchmark('shard', rows, path=args.json)}")
    return 0 if all(r["identical"] for r in rows) else 1


def _cmd_bench_jit(args: argparse.Namespace) -> int:
    from .bench.jit_bench import bench_jit_speedup
    from .core.jit import jit_available

    rows = bench_jit_speedup(
        num_nodes=args.nodes,
        avg_degree=args.avg_degree,
        dim=args.dim,
        repeats=args.repeats,
        patterns=args.patterns,
    )
    print(format_table(rows, title="JIT backend speedup (vs NumPy backends)"))
    if not jit_available():
        print(
            "numba is not installed: jit rows skipped "
            "(pip install repro-fusedmm[jit])"
        )
    if args.json:
        from .bench.record import record_benchmark

        print(f"wrote {record_benchmark('jit', rows, path=args.json)}")
    return 0


def _cmd_bench_reorder(args: argparse.Namespace) -> int:
    from .bench.reorder_bench import bench_reorder_locality

    rows = bench_reorder_locality(
        num_nodes=args.nodes,
        avg_degree=args.avg_degree,
        dim=args.dim,
        repeats=args.repeats,
        pattern=args.pattern,
        strategies=args.strategies,
    )
    print(format_table(rows, title="Locality tier (reordering + cache blocking)"))
    if args.json:
        from .bench.record import record_benchmark

        print(f"wrote {record_benchmark('reorder', rows, path=args.json)}")
    return 0


def _drive_coalescer(runtime, args: argparse.Namespace) -> dict:
    """Push a concurrent mixed workload through a Coalescer and return
    its window/queue metrics (batches formed, mean occupancy, p50/p99
    wait) — the serving tier's health counters, observable without
    standing up an HTTP server."""
    import asyncio

    from .graphs.features import random_features
    from .runtime import KernelRequest
    from .serve import Coalescer
    from .sparse import random_csr

    problems = []
    for i in range(8):
        A = random_csr(96, 96, density=4.0 / 96, seed=i)
        problems.append((A, random_features(96, args.dim, seed=100 + i)))

    async def _workload() -> dict:
        coalescer = Coalescer(runtime, max_batch=16, max_wait_ms=2.0)
        try:

            async def _client(cid: int) -> None:
                for r in range(args.epochs):
                    A, X = problems[(cid + r) % len(problems)]
                    await coalescer.submit(
                        KernelRequest(A=A, X=X, pattern=args.pattern)
                    )

            await asyncio.gather(*(_client(c) for c in range(8)))
            await coalescer.drain()
            # Snapshot through the runtime: while attached, the section
            # rides runtime.stats() — the same surface the apps'
            # runtime_stats() and /statz expose.
            return runtime.stats()["coalescer"]
        finally:
            coalescer.close()

    return asyncio.run(_workload())


def _drive_jobs(runtime, _args: argparse.Namespace) -> dict:
    """Run one tiny checkpointed training job through a JobManager whose
    counters are attached to the runtime — the same ``jobs`` block
    ``/statz`` exposes, observable without standing up a server."""
    from .jobs import JobManager, JobSpec

    manager = JobManager(max_active=1)
    runtime.attach_stats_section("jobs", manager.stats)
    try:
        job_id = manager.submit(
            JobSpec(app="force2vec", dataset="cora", scale=0.05, dim=8, epochs=2)
        )
        manager.wait(job_id, timeout=120)
        return runtime.stats()["jobs"]
    finally:
        manager.close()
        runtime.attach_stats_section("jobs", None)


def _cmd_runtime_stats(args: argparse.Namespace) -> int:
    from .graphs import rmat
    from .graphs.features import random_features
    from .runtime import KernelRuntime

    epochs = max(1, args.epochs)
    runtime = KernelRuntime(
        num_threads=args.threads,
        processes=args.processes,
        reorder=args.reorder,
        autotune_dim=args.dim,
    )
    try:
        A = rmat(args.nodes, args.nodes * args.avg_degree, seed=0)
        X = random_features(A.nrows, args.dim, seed=0)
        # run() exercises the plan cache each epoch; run_sharded() also
        # routes through the worker tier so its counters show activity.
        for _ in range(epochs):
            if args.processes > 0:
                runtime.run_sharded(A, X, pattern=args.pattern)
            else:
                runtime.run(A, X, pattern=args.pattern)
        coalescer_stats = _drive_coalescer(runtime, args) if args.serve else None
        jobs_stats = _drive_jobs(runtime, args) if args.jobs else None
        stats = runtime.stats()
        stats.pop("coalescer", None)
        stats.pop("jobs", None)
    finally:
        runtime.close()
    cache = stats.pop("plan_cache")
    workers = stats.pop("workers")
    remote = stats.pop("remote", None)
    rows = [{"section": "plan_cache", **cache}]
    if workers is not None:
        rows.append({"section": "workers", **workers})
    if remote is not None:
        rows.append({"section": "remote", **remote})
    print(
        format_table(
            rows,
            title=(
                f"KernelRuntime stats after {epochs} epochs "
                f"({args.pattern}, n={args.nodes})"
            ),
        )
    )
    print(format_table([stats], title="Runtime counters"))
    if coalescer_stats is not None:
        print(
            format_table(
                [coalescer_stats],
                title="Coalescer (micro-batching windows, admission queue)",
            )
        )
    if jobs_stats is not None:
        print(
            format_table(
                [jobs_stats],
                title="Training jobs (submission/requeue/checkpoint counters)",
            )
        )
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    if args.wire:
        from .bench.serve_bench import bench_wire_vs_http

        rows = bench_wire_vs_http(
            clients=args.clients,
            requests_per_client=args.requests,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            pipeline=args.pipeline,
        )
        print(format_table(rows, title="Serving transport (wire vs HTTP)"))
        if args.json:
            from .bench.record import record_benchmark

            print(f"wrote {record_benchmark('wire', rows, path=args.json)}")
        return 0 if all(r["bitwise_identical"] for r in rows) else 1

    from .bench.serve_bench import bench_serve_throughput

    rows = bench_serve_throughput(
        clients=args.clients,
        requests_per_client=args.requests,
        nodes=args.nodes,
        dim=args.dim,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
    )
    print(format_table(rows, title="Serving throughput (micro-batching vs serial)"))
    if args.json:
        from .bench.record import record_benchmark

        print(f"wrote {record_benchmark('serve', rows, path=args.json)}")
    return 0 if all(r["bitwise_identical"] for r in rows) else 1


def _cmd_bench_remote(args: argparse.Namespace) -> int:
    from .bench.remote_bench import bench_remote_scaling

    rows = bench_remote_scaling(
        num_nodes=args.nodes,
        avg_degree=args.avg_degree,
        dim=args.dim,
        repeats=args.repeats,
        worker_counts=args.workers,
        pattern=args.pattern,
        kill_one=not args.no_kill,
        hedge_leg=not args.no_hedge,
    )
    print(format_table(rows, title="Remote scaling (distributed worker tier)"))
    if args.json:
        from .bench.record import record_benchmark

        print(f"wrote {record_benchmark('remote', rows, path=args.json)}")
    return 0 if all(r["identical"] for r in rows) else 1


def _cmd_bench_dynamic(args: argparse.Namespace) -> int:
    from .bench.dynamic_bench import bench_dynamic_updates

    rows = bench_dynamic_updates(
        num_nodes=args.nodes,
        avg_degree=args.avg_degree,
        dim=args.dim,
        rounds=args.rounds,
        churn=args.churn,
        shard_counts=args.shards,
        pattern=args.pattern,
        remote_leg=not args.no_remote,
    )
    print(format_table(rows, title="Dynamic graphs (incremental invalidation)"))
    if args.json:
        from .bench.record import record_benchmark

        print(f"wrote {record_benchmark('dynamic', rows, path=args.json)}")
    ok = all(r["identical"] for r in rows) and all(
        r["speedup_vs_rebuild"] >= 5.0
        for r in rows
        if r["leg"] == "update_vs_rebuild"
    )
    return 0 if ok else 1


def _cmd_worker(args: argparse.Namespace) -> int:
    from .resilience import Fault, FaultPlan
    from .runtime.remote import (
        REPRO_WORKER_CRASH_AFTER,
        REPRO_WORKER_FAULT_PLAN,
        WorkerAgent,
    )

    # Fault-injection hooks for tests/CI: --fault-plan (or the env
    # equivalents) schedules crash/disconnect/delay/drop_frame faults
    # against RUN requests; fired faults are logged to stderr so a chaos
    # harness can assert coverage.
    crash_after = os.environ.get(REPRO_WORKER_CRASH_AFTER)
    fault_spec = args.fault_plan or os.environ.get(REPRO_WORKER_FAULT_PLAN)
    fault_plan = FaultPlan.from_spec(fault_spec) if fault_spec else None

    def _log_fault(fault: Fault, step: int) -> None:
        print(
            f"CHAOS-FAULT host={args.name or 'worker'} kind={fault.kind} "
            f"step={step}",
            file=sys.stderr,
            flush=True,
        )

    agent = WorkerAgent(
        args.controller_host,
        args.port,
        name=args.name,
        threads=args.threads,
        matrix_cache=args.matrix_cache,
        token=args.token or os.environ.get("REPRO_WORKER_TOKEN") or None,
        crash_after=int(crash_after) if crash_after else None,
        fault_plan=fault_plan,
        fault_log=_log_fault,
        exit_on_crash=True,
    )
    print(
        f"repro worker: connecting to {args.controller_host}:{args.port} "
        f"(threads={args.threads})",
        flush=True,
    )
    reason = "stopped"
    try:
        if args.once:
            reason = agent.serve()
        else:
            reason = agent.run_forever(reconnect_delay=args.reconnect_delay)
    except KeyboardInterrupt:
        pass
    finally:
        agent.stop()
    if reason == "rejected":
        print(
            f"repro worker: {agent.last_error or 'registration rejected'}",
            file=sys.stderr,
            flush=True,
        )
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .bench.chaos import run_chaos

    report = run_chaos(
        seed=args.seed,
        duration_s=args.duration,
        workers=args.workers,
        nodes=args.nodes,
        avg_degree=args.avg_degree,
        dim=args.dim,
        pattern=args.pattern,
        stall_timeout_s=args.stall_timeout,
    )
    printable = []
    for row in report["rows"]:
        flat = dict(row)
        counts = flat.pop("fault_counts", {})
        flat["faults"] = (
            ",".join(f"{k}:{v}" for k, v in sorted(counts.items())) or "-"
        )
        printable.append(flat)
    print(
        format_table(
            printable,
            title=f"Chaos soak (seed={report['seed']}, "
            f"{report['duration_s']:.0f}s)",
        )
    )
    print(format_table([report["gates"]], title="Gates"))
    if not report["ok"]:
        failed = [k for k, v in report["gates"].items() if not v]
        print(f"repro chaos: FAILED gates: {failed}", file=sys.stderr)
        return 1
    print("repro chaos: all gates held (faults cost time, never bytes)")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    """Local durable training: one job, checkpointed, auto-resuming.

    With ``--checkpoint-dir``, a killed run restarted with the same
    command resumes from its newest durable checkpoint and (under
    ``reorder="none"``) finishes bitwise identical to an uninterrupted
    run — the chaos harness's training leg drives exactly this loop.
    """
    import numpy as np

    from .jobs import CheckpointStore, JobSpec, run_training

    spec = JobSpec(
        app=args.app,
        dataset=args.dataset,
        scale=args.scale,
        dim=args.dim,
        epochs=args.epochs,
        seed=args.seed,
        checkpoint_every=args.checkpoint_every,
        num_threads=args.threads,
    )
    store = None
    if args.checkpoint_dir:
        store = CheckpointStore(args.checkpoint_dir)
        checkpoint = store.latest()
        if checkpoint is not None:
            print(
                f"repro train: resuming from epoch {checkpoint.epoch}",
                flush=True,
            )

    def _progress(entry: dict) -> None:
        detail = " ".join(
            f"{key}={value:.6g}" if isinstance(value, float) else f"{key}={value}"
            for key, value in entry.items()
            if key != "epoch"
        )
        print(
            f"repro train: epoch {entry['epoch'] + 1}/{spec.epochs} {detail}",
            flush=True,
        )

    result = run_training(spec, store=store, on_progress=_progress)
    print(
        f"repro train: done app={spec.app} epochs={result.epochs_done} "
        f"output={'x'.join(str(s) for s in result.output.shape)}",
        flush=True,
    )
    if args.output:
        np.save(args.output, result.output)
        print(f"repro train: wrote {args.output}", flush=True)
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    """Control training jobs on a running ``repro serve`` instance."""
    import json as _json
    import time as _time

    import numpy as np

    from .serve import connect

    terminal = ("completed", "failed", "cancelled")
    with connect(args.url) as client:
        if args.jobs_command == "submit":
            doc = client.train(
                app=args.app,
                dataset=args.dataset,
                scale=args.scale,
                dim=args.dim,
                epochs=args.epochs,
                seed=args.seed,
            )
            job_id = doc["job_id"]
            print(f"repro jobs: submitted {job_id}", flush=True)
            if not args.wait:
                return 0
            last_epoch = -1
            while True:
                status = client.job(job_id)
                for entry in status.get("progress", []):
                    if entry["epoch"] > last_epoch:
                        last_epoch = entry["epoch"]
                        print(
                            f"repro jobs: {job_id} epoch "
                            f"{entry['epoch'] + 1}/{status['epochs_total']}",
                            flush=True,
                        )
                if status["state"] in terminal:
                    print(f"repro jobs: {job_id} {status['state']}", flush=True)
                    return 0 if status["state"] == "completed" else 1
                _time.sleep(args.poll)
        if args.jobs_command == "list":
            rows = [
                {
                    "id": j["id"],
                    "app": j["spec"]["app"],
                    "state": j["state"],
                    "epochs": f"{j['epochs_done']}/{j['epochs_total']}",
                    "attempts": j["attempts"],
                    "error": (j.get("error") or "-")[:40],
                }
                for j in client.jobs()
            ]
            print(format_table(rows, title=f"Training jobs on {args.url}"))
            return 0
        if args.jobs_command == "status":
            print(_json.dumps(client.job(args.job_id), indent=2))
            return 0
        if args.jobs_command == "cancel":
            doc = client.cancel_job(args.job_id)
            print(f"repro jobs: {args.job_id} -> {doc['state']}")
            return 0
        # result
        rows = client.job_result(args.job_id)
        if args.output:
            np.save(args.output, rows)
            print(f"repro jobs: wrote {args.output} {rows.shape} {rows.dtype}")
        else:
            print(
                f"repro jobs: result {rows.shape} {rows.dtype} "
                f"(use --output to save)"
            )
        return 0


def _cmd_bench_jobs(args: argparse.Namespace) -> int:
    from .bench.jobs_bench import bench_checkpoint_overhead

    rows = bench_checkpoint_overhead(
        nodes=args.nodes,
        dim=args.dim,
        epochs=args.epochs,
        repeats=args.repeats,
        apps=args.apps,
    )
    print(
        format_table(
            rows, title="Checkpoint overhead (per-epoch durable saves vs none)"
        )
    )
    if args.json:
        from .bench.record import record_benchmark

        print(f"wrote {record_benchmark('jobs', rows, path=args.json)}")
    return 0 if all(r["bitwise_identical"] for r in rows) else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import DEFAULT_MODELS, KernelServer, ModelSpec, ServeConfig

    if args.models is None:
        models = DEFAULT_MODELS
    elif args.models == []:
        models = ()
    else:
        models = tuple(
            ModelSpec(
                name=f"{name}-{args.app}",
                dataset=name,
                app=args.app,
                dim=args.model_dim,
                scale=args.scale,
                train_epochs=args.train_epochs,
            )
            for name in args.models
        )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        wire_port=args.wire_port,
        wire_credits=args.wire_credits,
        remote_port=args.remote_port,
        remote_token=(
            args.remote_token or os.environ.get("REPRO_WORKER_TOKEN") or None
        ),
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue,
        default_deadline_ms=args.deadline_ms,
        num_threads=args.threads,
        processes=args.processes,
        heartbeat_strikes=args.heartbeat_strikes,
        fault_spec=args.fault_spec,
        job_dir=args.job_dir,
        max_jobs=args.max_jobs,
        models=models,
    )
    KernelServer(config).run()
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from .bench.trend import compare_paths, render_report

    report = compare_paths(
        args.baseline,
        args.current,
        threshold=args.threshold,
        min_seconds=args.min_seconds,
    )
    return render_report(report, threshold=args.threshold, no_fail=args.no_fail)


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.run_all import generate_report

    path = generate_report(args.output, scale=args.scale, quick=args.quick)
    print(f"wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FusedMM reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_data = sub.add_parser("datasets", help="list the synthetic dataset registry")
    p_data.add_argument("--scale", type=float, default=0.25)
    p_data.set_defaults(func=_cmd_datasets)

    p_pat = sub.add_parser("patterns", help="list the built-in operator patterns")
    p_pat.set_defaults(func=_cmd_patterns)

    p_exp = sub.add_parser("experiments", help="list the registered paper experiments")
    p_exp.set_defaults(func=_cmd_experiments)

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("key", help="experiment key, e.g. table6 or fig11")
    p_run.add_argument("--raw", action="store_true", help="print raw runner output")
    p_run.set_defaults(func=_cmd_run)

    p_kernel = sub.add_parser("kernel", help="time one kernel comparison")
    p_kernel.add_argument("--graph", default="youtube")
    p_kernel.add_argument("--pattern", default="sigmoid_embedding")
    p_kernel.add_argument("--dims", type=int, nargs="+", default=[32, 128])
    p_kernel.add_argument("--scale", type=float, default=0.5)
    p_kernel.add_argument("--repeats", type=int, default=3)
    p_kernel.add_argument("--threads", type=int, default=1)
    p_kernel.add_argument("--no-generic", action="store_true")
    p_kernel.set_defaults(func=_cmd_kernel)

    p_bench = sub.add_parser("bench", help="system benchmarks")
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_bench_rt = bench_sub.add_parser(
        "runtime", help="plan-cache + batch-packing throughput of KernelRuntime"
    )
    p_bench_rt.add_argument("--nodes", type=int, default=10_000)
    p_bench_rt.add_argument("--avg-degree", type=int, default=8)
    p_bench_rt.add_argument("--dims", type=int, nargs="+", default=[64])
    p_bench_rt.add_argument("--batch", type=int, default=32)
    p_bench_rt.add_argument("--repeats", type=int, default=3)
    p_bench_rt.add_argument("--threads", type=int, default=1)
    p_bench_rt.add_argument("--json", metavar="PATH", default=None)
    p_bench_rt.set_defaults(func=_cmd_bench_runtime)

    p_bench_sh = bench_sub.add_parser(
        "shard", help="shard scaling of the multi-process execution tier"
    )
    p_bench_sh.add_argument("--nodes", type=int, default=20_000)
    p_bench_sh.add_argument("--avg-degree", type=int, default=16)
    p_bench_sh.add_argument("--dim", type=int, default=64)
    p_bench_sh.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4])
    p_bench_sh.add_argument("--repeats", type=int, default=3)
    p_bench_sh.add_argument("--pattern", default="sigmoid_embedding")
    p_bench_sh.add_argument("--json", metavar="PATH", default=None)
    p_bench_sh.set_defaults(func=_cmd_bench_shard)

    p_bench_jit = bench_sub.add_parser(
        "jit", help="JIT backend speedup vs the NumPy backends"
    )
    p_bench_jit.add_argument("--nodes", type=int, default=20_000)
    p_bench_jit.add_argument("--avg-degree", type=int, default=16)
    p_bench_jit.add_argument("--dim", type=int, default=128)
    p_bench_jit.add_argument("--repeats", type=int, default=3)
    p_bench_jit.add_argument(
        "--patterns", nargs="+", default=["sigmoid_embedding", "fr_layout", "gcn"]
    )
    p_bench_jit.add_argument("--json", metavar="PATH", default=None)
    p_bench_jit.set_defaults(func=_cmd_bench_jit)

    p_bench_re = bench_sub.add_parser(
        "reorder", help="locality tier: reordering + cache blocking vs natural order"
    )
    p_bench_re.add_argument("--nodes", type=int, default=50_000)
    p_bench_re.add_argument("--avg-degree", type=int, default=16)
    p_bench_re.add_argument("--dim", type=int, default=128)
    p_bench_re.add_argument("--repeats", type=int, default=3)
    from .sparse import REORDER_CHOICES, REORDER_STRATEGIES

    p_bench_re.add_argument("--pattern", default="sigmoid_embedding")
    p_bench_re.add_argument(
        "--strategies",
        nargs="+",
        choices=list(REORDER_STRATEGIES),
        default=["none", "degree", "rcm", "hub"],
    )
    p_bench_re.add_argument("--json", metavar="PATH", default=None)
    p_bench_re.set_defaults(func=_cmd_bench_reorder)

    p_bench_sv = bench_sub.add_parser(
        "serve", help="serving throughput: micro-batching vs serial dispatch"
    )
    p_bench_sv.add_argument("--clients", type=int, default=8)
    p_bench_sv.add_argument("--requests", type=int, default=25, help="per client")
    p_bench_sv.add_argument("--nodes", type=int, default=96)
    p_bench_sv.add_argument("--dim", type=int, default=8)
    p_bench_sv.add_argument("--max-batch", type=int, default=32)
    p_bench_sv.add_argument("--max-wait-ms", type=float, default=2.0)
    p_bench_sv.add_argument(
        "--wire",
        action="store_true",
        help="compare the binary wire protocol against the HTTP front-end "
        "(tiny + large payload legs) instead of batching vs serial",
    )
    p_bench_sv.add_argument(
        "--pipeline",
        type=int,
        default=4,
        help="wire-client pipeline depth (outstanding requests/connection)",
    )
    p_bench_sv.add_argument("--json", metavar="PATH", default=None)
    p_bench_sv.set_defaults(func=_cmd_bench_serve)

    p_bench_rm = bench_sub.add_parser(
        "remote", help="distributed tier: TCP worker hosts vs in-process sharding"
    )
    p_bench_rm.add_argument("--nodes", type=int, default=20_000)
    p_bench_rm.add_argument("--avg-degree", type=int, default=16)
    p_bench_rm.add_argument("--dim", type=int, default=64)
    p_bench_rm.add_argument("--workers", type=int, nargs="+", default=[1, 2])
    p_bench_rm.add_argument("--repeats", type=int, default=3)
    p_bench_rm.add_argument("--pattern", default="sigmoid_embedding")
    p_bench_rm.add_argument(
        "--no-kill",
        action="store_true",
        help="skip the fault-tolerance leg (kill one worker mid-batch)",
    )
    p_bench_rm.add_argument(
        "--no-hedge",
        action="store_true",
        help="skip the straggler leg (stall one worker, hedge in-parent)",
    )
    p_bench_rm.add_argument("--json", metavar="PATH", default=None)
    p_bench_rm.set_defaults(func=_cmd_bench_remote)

    p_bench_dy = bench_sub.add_parser(
        "dynamic",
        help="dynamic graphs: incremental update vs full rebuild+replan, "
        "bitwise identity across shard counts and remote delta shipping",
    )
    p_bench_dy.add_argument("--nodes", type=int, default=20_000)
    p_bench_dy.add_argument("--avg-degree", type=int, default=16)
    p_bench_dy.add_argument("--dim", type=int, default=64)
    p_bench_dy.add_argument("--rounds", type=int, default=5)
    p_bench_dy.add_argument(
        "--churn",
        type=float,
        default=0.002,
        help="edge churn per round as a fraction of nnz",
    )
    p_bench_dy.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4])
    p_bench_dy.add_argument("--pattern", default="sigmoid_embedding")
    p_bench_dy.add_argument(
        "--no-remote",
        action="store_true",
        help="skip the remote leg (worker hosts + dirty-shard delta ship)",
    )
    p_bench_dy.add_argument("--json", metavar="PATH", default=None)
    p_bench_dy.set_defaults(func=_cmd_bench_dynamic)

    p_bench_jobs = bench_sub.add_parser(
        "jobs",
        help="checkpoint overhead: per-epoch durable saves vs none, with "
        "bitwise-identity gate",
    )
    p_bench_jobs.add_argument("--nodes", type=int, default=6_000)
    p_bench_jobs.add_argument("--dim", type=int, default=32)
    p_bench_jobs.add_argument("--epochs", type=int, default=4)
    p_bench_jobs.add_argument("--repeats", type=int, default=3)
    p_bench_jobs.add_argument(
        "--apps", nargs="+", default=["force2vec", "gcn"],
        choices=["force2vec", "verse", "gcn", "fr_layout"],
    )
    p_bench_jobs.add_argument("--json", metavar="PATH", default=None)
    p_bench_jobs.set_defaults(func=_cmd_bench_jobs)

    p_bench_cmp = bench_sub.add_parser(
        "compare", help="diff BENCH_*.json trend records, gate on regressions"
    )
    p_bench_cmp.add_argument("baseline", help="baseline file or directory")
    p_bench_cmp.add_argument("current", help="current file or directory")
    p_bench_cmp.add_argument("--threshold", type=float, default=0.15)
    p_bench_cmp.add_argument("--min-seconds", type=float, default=5e-3)
    p_bench_cmp.add_argument("--no-fail", action="store_true")
    p_bench_cmp.set_defaults(func=_cmd_bench_compare)

    p_runtime = sub.add_parser("runtime", help="runtime observability")
    runtime_sub = p_runtime.add_subparsers(dest="runtime_command", required=True)
    p_rt_stats = runtime_sub.add_parser(
        "stats", help="drive a KernelRuntime through an epoch workload, print stats"
    )
    p_rt_stats.add_argument("--nodes", type=int, default=5_000)
    p_rt_stats.add_argument("--avg-degree", type=int, default=8)
    p_rt_stats.add_argument("--dim", type=int, default=32)
    p_rt_stats.add_argument("--epochs", type=int, default=5)
    p_rt_stats.add_argument("--pattern", default="sigmoid_embedding")
    p_rt_stats.add_argument("--threads", type=int, default=1)
    p_rt_stats.add_argument("--processes", type=int, default=0)
    p_rt_stats.add_argument(
        "--reorder", choices=list(REORDER_CHOICES), default="none"
    )
    p_rt_stats.add_argument(
        "--serve",
        action="store_true",
        help="also drive the micro-batching coalescer and print its "
        "window/queue metrics",
    )
    p_rt_stats.add_argument(
        "--jobs",
        action="store_true",
        help="also run one tiny checkpointed training job and print the "
        "job-manager counters (the jobs block of /statz)",
    )
    p_rt_stats.set_defaults(func=_cmd_runtime_stats)

    p_serve = sub.add_parser(
        "serve", help="start the async micro-batching HTTP serving front-end"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8571)
    p_serve.add_argument(
        "--wire-port",
        type=int,
        default=None,
        help="also listen with the binary wire protocol on this port "
        "(0 = ephemeral; omit to serve HTTP only)",
    )
    p_serve.add_argument(
        "--wire-credits",
        type=int,
        default=32,
        help="per-connection credit grant (max pipelined requests)",
    )
    p_serve.add_argument("--max-batch", type=int, default=32)
    p_serve.add_argument("--max-wait-ms", type=float, default=2.0)
    p_serve.add_argument("--max-queue", type=int, default=256)
    p_serve.add_argument(
        "--deadline-ms",
        type=float,
        default=0.0,
        help="default per-request deadline (0 = none)",
    )
    p_serve.add_argument(
        "--remote-port",
        type=int,
        default=None,
        help="open the distributed controller on this port so repro "
        "worker hosts can join the sharded tier (0 = ephemeral; omit "
        "for local-only execution)",
    )
    p_serve.add_argument(
        "--remote-token",
        default=None,
        help="shared secret repro worker hosts must present to register "
        "(defaults to $REPRO_WORKER_TOKEN; omit both to admit any peer "
        "— loopback/trusted networks only)",
    )
    p_serve.add_argument(
        "--heartbeat-strikes",
        type=int,
        default=3,
        help="consecutive missed heartbeat pings before the distributed "
        "controller evicts an idle worker host",
    )
    p_serve.add_argument(
        "--fault-spec",
        default=None,
        metavar="SPEC",
        help="inject faults into incoming requests, e.g. "
        "'delay@3:0.2,disconnect@5' (chaos/testing only)",
    )
    p_serve.add_argument("--threads", type=int, default=1)
    p_serve.add_argument("--processes", type=int, default=0)
    p_serve.add_argument(
        "--models",
        nargs="*",
        default=None,
        metavar="DATASET",
        help="datasets to pre-load as models (default: the built-in set; "
        "pass no values to serve kernels only)",
    )
    p_serve.add_argument(
        "--app",
        choices=["force2vec", "verse", "gcn", "fr_layout"],
        default="force2vec",
        help="application trained for --models entries",
    )
    p_serve.add_argument("--model-dim", type=int, default=32)
    p_serve.add_argument("--scale", type=float, default=0.25)
    p_serve.add_argument("--train-epochs", type=int, default=1)
    p_serve.add_argument(
        "--job-dir",
        default=None,
        metavar="DIR",
        help="durable root for /v1/train jobs: checkpoints + supervision "
        "records live here and unfinished jobs are requeued at startup "
        "(default: a temporary directory, lost on restart)",
    )
    p_serve.add_argument(
        "--max-jobs",
        type=int,
        default=2,
        help="training jobs running concurrently",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_train = sub.add_parser(
        "train",
        help="run one durable training job locally: checkpoint every N "
        "epochs, auto-resume from --checkpoint-dir after a crash",
    )
    p_train.add_argument(
        "--app",
        choices=["force2vec", "verse", "gcn", "fr_layout"],
        default="force2vec",
    )
    p_train.add_argument("--dataset", default="cora")
    p_train.add_argument("--scale", type=float, default=0.25)
    p_train.add_argument("--dim", type=int, default=32)
    p_train.add_argument("--epochs", type=int, default=4)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="epochs between durable checkpoints (0 = final only)",
    )
    p_train.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="durable checkpoint directory; a rerun with the same command "
        "resumes from the newest valid checkpoint found here",
    )
    p_train.add_argument(
        "--output",
        default=None,
        metavar="PATH.npy",
        help="write the final output matrix (embeddings/positions/"
        "probabilities) as .npy",
    )
    p_train.add_argument("--threads", type=int, default=1)
    p_train.set_defaults(func=_cmd_train)

    p_jobs = sub.add_parser(
        "jobs", help="control training jobs on a running repro serve instance"
    )
    jobs_sub = p_jobs.add_subparsers(dest="jobs_command", required=True)
    _url_kwargs = dict(
        default="http://127.0.0.1:8571",
        help="server URL (http://host:port or wire://host:port)",
    )
    p_jobs_submit = jobs_sub.add_parser("submit", help="submit a training job")
    p_jobs_submit.add_argument("--url", **_url_kwargs)
    p_jobs_submit.add_argument(
        "--app",
        choices=["force2vec", "verse", "gcn", "fr_layout"],
        default="force2vec",
    )
    p_jobs_submit.add_argument("--dataset", default="cora")
    p_jobs_submit.add_argument("--scale", type=float, default=0.25)
    p_jobs_submit.add_argument("--dim", type=int, default=32)
    p_jobs_submit.add_argument("--epochs", type=int, default=4)
    p_jobs_submit.add_argument("--seed", type=int, default=0)
    p_jobs_submit.add_argument(
        "--wait",
        action="store_true",
        help="poll until the job reaches a terminal state, printing "
        "per-epoch progress",
    )
    p_jobs_submit.add_argument("--poll", type=float, default=0.5)
    p_jobs_submit.set_defaults(func=_cmd_jobs)
    p_jobs_list = jobs_sub.add_parser("list", help="list known jobs")
    p_jobs_list.add_argument("--url", **_url_kwargs)
    p_jobs_list.set_defaults(func=_cmd_jobs)
    p_jobs_status = jobs_sub.add_parser(
        "status", help="status + per-epoch progress of one job"
    )
    p_jobs_status.add_argument("job_id")
    p_jobs_status.add_argument("--url", **_url_kwargs)
    p_jobs_status.set_defaults(func=_cmd_jobs)
    p_jobs_cancel = jobs_sub.add_parser("cancel", help="cancel one job")
    p_jobs_cancel.add_argument("job_id")
    p_jobs_cancel.add_argument("--url", **_url_kwargs)
    p_jobs_cancel.set_defaults(func=_cmd_jobs)
    p_jobs_result = jobs_sub.add_parser(
        "result", help="fetch a completed job's output matrix"
    )
    p_jobs_result.add_argument("job_id")
    p_jobs_result.add_argument("--url", **_url_kwargs)
    p_jobs_result.add_argument("--output", default=None, metavar="PATH.npy")
    p_jobs_result.set_defaults(func=_cmd_jobs)

    p_worker = sub.add_parser(
        "worker", help="start one distributed worker host (joins a controller)"
    )
    p_worker.add_argument(
        "--controller-host",
        default="127.0.0.1",
        help="host the controller listens on",
    )
    p_worker.add_argument(
        "--port", type=int, required=True, help="controller port to register with"
    )
    p_worker.add_argument(
        "--name", default=None, help="host name reported to the controller"
    )
    p_worker.add_argument(
        "--token",
        default=None,
        help="shared secret presented at registration (defaults to "
        "$REPRO_WORKER_TOKEN; must match the controller's token)",
    )
    p_worker.add_argument(
        "--threads", type=int, default=1, help="kernel threads per run request"
    )
    p_worker.add_argument(
        "--matrix-cache",
        type=int,
        default=16,
        help="CSR matrices kept resident (LRU)",
    )
    p_worker.add_argument(
        "--reconnect-delay",
        type=float,
        default=1.0,
        help="seconds between reconnect attempts after a controller restart",
    )
    p_worker.add_argument(
        "--once",
        action="store_true",
        help="exit when the controller disconnects instead of reconnecting",
    )
    p_worker.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="fault-injection schedule applied to RUN requests, e.g. "
        "'delay@2:0.5,drop_frame@4,crash@7+' (defaults to "
        "$REPRO_WORKER_FAULT_PLAN; chaos/testing only)",
    )
    p_worker.set_defaults(func=_cmd_worker)

    p_chaos = sub.add_parser(
        "chaos",
        help="deterministic chaos soak: inject faults everywhere, gate on "
        "bitwise outputs and zero hangs",
    )
    p_chaos.add_argument("--seed", type=int, default=7)
    p_chaos.add_argument(
        "--duration", type=float, default=60.0, help="target soak seconds"
    )
    p_chaos.add_argument(
        "--workers", type=int, default=2, help="fault-injected worker hosts"
    )
    p_chaos.add_argument("--nodes", type=int, default=3_000)
    p_chaos.add_argument("--avg-degree", type=int, default=8)
    p_chaos.add_argument("--dim", type=int, default=16)
    p_chaos.add_argument("--pattern", default="sigmoid_embedding")
    p_chaos.add_argument(
        "--stall-timeout",
        type=float,
        default=None,
        help="watchdog hang threshold in seconds (default: "
        "max(120, 2x duration))",
    )
    p_chaos.set_defaults(func=_cmd_chaos)

    p_report = sub.add_parser("report", help="regenerate the experiments report")
    p_report.add_argument("--output", default="EXPERIMENTS_GENERATED.md")
    p_report.add_argument("--scale", type=float, default=0.5)
    p_report.add_argument("--quick", action="store_true", help="smallest possible runs")
    p_report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
