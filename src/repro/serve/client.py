"""Blocking HTTP client for the serving front-end (bench, smoke, tests).

A deliberately thin wrapper over :mod:`http.client` — stdlib only, one
persistent keep-alive connection per instance, so N closed-loop benchmark
clients are N sockets hammering the coalescer exactly the way real
traffic would.  Not thread-safe: give each client thread its own
instance.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import DeadlineError, DrainingError, QueueFullError, ServeError
from ..resilience import RetryPolicy
from .protocol import array_from_npy, encode_array, npy_bytes

__all__ = [
    "ServeClient",
    "ServeHTTPError",
    "http_error_for_status",
    "wait_until_healthy",
]

_JSON = "application/json"
_NPY = "application/x-npy"


class ServeHTTPError(ServeError):
    """A non-2xx response; carries the status and decoded error message.

    A :class:`~repro.errors.ServeError`, so both transports raise out of
    one hierarchy: ``except ServeError`` catches HTTP and wire failures
    alike, while ``.status`` keeps the transport-level detail.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.http_status = status


# Admission-control statuses raise the same typed errors over HTTP that the
# wire client reconstructs from error frames — catchable either way: as the
# transport's ServeHTTPError or as the typed QueueFullError/DeadlineError/
# DrainingError the server actually raised.
class QueueFullHTTPError(ServeHTTPError, QueueFullError):
    pass


class DrainingHTTPError(ServeHTTPError, DrainingError):
    pass


class DeadlineHTTPError(ServeHTTPError, DeadlineError):
    pass


_TYPED_HTTP_ERRORS = {
    429: QueueFullHTTPError,
    503: DrainingHTTPError,
    504: DeadlineHTTPError,
}


def http_error_for_status(status: int, message: str) -> ServeHTTPError:
    """The typed exception for one non-2xx HTTP response."""
    return _TYPED_HTTP_ERRORS.get(status, ServeHTTPError)(status, message)


class ServeClient:
    """One keep-alive connection to a ``repro serve`` instance.

    ``retry=`` arms opt-in policy-driven retries: connection-level
    failures and the transient admission statuses (429 queue-full, 503
    draining) are retried under the given
    :class:`~repro.resilience.RetryPolicy` before the error propagates.
    Safe to enable for kernel/embed traffic because those calls are pure
    — re-sending a request can never double-apply anything.  The default
    (``None``) keeps the legacy behaviour: one stale-connection retry,
    no status retries.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8571,
        *,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.retries_attempted = 0
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------ #
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ):
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            payload = response.read()
        except (http.client.HTTPException, OSError):
            # Keep-alive connection went stale (server restarted, drain
            # closed it): retry once on a fresh socket.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            payload = response.read()
        return response, payload

    #: Transient admission statuses worth retrying under a policy — the
    #: request was *not* executed (shed at the door), so a retry can
    #: never duplicate work.
    _RETRYABLE_STATUSES = frozenset({429, 503})

    def _checked(self, method: str, path: str, body=None, headers=None):
        state = self.retry.start() if self.retry is not None else None
        while True:
            try:
                response, payload = self._request(
                    method, path, body=body, headers=headers
                )
            except (http.client.HTTPException, OSError):
                # _request already burned its single stale-socket retry;
                # from here only an armed policy keeps trying.
                if state is None:
                    raise
                delay = state.next_delay()
                if delay is None:
                    raise
                self.retries_attempted += 1
                self.close()
                time.sleep(delay)
                continue
            if response.status >= 300:
                try:
                    message = json.loads(payload).get(
                        "error", payload.decode("utf-8", "replace")
                    )
                except Exception:
                    message = payload.decode("utf-8", "replace")
                if (
                    state is not None
                    and response.status in self._RETRYABLE_STATUSES
                ):
                    delay = state.next_delay()
                    if delay is not None:
                        self.retries_attempted += 1
                        time.sleep(delay)
                        continue
                raise http_error_for_status(response.status, str(message))
            return response, payload

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def healthz(self) -> Dict[str, object]:
        _, payload = self._checked("GET", "/healthz")
        return json.loads(payload)

    def statz(self) -> Dict[str, object]:
        _, payload = self._checked("GET", "/statz")
        return json.loads(payload)

    def kernel(
        self,
        *,
        model: Optional[str] = None,
        graph=None,
        X: Optional[np.ndarray] = None,
        Y: Optional[np.ndarray] = None,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
        pattern: str = "sigmoid_embedding",
        backend: str = "auto",
        deadline_ms: Optional[float] = None,
        binary: bool = True,
    ) -> np.ndarray:
        """``Z = FusedMM(A, X, Y)`` over the wire.

        ``binary=True`` ships operands base64-npy inside the JSON envelope
        and asks for a raw ``.npy`` response (bitwise-faithful round
        trip); ``binary=False`` uses nested-list JSON end to end.  The
        operands accept both spellings (``X=``/``x=``, ``Y=``/``y=``) so
        call sites are portable across this client and
        :class:`~repro.serve.wire.WireClient`.
        """
        if X is None:
            X = x
        if Y is None:
            Y = y
        payload: Dict[str, object] = {"pattern": pattern, "backend": backend}
        if model is not None:
            payload["model"] = model
        if graph is not None:
            payload["graph"] = (
                graph
                if isinstance(graph, dict)
                else {
                    "shape": [graph.nrows, graph.ncols],
                    "indptr": encode_array(graph.indptr, binary=binary),
                    "indices": encode_array(graph.indices, binary=binary),
                    "data": encode_array(graph.data, binary=binary),
                }
            )
        if X is not None:
            payload["x"] = encode_array(np.asarray(X), binary=binary)
        if Y is not None:
            payload["y"] = encode_array(np.asarray(Y), binary=binary)
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if binary:
            payload["response"] = "npy"
        body = json.dumps(payload).encode("utf-8")
        _, raw = self._checked(
            "POST", "/v1/kernel", body=body, headers={"Content-Type": _JSON}
        )
        if binary:
            return array_from_npy(raw)
        doc = json.loads(raw)
        z = doc["z"]
        return np.asarray(z["data"], dtype=z.get("dtype", "float32"))

    def kernel_npy(
        self,
        X: np.ndarray,
        *,
        model: str,
        pattern: str = "sigmoid_embedding",
        backend: str = "auto",
    ) -> np.ndarray:
        """The raw-npy fast path: ``X`` as the body, the rest in the query."""
        path = (
            f"/v1/kernel?model={model}&pattern={pattern}"
            f"&backend={backend}&response=npy"
        )
        _, raw = self._checked(
            "POST", path, body=npy_bytes(np.asarray(X)), headers={"Content-Type": _NPY}
        )
        return array_from_npy(raw)

    def embed(
        self,
        model: str,
        ids: Optional[Sequence[int]] = None,
        *,
        binary: bool = True,
    ) -> np.ndarray:
        """Rows of a registered model's servable output matrix."""
        payload: Dict[str, object] = {}
        if ids is not None:
            payload["ids"] = [int(i) for i in ids]
        if binary:
            payload["response"] = "npy"
        body = json.dumps(payload).encode("utf-8")
        _, raw = self._checked(
            "POST",
            f"/v1/embed/{model}",
            body=body,
            headers={"Content-Type": _JSON},
        )
        if binary:
            return array_from_npy(raw)
        doc = json.loads(raw)
        e = doc["embeddings"]
        return np.asarray(e["data"], dtype=e.get("dtype", "float32"))

    def models(self) -> List[str]:
        return [m["name"] for m in self.statz().get("models", [])]

    # ------------------------------------------------------------------ #
    # Dynamic graphs
    # ------------------------------------------------------------------ #
    def mutate(
        self,
        model: str,
        insert: Optional[object] = None,
        delete: Optional[object] = None,
    ) -> Dict[str, object]:
        """``POST /v1/graph/<model>/edges``: apply one edge batch.

        ``insert`` rows are ``(u, v, weight)`` triples (weight optional,
        defaults to 1.0); ``delete`` rows are ``(u, v)`` pairs, applied
        before the inserts.  Returns the mutation document (new version,
        fingerprint, per-batch counters).  Like :meth:`train`, mutations
        bypass the retry policy: a resend after an ambiguous transport
        failure would apply the batch — and advance the version — twice.
        """
        doc: Dict[str, object] = {}
        if insert is not None:
            doc["insert"] = np.asarray(insert, dtype=np.float64).tolist()
        if delete is not None:
            doc["delete"] = np.asarray(delete, dtype=np.float64).tolist()
        body = json.dumps(doc).encode("utf-8")
        conn = self._connection()
        conn.request(
            "POST",
            f"/v1/graph/{model}/edges",
            body=body,
            headers={"Content-Type": _JSON},
        )
        response = conn.getresponse()
        payload = response.read()
        if response.status >= 300:
            try:
                message = json.loads(payload).get(
                    "error", payload.decode("utf-8", "replace")
                )
            except Exception:
                message = payload.decode("utf-8", "replace")
            raise http_error_for_status(response.status, str(message))
        return json.loads(payload)

    # ------------------------------------------------------------------ #
    # Training jobs
    # ------------------------------------------------------------------ #
    def train(self, **spec) -> Dict[str, object]:
        """``POST /v1/train``; returns ``{"job_id": ..., "state": ...}``.

        ``spec`` is the :class:`~repro.jobs.JobSpec` document (app,
        dataset, epochs, ...).  Submissions bypass the retry policy: a
        resend after an ambiguous transport failure could start the job
        twice.
        """
        body = json.dumps(spec).encode("utf-8")
        conn = self._connection()
        conn.request(
            "POST", "/v1/train", body=body, headers={"Content-Type": _JSON}
        )
        response = conn.getresponse()
        payload = response.read()
        if response.status >= 300:
            try:
                message = json.loads(payload).get(
                    "error", payload.decode("utf-8", "replace")
                )
            except Exception:
                message = payload.decode("utf-8", "replace")
            raise http_error_for_status(response.status, str(message))
        return json.loads(payload)

    def job(self, job_id: str) -> Dict[str, object]:
        """``GET /v1/jobs/<id>``: status + per-epoch progress."""
        _, payload = self._checked("GET", f"/v1/jobs/{job_id}")
        return json.loads(payload)

    def jobs(self) -> List[Dict[str, object]]:
        """``GET /v1/jobs``: summaries of every known job."""
        _, payload = self._checked("GET", "/v1/jobs")
        return list(json.loads(payload).get("jobs", []))

    def cancel_job(self, job_id: str) -> Dict[str, object]:
        """``DELETE /v1/jobs/<id>``; returns the job document."""
        _, payload = self._checked("DELETE", f"/v1/jobs/{job_id}")
        return json.loads(payload)

    def job_result(self, job_id: str) -> np.ndarray:
        """``GET /v1/jobs/<id>/result`` as a bitwise-faithful array."""
        _, raw = self._checked(
            "GET",
            f"/v1/jobs/{job_id}/result?response=npy",
            headers={"Accept": _NPY},
        )
        return array_from_npy(raw)


def wait_until_healthy(
    host: str, port: int, *, timeout: float = 30.0, interval: float = 0.1
) -> bool:
    """Poll ``/healthz`` until it answers 200 or ``timeout`` passes."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with ServeClient(host, port, timeout=2.0) as client:
                if client.healthz().get("status") == "ok":
                    return True
        except (OSError, ServeHTTPError, socket.timeout):
            pass
        time.sleep(interval)
    return False
