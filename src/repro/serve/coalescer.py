"""Micro-batching request coalescer: concurrent requests → kernel windows.

Serving traffic arrives one request at a time, but the kernel runtime is
at its best when it sees many requests at once: :meth:`KernelRuntime.
run_batch` packs small compatible jobs into one block-diagonal kernel
invocation and fans large ones over its partitions.  The
:class:`Coalescer` is the piece that turns the former into the latter —
an asyncio component that

* collects concurrent :class:`~repro.runtime.KernelRequest` submissions
  into **windows** bounded by ``max_batch`` (size) and ``max_wait_ms``
  (time): the first request of a window starts the timer, and the window
  dispatches when it fills or the timer fires, whichever comes first;
* dispatches each window through ``run_batch`` on a small thread pool
  (the event loop never blocks on kernel work);
* routes **large single jobs** — ``nnz >= shard_min_nnz`` — around the
  window straight into ``submit_sharded``: one such job is already
  enough work to fill the machine, and batching it behind a timer only
  adds latency;
* enforces **admission control**: a bounded queue
  (:class:`~repro.errors.QueueFullError` → 429), per-request deadlines
  checked at dispatch time (:class:`~repro.errors.DeadlineError` → 504)
  and a graceful :meth:`drain` that stops admission
  (:class:`~repro.errors.DrainingError` → 503) and flushes what was
  already accepted.

Correctness contract
--------------------
Coalescing is *numerically invisible*: ``run_batch`` results are bitwise
identical to issuing each request as a sequential single-threaded
``fusedmm`` call, and the sharded route is bitwise identical for the
``reorder="none"`` plans serving always uses — so any interleaving of
concurrent clients receives exactly the bytes serial execution would
have produced.  The test suite asserts this end to end.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, List, Optional

import numpy as np

from ..errors import DeadlineError, DrainingError, QueueFullError
from ..runtime import KernelRequest
from ..runtime.aio import wrap_runtime_future

__all__ = ["Coalescer", "CoalescerStats"]

#: Ring-buffer length for queue-wait samples (p50/p99 come from here).
_WAIT_SAMPLES = 4096


class CoalescerStats:
    """Thread-safe counters + wait-time percentiles of one coalescer.

    Reads come from other threads (``/statz`` handlers driven by the
    benchmark, ``repro runtime stats``) while the event loop writes, so
    mutation goes through a lock.

    Accounting invariant (once the coalescer is idle): every submitted
    request ends in exactly one terminal counter, so ::

        submitted == completed + failed + cancelled
                     + rejected_queue_full + rejected_draining

    ``cancelled`` counts clients that disconnected between admission and
    completion — without it, ``/statz`` occupancy math drifts under
    connection churn.  (``expired_deadline`` is a sub-category of
    ``failed``, not a separate terminal state.)
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.batches = 0
        self.coalesced_requests = 0
        self.sharded_requests = 0
        self.rejected_queue_full = 0
        self.rejected_draining = 0
        self.expired_deadline = 0
        self._waits_ms: Deque[float] = deque(maxlen=_WAIT_SAMPLES)

    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def record_window(self, size: int, waits_ms: List[float]) -> None:
        with self._lock:
            self.batches += 1
            self.coalesced_requests += size
            self._waits_ms.extend(waits_ms)

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            waits = np.asarray(self._waits_ms, dtype=np.float64)
            out: Dict[str, object] = {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "batches": self.batches,
                "coalesced_requests": self.coalesced_requests,
                "sharded_requests": self.sharded_requests,
                "rejected_queue_full": self.rejected_queue_full,
                "rejected_draining": self.rejected_draining,
                "expired_deadline": self.expired_deadline,
            }
        out["mean_window_occupancy"] = (
            round(out["coalesced_requests"] / out["batches"], 3)
            if out["batches"]
            else 0.0
        )
        if waits.size:
            out["wait_ms_p50"] = round(float(np.percentile(waits, 50)), 3)
            out["wait_ms_p99"] = round(float(np.percentile(waits, 99)), 3)
        else:
            out["wait_ms_p50"] = out["wait_ms_p99"] = 0.0
        return out


class _Pending:
    """One admitted request waiting in (or dispatched from) a window."""

    __slots__ = ("request", "future", "enqueued", "deadline")

    def __init__(
        self,
        request: KernelRequest,
        future: "asyncio.Future[np.ndarray]",
        deadline: Optional[float],
    ) -> None:
        self.request = request
        self.future = future
        self.enqueued = time.monotonic()
        self.deadline = deadline


class Coalescer:
    """Micro-batching front-end over one :class:`~repro.runtime.KernelRuntime`.

    Must be used from within a running event loop (the HTTP server's, or
    an ``asyncio.run`` scope in tests/benchmarks).  The runtime is *not*
    owned: callers close it themselves after :meth:`drain`.

    Parameters
    ----------
    runtime:
        The kernel runtime windows dispatch into.
    max_batch:
        Window capacity; ``1`` disables coalescing (each request
        dispatches alone — the serve benchmark's baseline mode).
    max_wait_ms:
        Window timer: how long the first request of a window waits for
        company before the window dispatches anyway.
    idle_flush_ms:
        Optional early flush: when set, the window also dispatches this
        long after the *last* arrival — so a closed-loop burst (N clients
        fire together, then go quiet until their responses land) coalesces
        with ~``idle_flush_ms`` of added latency instead of always paying
        the full ``max_wait_ms``.  ``0`` disables the heuristic.
    max_queue:
        Admission bound on requests admitted but not yet dispatched.
    shard_min_nnz:
        Single jobs at or above this nnz bypass the window and route
        through ``submit_sharded`` (defaults to the runtime's own
        ``shard_min_nnz``).
    dispatch_workers:
        Threads executing flushed windows (and in-process large jobs).
    """

    def __init__(
        self,
        runtime,
        *,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        idle_flush_ms: float = 0.25,
        max_queue: int = 256,
        shard_min_nnz: Optional[int] = None,
        dispatch_workers: int = 2,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.runtime = runtime
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.idle_flush_ms = min(idle_flush_ms, max_wait_ms)
        self.max_queue = max_queue
        self.shard_min_nnz = (
            runtime.shard_min_nnz if shard_min_nnz is None else int(shard_min_nnz)
        )
        self.stats = CoalescerStats()
        self._window: List[_Pending] = []
        self._queued = 0
        self._inflight: "set[asyncio.Task]" = set()
        self._timer: Optional[asyncio.TimerHandle] = None
        self._idle_timer: Optional[asyncio.TimerHandle] = None
        self._draining = False
        self._executor = ThreadPoolExecutor(
            max_workers=dispatch_workers, thread_name_prefix="repro-serve"
        )
        # The serving layer surfaces its health through the runtime's own
        # observability: stats() grows a "coalescer" section while a
        # coalescer is attached.
        runtime.attach_stats_section("coalescer", self.stats.as_dict)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        request: KernelRequest,
        *,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        """Admit one request and await its result.

        ``deadline_ms`` bounds *queueing*: a request still undispatched
        when its deadline passes fails with :class:`DeadlineError`
        instead of running a kernel nobody is waiting for.  Raises
        :class:`QueueFullError` at the admission bound and
        :class:`DrainingError` once :meth:`drain` has begun.
        """
        self.stats.bump("submitted")
        if self._draining:
            self.stats.bump("rejected_draining")
            raise DrainingError("server is draining; not accepting new requests")
        if self._queued >= self.max_queue:
            self.stats.bump("rejected_queue_full")
            raise QueueFullError(
                f"admission queue full ({self.max_queue} requests waiting)"
            )
        # Normalise on the loop thread: shape errors surface here as 400s,
        # never inside a window where they would poison batchmates.
        request = request.normalized()
        loop = asyncio.get_running_loop()
        deadline = (
            None if not deadline_ms else time.monotonic() + deadline_ms / 1000.0
        )

        # Large singles: one of these is a machine-filling job already —
        # route it straight to the sharded tier (or the in-process path on
        # a dispatch thread) instead of delaying it behind a window timer.
        if request.A.nnz >= self.shard_min_nnz:
            # Count the large single against the admission bound *here*,
            # before control returns to the loop: the execution task may
            # not run until long after many more submissions were checked,
            # so incrementing inside the task lets a burst of large
            # singles all pass the ``_queued >= max_queue`` check above
            # and overshoot the bound.
            self._queued += 1
            return await self._submit_large(request, deadline)

        pending = _Pending(request, loop.create_future(), deadline)
        self._window.append(pending)
        self._queued += 1
        if len(self._window) >= self.max_batch:
            self._flush()
        else:
            if self._timer is None:
                self._timer = loop.call_later(self.max_wait_ms / 1000.0, self._flush)
            if self.idle_flush_ms > 0:
                # Re-arm the idle timer on every arrival: the window
                # dispatches shortly after the burst stops growing.
                if self._idle_timer is not None:
                    self._idle_timer.cancel()
                self._idle_timer = loop.call_later(
                    self.idle_flush_ms / 1000.0, self._flush
                )
        try:
            result = await pending.future
        finally:
            # Cancellation (client gone) must not leave the slot counted.
            if not pending.future.done():
                pending.future.cancel()
        self.stats.bump("completed")
        return result

    async def _submit_large(
        self, request: KernelRequest, deadline: Optional[float]
    ) -> np.ndarray:
        # The execution runs as its own task registered in ``_inflight``,
        # so :meth:`drain` awaits in-flight large singles exactly like
        # dispatched windows (and a cancelled client connection doesn't
        # abandon the kernel mid-flight).
        task = asyncio.get_running_loop().create_task(
            self._execute_large(request, deadline)
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)
        return await task

    async def _execute_large(
        self, request: KernelRequest, deadline: Optional[float]
    ) -> np.ndarray:
        # ``_queued`` was already incremented at admission time in
        # :meth:`submit`; this task only ever releases the slot.
        self.stats.bump("sharded_requests")
        try:
            if deadline is not None and time.monotonic() > deadline:
                self.stats.bump("expired_deadline")
                raise DeadlineError("deadline expired before dispatch")
            opts = dict(
                pattern=request.pattern,
                backend=request.backend,
                block_size=request.block_size,
                strategy=request.strategy,
                # Serving promises bitwise identity with serial execution;
                # the locality tier trades exactly that away, so request
                # plans pin the natural order regardless of the runtime's
                # default.
                reorder="none",
                **dict(request.overrides),
            )
            if self.runtime.sharded_capacity > 0:
                # Local worker processes and/or registered remote hosts:
                # submit_sharded routes across whichever are live (and
                # itself falls back in-process if capacity vanished).
                result = await wrap_runtime_future(
                    self.runtime.submit_sharded(request.A, request.X, request.Y, **opts)
                )
            else:
                loop = asyncio.get_running_loop()
                result = await loop.run_in_executor(
                    self._executor,
                    lambda: self.runtime.run(request.A, request.X, request.Y, **opts),
                )
        except BaseException:
            self.stats.bump("failed")
            raise
        finally:
            self._queued -= 1
        self.stats.bump("completed")
        return result

    # ------------------------------------------------------------------ #
    # Window dispatch
    # ------------------------------------------------------------------ #
    def _flush(self) -> None:
        """Close the open window and dispatch it (loop thread only)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._idle_timer is not None:
            self._idle_timer.cancel()
            self._idle_timer = None
        if not self._window:
            return
        window, self._window = self._window, []
        task = asyncio.get_running_loop().create_task(self._run_window(window))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_window(self, window: List[_Pending]) -> None:
        self._queued -= len(window)
        now = time.monotonic()
        live: List[_Pending] = []
        waits_ms: List[float] = []
        for p in window:
            if p.future.done():  # client cancelled while queued
                self.stats.bump("cancelled")
                continue
            if p.deadline is not None and now > p.deadline:
                self.stats.bump("expired_deadline")
                self.stats.bump("failed")
                p.future.set_exception(
                    DeadlineError("deadline expired before dispatch")
                )
                continue
            waits_ms.append((now - p.enqueued) * 1000.0)
            live.append(p)
        if not live:
            return
        self.stats.record_window(len(live), waits_ms)
        loop = asyncio.get_running_loop()
        requests = [p.request for p in live]
        try:
            results = await loop.run_in_executor(
                self._executor, self.runtime.run_batch, requests
            )
        except BaseException as exc:
            # One malformed batchmate must not hang the others: everyone
            # in the window learns the batch failed.
            for p in live:
                if not p.future.done():
                    self.stats.bump("failed")
                    p.future.set_exception(exc)
                else:  # client gone while the batch executed
                    self.stats.bump("cancelled")
            return
        for p, Z in zip(live, results):
            if not p.future.done():
                p.future.set_result(Z)
            else:  # client gone while the batch executed
                self.stats.bump("cancelled")

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def queued(self) -> int:
        """Requests admitted but not yet dispatched."""
        return self._queued

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admission, flush the open window, await in-flight work.

        Returns ``True`` when everything finished inside ``timeout``
        (``None`` = wait forever).  New :meth:`submit` calls fail with
        :class:`DrainingError` from the moment this is called.
        """
        self._draining = True
        self._flush()
        pending = set(self._inflight)
        if not pending:
            return True
        done, not_done = await asyncio.wait(pending, timeout=timeout)
        return not not_done

    def close(self) -> None:
        """Release the dispatch threads (call after :meth:`drain`)."""
        self.runtime.attach_stats_section("coalescer", None)
        self._executor.shutdown(wait=True)
