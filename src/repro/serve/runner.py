"""Run a :class:`KernelServer` on a background thread (bench + tests).

The benchmark's closed-loop clients and the test suite both need a live
server inside the current process without blocking it.
:class:`BackgroundServer` owns a private event loop on a daemon thread,
starts the server there (``port=0`` → ephemeral), and tears everything
down — graceful drain included — on :meth:`stop` / context exit.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from .config import ServeConfig
from .server import KernelServer

__all__ = ["BackgroundServer"]


class BackgroundServer:
    """An in-process ``repro serve`` instance on its own loop thread.

    Example
    -------
    >>> from repro.serve import ServeConfig
    >>> from repro.serve.runner import BackgroundServer
    >>> with BackgroundServer(ServeConfig(port=0, models=())) as bg:
    ...     port = bg.port   # doctest: +SKIP
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        start_timeout: float = 120.0,
    ) -> None:
        self.server = KernelServer(config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None
        self._start_timeout = start_timeout

    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.config.host

    @property
    def wire_port(self) -> Optional[int]:
        """The bound binary wire port (``None`` when not configured)."""
        return self.server.wire_port

    def start(self) -> "BackgroundServer":
        if self._thread is not None:
            return self

        async def _main() -> None:
            try:
                await self.server.start()
            except BaseException as exc:  # registry/model failures
                self._startup_error = exc
                self._ready.set()
                return
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()
            await self.server.shutdown()

        def _run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(_main())
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-serve-bg", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self._start_timeout):
            raise TimeoutError("background server did not start in time")
        if self._startup_error is not None:
            self._thread.join(timeout=5)
            raise self._startup_error
        return self

    def run_coroutine(self, coro):
        """Run ``coro`` on the server's loop, return its result (blocking)."""
        assert self._loop is not None, "server not started"
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def stop(self, timeout: float = 60.0) -> None:
        if self._thread is None or self._loop is None:
            return
        if self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
