"""The asyncio HTTP serving front-end (``repro serve``).

:class:`KernelServer` glues the pieces of :mod:`repro.serve` together:
the :class:`~repro.serve.registry.ModelRegistry` (warm graphs, models and
plans), the :class:`~repro.serve.coalescer.Coalescer` (micro-batching +
admission control) and the handcrafted HTTP/1.1 layer of
:mod:`repro.serve.protocol`.

Endpoints
---------
``GET  /healthz``
    ``200 {"status": "ok"}`` while serving, ``503`` once draining.
``GET  /statz``
    Coalescer stats (batches formed, mean window occupancy, p50/p99
    queue wait), runtime stats (plan-cache hit rate, scheduling
    counters, shard tier), model listing, uptime and config.
``POST /v1/kernel``
    One FusedMM execution.  JSON envelope::

        {"pattern": "sigmoid_embedding",      # any registered pattern
         "model": "cora-f2v",                 # a registered graph…
         "graph": {"shape": [n, n], "indptr": [...],
                   "indices": [...], "data": [...]},   # …or inline CSR
         "x": [[...]] | {"npy_b64": "..."},   # operands (y optional)
         "backend": "auto", "deadline_ms": 50,
         "response": "json" | "npy"}

    Alternatively ``Content-Type: application/x-npy`` with the raw
    ``.npy`` X operand as the body and ``model``/``pattern`` in the query
    string — the zero-copy fast path.  ``response: "npy"`` (or
    ``Accept: application/x-npy``) returns the result as raw ``.npy``.
``POST /v1/embed/<model>`` / ``GET /v1/embed/<model>?ids=0,5,7``
    Rows of a registered model's servable output matrix (embeddings,
    positions or class probabilities).
``POST /v1/graph/<name>/edges``
    Live edge updates against a registered graph::

        {"insert": [[u, v, weight], ...],   # upsert; weight optional→1.0
         "delete": [[u, v], ...]}           # applied before inserts

    Returns the new version + fingerprint and per-batch counters.  The
    delta-CSR overlay advances atomically: requests admitted before the
    swap keep computing on the version they resolved.

Status mapping: admission queue full → 429, draining → 503, deadline
expired → 504, malformed payloads/unknown names → 400/404, oversized
bodies → 413.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import DatasetError, JobNotFoundError, ReproError, ServeError
from ..jobs import JobManager, JobSpec
from ..runtime import KernelRequest
from ..sparse import CSRMatrix
from .coalescer import Coalescer
from .config import ServeConfig, resolve_deadline_ms
from .protocol import (
    HTTPRequest,
    ProtocolError,
    array_from_npy,
    decode_array,
    encode_array,
    npy_bytes,
    read_http_request,
    write_http_response,
)
from .registry import ModelRegistry

__all__ = ["KernelServer"]

_JSON = "application/json"
_NPY = "application/x-npy"


def _json_body(payload: Dict[str, object]) -> bytes:
    return json.dumps(payload).encode("utf-8")


def _error_body(status: int, message: str) -> bytes:
    return _json_body({"error": message, "status": status})


class KernelServer:
    """Asyncio HTTP server coalescing kernel traffic onto one runtime.

    Typical lifecycle::

        server = KernelServer(ServeConfig(port=8571))
        server.run()          # load registry, serve until SIGINT, drain

    or, embedded in an existing loop / the tests::

        await server.start()          # registry.load() + listener up
        ...
        await server.shutdown()       # drain + close

    ``port=0`` binds an ephemeral port; :attr:`port` reports the real one
    once started.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.registry = ModelRegistry(self.config)
        self.coalescer: Optional[Coalescer] = None
        self.wire: Optional["WireServer"] = None
        #: training-job supervisor (``/v1/train``); built on :meth:`start`
        self.jobs: Optional[JobManager] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: "set[asyncio.Task]" = set()
        self._started = time.monotonic()
        self.requests_served = 0
        #: Shared fault-injection counter for HTTP and wire requests
        #: (``ServeConfig.fault_spec``) — ``None`` in normal operation.
        self.fault_injector = None
        if self.config.fault_spec:
            from ..resilience import FaultInjector, FaultPlan

            self.fault_injector = FaultInjector(
                FaultPlan.from_spec(self.config.fault_spec)
            )

    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    @property
    def wire_port(self) -> Optional[int]:
        """The bound wire port, or ``None`` when wire serving is off."""
        return None if self.wire is None else self.wire.port

    @property
    def draining(self) -> bool:
        return self.coalescer is not None and self.coalescer.draining

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "KernelServer":
        """Load the registry (warm everything) and open the listener."""
        if not self.registry.loaded:
            self.registry.load()
        self.coalescer = Coalescer(
            self.registry.runtime,
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            idle_flush_ms=self.config.idle_flush_ms,
            max_queue=self.config.max_queue,
            shard_min_nnz=self.config.shard_min_nnz,
            dispatch_workers=self.config.dispatch_workers,
        )
        if self.jobs is None:
            from ..resilience import RetryPolicy

            self.jobs = JobManager(
                self.config.job_dir,
                max_active=self.config.max_jobs,
                max_queue=self.config.max_job_queue,
                retry=RetryPolicy(
                    base_delay=0.05,
                    max_delay=1.0,
                    multiplier=2.0,
                    jitter=0.0,
                    max_attempts=self.config.job_retries,
                    seed=0,
                ),
            )
            # Requeue anything a previous process left unfinished; each
            # resumes from its newest durable checkpoint.
            self.jobs.recover()
            self.registry.runtime.attach_stats_section("jobs", self.jobs.stats)
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
        )
        if self.config.wire_port is not None:
            from .wire import WireServer

            self.wire = WireServer(self)
            await self.wire.start()
        self._started = time.monotonic()
        return self

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.wire is not None:
            await self.wire.stop_accepting()
        if self.jobs is not None:
            # Jobs checkpoint at their next epoch boundary and stay
            # resumable on disk; recover() requeues them next start.
            await asyncio.to_thread(self.jobs.close)
            self.registry.runtime.attach_stats_section("jobs", None)
            self.jobs = None
        if self.coalescer is not None:
            # Drain with wire connections still open: frames pipelined
            # before the drain finish and flush normally, frames arriving
            # during it get 503 error frames instead of a dead socket.
            await self.coalescer.drain(timeout=self.config.drain_timeout_s)
        if self.wire is not None:
            await self.wire.close(timeout=self.config.drain_timeout_s)
            self.wire = None
        if self.coalescer is not None:
            self.coalescer.close()
            self.coalescer = None
        # Idle keep-alive connections are parked in read(); in-flight work
        # is already drained, so cutting them now loses nothing.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self.registry.close()

    async def serve_forever(self) -> None:
        """Serve until cancelled (the CLI wraps this with signal handling)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    def run(self) -> None:
        """Blocking entry point: start, serve, drain on SIGINT/SIGTERM."""

        async def _main() -> None:
            await self.start()
            loop = asyncio.get_running_loop()
            stop = loop.create_future()

            def _request_stop() -> None:
                if not stop.done():
                    stop.set_result(None)

            import contextlib
            import signal

            for sig in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError):
                    loop.add_signal_handler(sig, _request_stop)
            wire_note = (
                f", wire on port {self.wire_port}" if self.wire else ""
            )
            print(
                f"repro serve: listening on http://{self.config.host}:{self.port}"
                f"{wire_note} "
                f"(models: {', '.join(self.registry.model_names()) or 'none'})",
                flush=True,
            )
            await stop
            print("repro serve: draining...", flush=True)
            await self.shutdown()
            print("repro serve: drained, bye", flush=True)

        asyncio.run(_main())

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await read_http_request(
                        reader, max_body_bytes=self.config.max_body_bytes
                    )
                except ProtocolError as exc:
                    write_http_response(
                        writer,
                        exc.status,
                        _error_body(exc.status, str(exc)),
                        keep_alive=False,
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                if self.fault_injector is not None:
                    fault = self.fault_injector.step()
                    if fault is not None:
                        if fault.kind == "delay":
                            await asyncio.sleep(fault.arg)
                        elif fault.kind == "drop_frame":
                            # A sever mid-status-line: the client sees a
                            # BadStatusLine, never a parseable response.
                            writer.write(b"HTTP/1.1 2")
                            await writer.drain()
                            break
                        else:  # crash / disconnect: sever unanswered
                            break
                status, body, ctype = await self._dispatch(request)
                self.requests_served += 1
                write_http_response(
                    writer,
                    status,
                    body,
                    content_type=ctype,
                    keep_alive=request.keep_alive,
                )
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Shutdown cut an idle keep-alive connection; close quietly.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):  # pragma: no cover - teardown races
                pass

    async def _dispatch(self, request: HTTPRequest) -> Tuple[int, bytes, str]:
        """Route one request; returns ``(status, body, content_type)``."""
        try:
            if request.path == "/healthz":
                if self.draining:
                    return 503, _json_body({"status": "draining"}), _JSON
                return 200, _json_body({"status": "ok"}), _JSON
            if request.path == "/statz":
                return 200, _json_body(self.statz()), _JSON
            if request.path == "/v1/kernel":
                if request.method != "POST":
                    return 405, _error_body(405, "POST required"), _JSON
                return await self._handle_kernel(request)
            if request.path.startswith("/v1/embed/"):
                if request.method not in ("GET", "POST"):
                    return 405, _error_body(405, "GET or POST required"), _JSON
                return self._handle_embed(request)
            if request.path == "/v1/train":
                if request.method != "POST":
                    return 405, _error_body(405, "POST required"), _JSON
                return self._handle_train(request)
            if request.path == "/v1/jobs" or request.path.startswith("/v1/jobs/"):
                return self._handle_jobs(request)
            if request.path.startswith("/v1/graph/"):
                return await self._handle_graph(request)
            return 404, _error_body(404, f"no route for {request.path}"), _JSON
        except ProtocolError as exc:
            return exc.status, _error_body(exc.status, str(exc)), _JSON
        except ServeError as exc:
            return exc.http_status, _error_body(exc.http_status, str(exc)), _JSON
        except (DatasetError, JobNotFoundError) as exc:
            # KeyError reprs its message; unwrap for a clean wire error.
            message = exc.args[0] if exc.args else str(exc)
            return 404, _error_body(404, str(message)), _JSON
        except ReproError as exc:
            return 400, _error_body(400, str(exc)), _JSON
        except Exception as exc:  # pragma: no cover - defensive
            return 500, _error_body(500, f"internal error: {exc}"), _JSON

    # ------------------------------------------------------------------ #
    # Endpoint handlers
    # ------------------------------------------------------------------ #
    def _resolve_adjacency(self, payload: dict, query: Dict[str, str]) -> CSRMatrix:
        model = payload.get("model") or query.get("model")
        if model is not None:
            return self.registry.graph(str(model))
        graph = payload.get("graph")
        if graph is None:
            raise ProtocolError(
                "request needs 'model' (a registered graph) or an inline 'graph'"
            )
        if not isinstance(graph, dict):
            raise ProtocolError("'graph' must be an object with CSR fields")
        try:
            shape = graph.get("shape")
            indptr = decode_array(graph["indptr"], dtype=np.int64).astype(
                np.int64, copy=False
            )
            indices = decode_array(graph["indices"], dtype=np.int64).astype(
                np.int64, copy=False
            )
            data = decode_array(
                graph.get("data", []), dtype=np.float32
            ).astype(np.float32, copy=False)
            if data.size == 0 and indices.size:
                data = np.ones(indices.shape[0], dtype=np.float32)
            nrows = int(shape[0]) if shape else indptr.shape[0] - 1
            ncols = int(shape[1]) if shape else nrows
            return CSRMatrix(nrows, ncols, indptr, indices, data)
        except ReproError:
            raise
        except ProtocolError:
            raise
        except Exception as exc:
            raise ProtocolError(f"malformed inline graph: {exc}") from exc

    async def _handle_kernel(self, request: HTTPRequest) -> Tuple[int, bytes, str]:
        assert self.coalescer is not None, "server not started"
        ctype = request.headers.get("content-type", _JSON).split(";")[0].strip()
        if ctype == _NPY:
            payload: dict = {}
            X: Optional[np.ndarray] = array_from_npy(request.body)
        else:
            payload = request.json()
            X = None
            if "x" in payload:
                X = decode_array(payload["x"], dtype=np.float32)
        Y = None
        if "y" in payload:
            Y = decode_array(payload["y"], dtype=np.float32)
        A = self._resolve_adjacency(payload, request.query)
        pattern = str(
            payload.get("pattern")
            or request.query.get("pattern")
            or "sigmoid_embedding"
        )
        backend = str(payload.get("backend") or request.query.get("backend") or "auto")
        # Absent and 0 are different: an explicit 0 *disables* the server
        # default, so the sources must be probed for presence (``is None``),
        # never chained with ``or`` (which collapses 0 into "absent").
        raw_deadline: Optional[object] = payload.get("deadline_ms")
        if raw_deadline is None:
            raw_deadline = request.query.get("deadline_ms")
        if raw_deadline is None:
            raw_deadline = request.headers.get("x-deadline-ms")
        try:
            deadline_ms = resolve_deadline_ms(
                raw_deadline, self.config.default_deadline_ms
            )
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid deadline_ms: {raw_deadline!r}") from exc
        kernel_request = KernelRequest(
            A=A, X=X, Y=Y, pattern=pattern, backend=backend
        )
        Z = await self.coalescer.submit(kernel_request, deadline_ms=deadline_ms)
        wants_npy = (
            payload.get("response") == "npy"
            or request.query.get("response") == "npy"
            or request.headers.get("accept", "").startswith(_NPY)
        )
        if wants_npy:
            return 200, npy_bytes(Z), _NPY
        body = _json_body(
            {"shape": list(Z.shape), "pattern": pattern, "z": encode_array(Z)}
        )
        return 200, body, _JSON

    def _handle_embed(self, request: HTTPRequest) -> Tuple[int, bytes, str]:
        name = request.path[len("/v1/embed/") :]
        payload = request.json() if request.method == "POST" else {}
        ids = payload.get("ids")
        try:
            if ids is None and "ids" in request.query:
                raw = request.query["ids"]
                ids = [int(tok) for tok in raw.split(",") if tok] if raw else []
            id_array = None if ids is None else np.asarray(ids, dtype=np.int64)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid ids: {exc}") from exc
        rows = self.registry.embeddings(name, id_array)
        wants_npy = (
            payload.get("response") == "npy"
            or request.query.get("response") == "npy"
            or request.headers.get("accept", "").startswith(_NPY)
        )
        if wants_npy:
            return 200, npy_bytes(rows), _NPY
        body = _json_body(
            {
                "model": name,
                "shape": list(rows.shape),
                "embeddings": encode_array(rows),
            }
        )
        return 200, body, _JSON

    # ------------------------------------------------------------------ #
    # Dynamic graphs
    # ------------------------------------------------------------------ #
    async def _handle_graph(self, request: HTTPRequest) -> Tuple[int, bytes, str]:
        """``POST /v1/graph/<name>/edges``: apply one edge batch.

        The splice + plan refresh runs on a worker thread (serialised by
        the graph's write lock) so concurrent reads — which resolved
        their version at admission — keep flowing on the event loop.
        """
        rest = request.path[len("/v1/graph/") :]
        name, _, tail = rest.rpartition("/")
        if tail != "edges" or not name:
            return 404, _error_body(404, f"no route for {request.path}"), _JSON
        if request.method != "POST":
            return 405, _error_body(405, "POST required"), _JSON
        payload = request.json()
        if not isinstance(payload, dict):
            raise ProtocolError("mutation body must be a JSON object")
        insert = payload.get("insert")
        delete = payload.get("delete")
        if insert is None and delete is None:
            raise ProtocolError(
                "mutation needs 'insert' ([[u, v, w], ...]) and/or "
                "'delete' ([[u, v], ...])"
            )
        result = await asyncio.to_thread(
            self.registry.mutate_graph, name, insert, delete
        )
        return 200, _json_body({"graph": name, **result.as_dict()}), _JSON

    # ------------------------------------------------------------------ #
    # Training jobs
    # ------------------------------------------------------------------ #
    def _handle_train(self, request: HTTPRequest) -> Tuple[int, bytes, str]:
        assert self.jobs is not None, "server not started"
        doc = request.json()
        if isinstance(doc, dict) and "checkpoint_every" not in doc:
            doc = {**doc, "checkpoint_every": self.config.job_checkpoint_every}
        spec = JobSpec.from_dict(doc)
        job_id = self.jobs.submit(spec)
        return 202, _json_body({"job_id": job_id, "state": "pending"}), _JSON

    def _handle_jobs(self, request: HTTPRequest) -> Tuple[int, bytes, str]:
        assert self.jobs is not None, "server not started"
        rest = request.path[len("/v1/jobs") :].strip("/")
        if not rest:
            if request.method != "GET":
                return 405, _error_body(405, "GET required"), _JSON
            return 200, _json_body({"jobs": self.jobs.list_jobs()}), _JSON
        job_id, _, tail = rest.partition("/")
        if tail == "result":
            if request.method != "GET":
                return 405, _error_body(405, "GET required"), _JSON
            rows = self.jobs.result(job_id)
            if (
                request.query.get("response") == "npy"
                or request.headers.get("accept", "").startswith(_NPY)
            ):
                return 200, npy_bytes(rows), _NPY
            return (
                200,
                _json_body(
                    {
                        "job_id": job_id,
                        "shape": list(rows.shape),
                        "result": encode_array(rows),
                    }
                ),
                _JSON,
            )
        if tail:
            return 404, _error_body(404, f"no route for {request.path}"), _JSON
        if request.method == "GET":
            return 200, _json_body(self.jobs.status(job_id)), _JSON
        if request.method == "DELETE":
            return 200, _json_body(self.jobs.cancel(job_id)), _JSON
        return 405, _error_body(405, "GET or DELETE required"), _JSON

    # ------------------------------------------------------------------ #
    def statz(self) -> Dict[str, object]:
        """The ``/statz`` document (also used by tests and the CLI)."""
        runtime_stats = self.registry.runtime.stats()
        coalescer = runtime_stats.pop("coalescer", None)
        if coalescer is None and self.coalescer is not None:
            coalescer = self.coalescer.stats.as_dict()
        cache = runtime_stats.get("plan_cache") or {}
        hits = cache.get("hits", 0)
        misses = cache.get("misses", 0)
        return {
            "uptime_s": round(time.monotonic() - self._started, 3),
            "requests_served": self.requests_served,
            "draining": self.draining,
            "queued": 0 if self.coalescer is None else self.coalescer.queued,
            "plan_cache_hit_rate": (
                round(hits / (hits + misses), 4) if (hits + misses) else 0.0
            ),
            "coalescer": coalescer,
            "jobs": None if self.jobs is None else self.jobs.stats(),
            "wire": None if self.wire is None else self.wire.describe(),
            "runtime": runtime_stats,
            "models": self.registry.describe(),
            "registry_load_seconds": round(self.registry.load_seconds, 3),
            "config": self.config.describe(),
        }
