"""One entry point for both serving transports.

The serving subsystem speaks two protocols — HTTP/1.1
(:class:`~repro.serve.client.ServeClient`) and the length-prefixed binary
wire protocol (:class:`~repro.serve.wire.WireClient`).  Both expose the
same blocking surface (``kernel`` / ``embed`` / ``statz`` / ``close``,
context-manager support) and raise out of the same
:class:`~repro.errors.ServeError` hierarchy, so code that talks to a
server should not care which transport carries the bytes.

:func:`connect` makes that choice a URL::

    from repro.serve import connect

    with connect("http://127.0.0.1:8571") as client:
        Z = client.kernel(model="cora-f2v", x=X)

    with connect("wire://127.0.0.1:8572") as client:   # same calls
        Z = client.kernel(model="cora-f2v", x=X)

:class:`Client` is the structural type of what ``connect`` returns — a
:class:`typing.Protocol`, so the concrete clients satisfy it without
inheriting anything, and user-written fakes do too.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, runtime_checkable
from urllib.parse import urlsplit

import numpy as np

__all__ = ["Client", "connect", "DEFAULT_HTTP_PORT", "CLIENT_SCHEMES"]

#: Default port of the HTTP front-end (mirrors ``ServeConfig.port``).
DEFAULT_HTTP_PORT = 8571

#: URL schemes ``connect`` understands, mapped to the transport they pick.
CLIENT_SCHEMES = ("http", "wire")


@runtime_checkable
class Client(Protocol):
    """The transport-independent client surface.

    Both :class:`~repro.serve.client.ServeClient` and
    :class:`~repro.serve.wire.WireClient` satisfy this protocol; failures
    raise :class:`~repro.errors.ServeError` subclasses on either
    transport.
    """

    def kernel(self, **kwargs) -> np.ndarray:
        """``Z = FusedMM(A, X, Y)`` against a registered model or an
        inline graph; operands accept both ``x=``/``X=`` spellings."""
        ...

    def embed(self, model: str, ids=None) -> np.ndarray:
        """Rows of a registered model's servable output matrix."""
        ...

    def statz(self) -> Dict[str, object]:
        """The server's stats snapshot."""
        ...

    def mutate(self, model: str, insert=None, delete=None) -> Dict[str, object]:
        """Apply one edge batch to a registered graph (deletes first,
        inserts upsert); returns the mutation document.  Never retried —
        a resend after an ambiguous failure would apply the batch twice."""
        ...

    def train(self, **spec) -> Dict[str, object]:
        """Submit a training job (a :class:`~repro.jobs.JobSpec`
        document); returns ``{"job_id": ..., "state": ...}``."""
        ...

    def job(self, job_id: str) -> Dict[str, object]:
        """Status + per-epoch progress of one training job."""
        ...

    def jobs(self) -> list:
        """Summaries of every known training job."""
        ...

    def cancel_job(self, job_id: str) -> Dict[str, object]:
        """Request cancellation of one training job."""
        ...

    def job_result(self, job_id: str) -> np.ndarray:
        """The completed job's output matrix (bitwise-faithful)."""
        ...

    def close(self) -> None:
        """Release the underlying connection."""
        ...

    def __enter__(self) -> "Client": ...

    def __exit__(self, *exc_info) -> None: ...


def connect(url: str, *, timeout: float = 30.0, retry=None) -> Client:
    """Open a client for ``url``, choosing the transport by scheme.

    ``http://host:port`` returns a
    :class:`~repro.serve.client.ServeClient` (port defaults to
    :data:`DEFAULT_HTTP_PORT`); ``wire://host:port`` returns a
    :class:`~repro.serve.wire.WireClient` (port required — the wire
    listener is configured per deployment via ``ServeConfig.wire_port``).
    Raises :class:`ValueError` for unknown schemes or a missing wire
    port.

    ``retry=`` (a :class:`~repro.resilience.RetryPolicy`) arms opt-in
    retries on connection failures and transient 429/503 shedding for
    either transport — safe for this surface because kernel and embed
    calls are pure.
    """
    parsed = urlsplit(url)
    if parsed.scheme not in CLIENT_SCHEMES:
        raise ValueError(
            f"unsupported client URL scheme {parsed.scheme!r} in {url!r}; "
            f"expected one of {CLIENT_SCHEMES}"
        )
    host = parsed.hostname or "127.0.0.1"
    port: Optional[int] = parsed.port
    if parsed.scheme == "http":
        from .client import ServeClient

        return ServeClient(
            host, port or DEFAULT_HTTP_PORT, timeout=timeout, retry=retry
        )
    if port is None:
        raise ValueError(
            f"wire:// URLs must carry an explicit port (got {url!r}); the "
            "wire listener has no fixed default — see ServeConfig.wire_port"
        )
    from .wire import WireClient

    return WireClient(host, port, timeout=timeout, retry=retry)
