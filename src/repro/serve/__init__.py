"""Async serving subsystem: request coalescing + micro-batching front-end.

This package turns the batch-oriented kernel runtime into a network
service (the ROADMAP's "async serving beyond futures" tier):

``config``     :class:`ServeConfig` / :class:`ModelSpec` — one knob
               surface for windows, admission control, runtime and the
               pre-loaded model set (consumed by all four apps)
``coalescer``  :class:`Coalescer` — micro-batching of concurrent requests
               into time/size-bounded windows over ``run_batch``, large
               singles routed through ``submit_sharded``, bounded-queue
               admission, deadlines, graceful drain
``registry``   :class:`ModelRegistry` — named graphs + trained app models
               with plans/reorderings/worker pools warm before the first
               request
``server``     :class:`KernelServer` — handcrafted asyncio HTTP/1.1
               front-end (``/v1/kernel``, ``/v1/embed/<model>``,
               ``/v1/graph/<name>/edges``, ``/v1/train``,
               ``/v1/jobs/<id>``, ``/healthz``,
               ``/statz``) with JSON and binary npy payloads; owns the
               :class:`~repro.jobs.JobManager` behind the training-job
               endpoints
``client``     :class:`ServeClient` — stdlib blocking client (benchmarks,
               smoke tests)
``connect``    :func:`connect` — URL-schemed factory (``http://`` /
               ``wire://``) returning the transport-independent
               :class:`Client` protocol
``wire``       :class:`WireServer` / :class:`WireClient` — length-prefixed
               binary framing over raw sockets with pipelining and
               credit-based flow control; shares the coalescer/registry
               with the HTTP front-end
``runner``     :class:`BackgroundServer` — an in-process server on its own
               loop thread (benchmarks, tests)
``protocol``   wire parsing and array payload codecs

Correctness contract: coalesced responses are **bitwise identical** to the
same requests executed serially — the coalescer only ever rides the
runtime paths that already guarantee it (``run_batch``, ``reorder="none"``
sharded plans).

Example
-------
>>> from repro.serve import KernelServer, ServeConfig, ModelSpec
>>> config = ServeConfig(port=0, models=(ModelSpec("m", "cora", scale=0.1),))
>>> KernelServer(config).run()  # doctest: +SKIP
"""

from .client import ServeClient, ServeHTTPError, wait_until_healthy
from .coalescer import Coalescer, CoalescerStats
from .config import DEFAULT_MODELS, ModelSpec, ServeConfig
from .connect import Client, connect
from .protocol import (
    HTTPRequest,
    ProtocolError,
    array_from_npy,
    decode_array,
    encode_array,
    npy_bytes,
)
from .registry import ModelRegistry, RegisteredModel
from .runner import BackgroundServer
from .server import KernelServer
from .wire import WireClient, WireServer

__all__ = [
    "ServeConfig",
    "ModelSpec",
    "DEFAULT_MODELS",
    "Coalescer",
    "CoalescerStats",
    "ModelRegistry",
    "RegisteredModel",
    "KernelServer",
    "WireServer",
    "WireClient",
    "BackgroundServer",
    "ServeClient",
    "ServeHTTPError",
    "Client",
    "connect",
    "wait_until_healthy",
    "HTTPRequest",
    "ProtocolError",
    "npy_bytes",
    "array_from_npy",
    "encode_array",
    "decode_array",
]
