"""Length-prefixed binary wire protocol for the serving front-end.

The HTTP/1.1 front-end is the compatibility surface; on 1 CPU its parse +
JSON framing dominates small requests, so the transport — not the kernel
— bounds small-request throughput.  This module adds the transport-light
alternative: a framed binary protocol over raw asyncio sockets that
shares the :class:`~repro.serve.coalescer.Coalescer` and
:class:`~repro.serve.registry.ModelRegistry` with the HTTP server, so
responses stay bitwise identical to serial execution regardless of which
front door a request used.

Frame layout (network byte order)::

    magic      2 bytes   b"RW"
    version    1 byte    WIRE_VERSION (1)
    opcode     1 byte    OP_*
    request_id 8 bytes   client-assigned; echoed on the response
    length     4 bytes   payload byte count
    payload    <length>  opcode-specific container (below)

Payload container: ``meta_len:u32 | meta JSON | (blob_len:u32 | npy blob)``
repeated once per name in ``meta["arrays"]`` — arrays ride as NumPy
``.npy`` blobs (bitwise-faithful dtypes, no float→decimal round trip),
everything scalar rides in the small JSON meta block.

Connection protocol:

* On connect the server sends one ``OP_HELLO`` frame (request-id 0)
  whose meta carries the **credit grant**: the number of outstanding
  (unanswered) requests this connection may pipeline.  Each request
  consumes a credit; each response (result or error) replenishes it.
  Exceeding the grant is a protocol error — the server answers with a
  status-400 error frame and closes.  Credits bound per-connection
  memory without touching the global admission queue.
* Clients **pipeline**: many request-ids may be outstanding and
  responses arrive in *completion* order, not submission order.
* Errors mirror the HTTP status mapping (429 queue full, 503 draining,
  504 deadline expired, 400/404 malformed or unknown names) as
  ``OP_ERROR`` frames carrying ``{"status": ..., "error": ...}``.
"""

from __future__ import annotations

import asyncio
import socket
import time
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import DatasetError, JobNotFoundError, ReproError, ServeError
from ..framing import (
    FRAME_HEADER,
    FrameCodec,
    ProtocolError,
    decode_payload,
    encode_payload,
    error_from_meta,
    error_payload as _error_payload,
)
from ..resilience import RetryPolicy
from ..runtime import KernelRequest
from ..sparse import CSRMatrix
from .config import resolve_deadline_ms

__all__ = [
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "WIRE_CODEC",
    "OP_HELLO",
    "OP_KERNEL",
    "OP_EMBED",
    "OP_STATZ",
    "OP_TRAIN",
    "OP_JOB",
    "OP_MUTATE",
    "OP_RESULT",
    "OP_ERROR",
    "FRAME_HEADER",
    "pack_frame",
    "unpack_header",
    "encode_payload",
    "decode_payload",
    "WireServer",
    "WireClient",
]

WIRE_MAGIC = b"RW"
WIRE_VERSION = 1

OP_HELLO = 0x01
OP_KERNEL = 0x10
OP_EMBED = 0x11
OP_STATZ = 0x12
OP_TRAIN = 0x13
OP_JOB = 0x14
OP_MUTATE = 0x15
OP_RESULT = 0x20
OP_ERROR = 0x21

_REQUEST_OPS = (OP_KERNEL, OP_EMBED, OP_STATZ, OP_TRAIN, OP_JOB, OP_MUTATE)

#: The frame codec of this protocol.  Mechanics (header layout, payload
#: container, blocking/async readers) live in :mod:`repro.framing` and are
#: shared with the distributed worker transport; only the magic/version
#: stamp differs.
WIRE_CODEC = FrameCodec(WIRE_MAGIC, WIRE_VERSION)


# ---------------------------------------------------------------------- #
# Frame codec (module-level aliases kept for compatibility)
# ---------------------------------------------------------------------- #
def pack_frame(opcode: int, request_id: int, payload: bytes) -> bytes:
    """One serialised frame: fixed header + payload."""
    return WIRE_CODEC.pack_frame(opcode, request_id, payload)


def unpack_header(blob: bytes) -> Tuple[int, int, int]:
    """Parse a header → ``(opcode, request_id, payload_length)``."""
    return WIRE_CODEC.unpack_header(blob)


async def _read_frame(
    reader: asyncio.StreamReader, *, max_payload: int
) -> Optional[Tuple[int, int, bytes]]:
    """One frame off an asyncio reader; ``None`` on clean EOF."""
    return await WIRE_CODEC.read_frame_async(reader, max_payload=max_payload)


# ---------------------------------------------------------------------- #
# Server
# ---------------------------------------------------------------------- #
class WireServer:
    """The binary-protocol listener beside a ``KernelServer``.

    Owns no kernel state: requests decode into the *same*
    :class:`~repro.runtime.KernelRequest` objects and flow through the
    same coalescer as HTTP traffic, so the bitwise-identity contract
    holds across transports.  The owning server starts/stops it and is
    consulted for its registry, coalescer and config.
    """

    def __init__(self, owner) -> None:
        self._owner = owner
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: "set[asyncio.Task]" = set()
        self._started = time.monotonic()
        self.frames_served = 0
        self.errors_sent = 0
        self.protocol_errors = 0
        self.connections_accepted = 0

    # ------------------------------------------------------------------ #
    @property
    def config(self):
        return self._owner.config

    @property
    def port(self) -> int:
        """The bound wire port (meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return self.config.wire_port or 0
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "WireServer":
        assert self.config.wire_port is not None, "wire_port not configured"
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.wire_port,
        )
        self._started = time.monotonic()
        return self

    async def stop_accepting(self) -> None:
        """Close the listener; existing connections keep draining."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def close(self, timeout: Optional[float] = None) -> None:
        """Wind down connections after the coalescer drained.

        Cancelling read loops outright would silently drop any request
        frames a client pipelined that are still buffered unread on the
        socket — the contract is that every received frame is answered
        (with a 503 error frame once draining).  So connections first get
        ``timeout`` seconds to finish naturally: readers keep serving
        (drain answers), clients collect their outstanding responses and
        hang up.  Whatever is still connected after the grace is cut.
        """
        if self._connections and timeout:
            await asyncio.wait(set(self._connections), timeout=timeout)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    def describe(self) -> Dict[str, object]:
        """The ``wire`` block of ``/statz``."""
        return {
            "port": self.port,
            "credits": self.config.wire_credits,
            "connections_accepted": self.connections_accepted,
            "frames_served": self.frames_served,
            "errors_sent": self.errors_sent,
            "protocol_errors": self.protocol_errors,
        }

    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        self.connections_accepted += 1
        write_lock = asyncio.Lock()
        outstanding: "set[asyncio.Task]" = set()

        async def send(opcode: int, request_id: int, payload: bytes) -> None:
            # Responses come from concurrently completing tasks; the lock
            # keeps frames from interleaving mid-write.
            async with write_lock:
                writer.write(pack_frame(opcode, request_id, payload))
                await writer.drain()

        try:
            await send(
                OP_HELLO,
                0,
                encode_payload(
                    {
                        "version": WIRE_VERSION,
                        "credits": self.config.wire_credits,
                        "max_payload": self.config.max_body_bytes,
                    }
                ),
            )
            while True:
                frame = await _read_frame(
                    reader, max_payload=self.config.max_body_bytes
                )
                if frame is None:
                    break
                opcode, request_id, payload = frame
                if opcode not in _REQUEST_OPS:
                    raise ProtocolError(f"unexpected opcode 0x{opcode:02x}")
                if len(outstanding) >= self.config.wire_credits:
                    # The client wrote past its grant: protocol misuse,
                    # not load — deliberately 400, never 429, so flow
                    # control violations stay distinguishable from
                    # admission-control shedding.
                    raise ProtocolError(
                        f"credit limit exceeded ({self.config.wire_credits} "
                        "outstanding requests allowed)"
                    )
                injector = getattr(self._owner, "fault_injector", None)
                if injector is not None and injector:
                    fault = injector.step()
                    if fault is not None:
                        if fault.kind == "delay":
                            await asyncio.sleep(fault.arg)
                        elif fault.kind == "drop_frame":
                            # Mid-frame cut: half a response, then sever.
                            blob = pack_frame(
                                OP_RESULT,
                                request_id,
                                encode_payload({"status": 200}),
                            )
                            async with write_lock:
                                writer.write(blob[: max(1, len(blob) // 2)])
                                await writer.drain()
                            break
                        else:  # crash / disconnect: sever unanswered
                            break
                job = asyncio.ensure_future(
                    self._serve_frame(send, opcode, request_id, payload)
                )
                outstanding.add(job)
                job.add_done_callback(outstanding.discard)
        except ProtocolError as exc:
            self.protocol_errors += 1
            try:
                await send(OP_ERROR, 0, _error_payload(exc.status, str(exc)))
            except (ConnectionError, RuntimeError, OSError):
                pass
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            # Clean EOF: let pipelined requests already admitted finish
            # and flush their responses before tearing the socket down.
            if outstanding:
                await asyncio.gather(*outstanding, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):  # pragma: no cover - teardown races
                pass

    async def _serve_frame(
        self, send, opcode: int, request_id: int, payload: bytes
    ) -> None:
        """Decode → execute → respond for one request frame.

        Mirrors ``KernelServer._dispatch``'s error mapping so both
        transports answer identical statuses for identical failures.
        """
        try:
            meta, arrays = decode_payload(payload)
            if opcode == OP_STATZ:
                self.frames_served += 1
                body = encode_payload(
                    {"status": 200, "statz": self._owner.statz()}
                )
            elif opcode == OP_TRAIN:
                self.frames_served += 1
                body = self._handle_train(meta)
            elif opcode == OP_JOB:
                self.frames_served += 1
                body = self._handle_job(meta)
            elif opcode == OP_MUTATE:
                body = await self._handle_mutate(meta, arrays)
                self.frames_served += 1
            else:
                if opcode == OP_KERNEL:
                    result = await self._handle_kernel(meta, arrays)
                else:
                    result = self._handle_embed(meta, arrays)
                self.frames_served += 1
                body = encode_payload(
                    {"status": 200, "shape": list(result.shape)}, {"z": result}
                )
            response = (OP_RESULT, body)
        except ProtocolError as exc:
            response = (OP_ERROR, _error_payload(exc.status, str(exc)))
        except ServeError as exc:
            response = (OP_ERROR, _error_payload(exc.http_status, str(exc)))
        except (DatasetError, JobNotFoundError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            response = (OP_ERROR, _error_payload(404, str(message)))
        except ReproError as exc:
            response = (OP_ERROR, _error_payload(400, str(exc)))
        except Exception as exc:  # pragma: no cover - defensive
            response = (OP_ERROR, _error_payload(500, f"internal error: {exc}"))
        if response[0] == OP_ERROR:
            self.errors_sent += 1
        try:
            await send(response[0], request_id, response[1])
        except (ConnectionError, RuntimeError, OSError):
            # The client hung up before its response; nothing to tell it.
            pass

    # ------------------------------------------------------------------ #
    def _job_manager(self):
        jobs = self._owner.jobs
        if jobs is None:
            raise ProtocolError("server not started", status=503)
        return jobs

    def _handle_train(self, meta: dict) -> bytes:
        """``OP_TRAIN``: the meta block *is* the job spec."""
        from ..jobs import JobSpec

        doc = dict(meta)
        doc.pop("arrays", None)  # payload-container bookkeeping, not spec
        if "checkpoint_every" not in doc:
            doc["checkpoint_every"] = self.config.job_checkpoint_every
        job_id = self._job_manager().submit(JobSpec.from_dict(doc))
        return encode_payload(
            {"status": 200, "job_id": job_id, "state": "pending"}
        )

    def _handle_job(self, meta: dict) -> bytes:
        """``OP_JOB``: ``meta["action"]`` is status/list/cancel/result."""
        jobs = self._job_manager()
        action = str(meta.get("action", "status"))
        if action == "list":
            return encode_payload({"status": 200, "jobs": jobs.list_jobs()})
        job_id = meta.get("job_id")
        if not job_id:
            raise ProtocolError(f"job action {action!r} needs 'job_id'")
        job_id = str(job_id)
        if action == "status":
            return encode_payload({"status": 200, "job": jobs.status(job_id)})
        if action == "cancel":
            return encode_payload({"status": 200, "job": jobs.cancel(job_id)})
        if action == "result":
            rows = jobs.result(job_id)
            return encode_payload(
                {"status": 200, "shape": list(rows.shape)}, {"z": rows}
            )
        raise ProtocolError(f"unknown job action {action!r}")

    async def _handle_mutate(
        self, meta: dict, arrays: Dict[str, np.ndarray]
    ) -> bytes:
        """``OP_MUTATE``: apply one edge batch to a registered graph.

        The mutation itself is CPU work behind the graph's write lock, so
        it runs on a worker thread — the event loop keeps serving reads
        pinned to the pre-mutation version while the new one builds.
        """
        model = meta.get("model")
        if not model:
            raise ProtocolError("mutate frame needs 'model'")
        insert = arrays.get("insert")
        delete = arrays.get("delete")
        if insert is None and delete is None:
            raise ProtocolError(
                "mutate frame needs an 'insert' (n,3) and/or 'delete' (n,2) "
                "array"
            )
        result = await asyncio.to_thread(
            self._owner.registry.mutate_graph, str(model), insert, delete
        )
        return encode_payload(
            {"status": 200, "graph": str(model), **result.as_dict()}
        )

    # ------------------------------------------------------------------ #
    def _resolve_adjacency(
        self, meta: dict, arrays: Dict[str, np.ndarray]
    ) -> CSRMatrix:
        model = meta.get("model")
        if model is not None:
            return self._owner.registry.graph(str(model))
        if "indptr" not in arrays or "indices" not in arrays:
            raise ProtocolError(
                "kernel frame needs 'model' (a registered graph) or inline "
                "'indptr'/'indices' arrays"
            )
        try:
            indptr = arrays["indptr"].astype(np.int64, copy=False)
            indices = arrays["indices"].astype(np.int64, copy=False)
            data = arrays.get(
                "data", np.ones(indices.shape[0], dtype=np.float32)
            ).astype(np.float32, copy=False)
            shape = meta.get("graph_shape")
            nrows = int(shape[0]) if shape else indptr.shape[0] - 1
            ncols = int(shape[1]) if shape else nrows
            return CSRMatrix(nrows, ncols, indptr, indices, data)
        except ReproError:
            raise
        except Exception as exc:
            raise ProtocolError(f"malformed inline graph: {exc}") from exc

    async def _handle_kernel(
        self, meta: dict, arrays: Dict[str, np.ndarray]
    ) -> np.ndarray:
        coalescer = self._owner.coalescer
        if coalescer is None:
            raise ProtocolError("server not started", status=503)
        A = self._resolve_adjacency(meta, arrays)
        try:
            deadline_ms = resolve_deadline_ms(
                meta.get("deadline_ms"), self.config.default_deadline_ms
            )
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                f"invalid deadline_ms: {meta.get('deadline_ms')!r}"
            ) from exc
        request = KernelRequest(
            A=A,
            X=arrays.get("x"),
            Y=arrays.get("y"),
            pattern=str(meta.get("pattern", "sigmoid_embedding")),
            backend=str(meta.get("backend", "auto")),
        )
        return await coalescer.submit(request, deadline_ms=deadline_ms)

    def _handle_embed(
        self, meta: dict, arrays: Dict[str, np.ndarray]
    ) -> np.ndarray:
        model = meta.get("model")
        if not model:
            raise ProtocolError("embed frame needs 'model'")
        ids = meta.get("ids")
        if "ids" in arrays:
            id_array: Optional[np.ndarray] = arrays["ids"].astype(
                np.int64, copy=False
            )
        elif ids is not None:
            try:
                id_array = np.asarray(ids, dtype=np.int64)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(f"invalid ids: {exc}") from exc
        else:
            id_array = None
        return self._owner.registry.embeddings(str(model), id_array)


# ---------------------------------------------------------------------- #
# Client
# ---------------------------------------------------------------------- #
class WireClient:
    """Blocking wire-protocol client with explicit pipelining.

    One-shot use mirrors :class:`~repro.serve.client.ServeClient`::

        with WireClient(port=wire_port) as client:
            Z = client.kernel(model="cora-f2v", x=X)

    Pipelined use separates submission from collection — up to
    :attr:`credits` requests may be outstanding::

        ids = [client.send_kernel(model="m", x=x) for x in chunk]
        for _ in ids:
            rid, value = client.recv()   # completion order

    ``recv`` returns ``(request_id, ndarray)`` for results and
    ``(request_id, ServeError)`` for error frames — pipelined callers
    need per-request failures, not an exception that aborts the batch.

    ``retry=`` arms opt-in policy-driven retries on the *convenience*
    calls (:meth:`kernel`, :meth:`embed`, :meth:`statz`): connection
    failures reconnect and re-send under the
    :class:`~repro.resilience.RetryPolicy`, and transient admission
    errors (429 queue-full, 503 draining) are re-sent after backoff.
    Safe because those calls are pure.  Explicit pipelining
    (``send_*``/``recv``) is never retried implicitly — a reconnect
    would silently drop the other outstanding responses — and a
    convenience call with other requests still pending raises instead
    of retrying for the same reason.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._address = (host, port)
        self._timeout = timeout
        self.retry = retry
        self.retries_attempted = 0
        self._next_id = 1
        self._pending: "set[int]" = set()
        self._ready: Dict[int, object] = {}
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._dial()

    def _dial(self) -> None:
        self._sock = socket.create_connection(
            self._address, timeout=self._timeout
        )
        self._sock.settimeout(self._timeout)
        self._rfile = self._sock.makefile("rb")
        opcode, _, payload = self._read_frame()
        if opcode != OP_HELLO:
            raise ProtocolError(
                f"expected HELLO frame, got opcode 0x{opcode:02x}"
            )
        meta, _ = decode_payload(payload)
        #: the server's per-connection pipelining grant
        self.credits = int(meta.get("credits", 1))
        self.max_payload = int(meta.get("max_payload", 64 * 1024 * 1024))

    def _reconnect(self) -> None:
        """Fresh socket + HELLO; outstanding ids of the dead connection
        are forgotten (their responses can never arrive)."""
        try:
            self.close()
        except OSError:  # pragma: no cover - teardown race
            pass
        self._pending.clear()
        self._dial()

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        try:
            if self._rfile is not None:
                self._rfile.close()
        finally:
            if self._sock is not None:
                self._sock.close()

    def __enter__(self) -> "WireClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------ #
    def _read_frame(self) -> Tuple[int, int, bytes]:
        frame = WIRE_CODEC.read_frame(self._rfile)
        if frame is None:
            # A response is always owed when this is called, so even a
            # frame-boundary EOF is the server hanging up on us.
            raise ConnectionError(
                "connection closed while waiting for a response frame"
            )
        return frame

    def _send(self, opcode: int, meta: dict, arrays: Dict[str, np.ndarray]) -> int:
        if len(self._pending) >= self.credits:
            raise RuntimeError(
                f"out of credits: {self.credits} requests already "
                "outstanding; recv() before sending more"
            )
        request_id = self._next_id
        self._next_id += 1
        self._sock.sendall(
            pack_frame(opcode, request_id, encode_payload(meta, arrays))
        )
        self._pending.add(request_id)
        return request_id

    # ------------------------------------------------------------------ #
    def send_kernel(
        self,
        *,
        model: Optional[str] = None,
        graph=None,
        x: Optional[np.ndarray] = None,
        y: Optional[np.ndarray] = None,
        X: Optional[np.ndarray] = None,
        Y: Optional[np.ndarray] = None,
        pattern: str = "sigmoid_embedding",
        backend: str = "auto",
        deadline_ms: Optional[float] = None,
    ) -> int:
        """Pipeline one kernel request; returns its request-id.

        Operands are accepted under either spelling (``x``/``X``,
        ``y``/``Y``) so :func:`repro.serve.connect` callers can use one
        spelling against both transports.
        """
        if X is not None:
            x = X
        if Y is not None:
            y = Y
        meta: Dict[str, object] = {"pattern": pattern, "backend": backend}
        if deadline_ms is not None:
            meta["deadline_ms"] = deadline_ms
        arrays: Dict[str, np.ndarray] = {}
        if model is not None:
            meta["model"] = model
        elif graph is not None:
            meta["graph_shape"] = list(graph.shape)
            arrays["indptr"] = np.asarray(graph.indptr)
            arrays["indices"] = np.asarray(graph.indices)
            arrays["data"] = np.asarray(graph.data)
        if x is not None:
            arrays["x"] = np.asarray(x)
        if y is not None:
            arrays["y"] = np.asarray(y)
        return self._send(OP_KERNEL, meta, arrays)

    def send_embed(
        self, model: str, ids: Optional[object] = None
    ) -> int:
        """Pipeline one embedding lookup; returns its request-id."""
        meta: Dict[str, object] = {"model": model}
        arrays: Dict[str, np.ndarray] = {}
        if ids is not None:
            arrays["ids"] = np.asarray(ids, dtype=np.int64)
        return self._send(OP_EMBED, meta, arrays)

    def send_statz(self) -> int:
        """Pipeline one stats snapshot request; returns its request-id."""
        return self._send(OP_STATZ, {}, {})

    def send_train(self, **spec) -> int:
        """Pipeline one training-job submission; returns its request-id.
        ``spec`` is the :class:`~repro.jobs.JobSpec` document."""
        return self._send(OP_TRAIN, dict(spec), {})

    def send_job(self, action: str, job_id: Optional[str] = None) -> int:
        """Pipeline one job query (status/list/cancel/result)."""
        meta: Dict[str, object] = {"action": action}
        if job_id is not None:
            meta["job_id"] = job_id
        return self._send(OP_JOB, meta, {})

    def send_mutate(
        self,
        model: str,
        insert: Optional[object] = None,
        delete: Optional[object] = None,
    ) -> int:
        """Pipeline one edge-batch mutation; returns its request-id.

        ``insert`` rows are ``(u, v, weight)`` triples; ``delete`` rows
        are ``(u, v)`` pairs.  Endpoints must be integer-valued.
        """
        arrays: Dict[str, np.ndarray] = {}
        if insert is not None:
            arrays["insert"] = np.asarray(insert, dtype=np.float64).reshape(-1, 3)
        if delete is not None:
            arrays["delete"] = np.asarray(delete, dtype=np.float64).reshape(-1, 2)
        return self._send(OP_MUTATE, {"model": model}, arrays)

    def recv(self) -> Tuple[int, object]:
        """The next response in completion order.

        Returns ``(request_id, ndarray)`` for kernel/embed results,
        ``(request_id, dict)`` for meta-only results (statz), or
        ``(request_id, ServeError)`` for error frames.  A status-400
        error frame with request-id 0 (a connection-level protocol
        violation) is raised immediately — the server has already hung
        up.
        """
        opcode, request_id, payload = self._read_frame()
        meta, arrays = decode_payload(payload)
        if opcode == OP_RESULT:
            self._pending.discard(request_id)
            return request_id, arrays["z"] if "z" in arrays else meta
        if opcode == OP_ERROR:
            error = error_from_meta(meta)
            if request_id == 0:
                # Connection-level failure, not a per-request one.
                raise error
            self._pending.discard(request_id)
            return request_id, error
        raise ProtocolError(f"unexpected response opcode 0x{opcode:02x}")

    def _wait_for(self, request_id: int) -> object:
        if request_id in self._ready:
            return self._ready.pop(request_id)
        while True:
            rid, value = self.recv()
            if rid == request_id:
                return value
            self._ready[rid] = value

    # ------------------------------------------------------------------ #
    #: Transient admission statuses worth re-sending under a policy —
    #: the request was shed at the door, never executed.
    _RETRYABLE_STATUSES = frozenset({429, 503})

    def _call(self, send_fn) -> object:
        """Submit-and-wait with the optional retry policy applied."""
        state = self.retry.start() if self.retry is not None else None
        need_reconnect = False
        while True:
            try:
                if need_reconnect:
                    self._reconnect()
                    need_reconnect = False
                value = self._wait_for(send_fn())
            except (ProtocolError, ConnectionError, OSError):
                if state is None or len(self._pending) > 1:
                    # No policy, or other pipelined requests would lose
                    # their responses in a reconnect: propagate.
                    raise
                delay = state.next_delay()
                if delay is None:
                    raise
                self.retries_attempted += 1
                need_reconnect = True
                time.sleep(delay)
                continue
            if isinstance(value, Exception):
                status = getattr(value, "http_status", None)
                if (
                    state is not None
                    and status in self._RETRYABLE_STATUSES
                ):
                    delay = state.next_delay()
                    if delay is not None:
                        self.retries_attempted += 1
                        time.sleep(delay)
                        continue
                raise value
            return value

    def kernel(self, **kwargs) -> np.ndarray:
        """Submit one kernel request and wait for its result."""
        return self._call(lambda: self.send_kernel(**kwargs))

    def embed(self, model: str, ids: Optional[object] = None) -> np.ndarray:
        """Fetch rows of a model's servable output matrix."""
        return self._call(lambda: self.send_embed(model, ids))

    def statz(self) -> dict:
        """Fetch the server's stats snapshot (mirrors ``GET /statz``)."""
        value = self._call(self.send_statz)
        return dict(value.get("statz", {}))

    # ------------------------------------------------------------------ #
    # Training jobs (mirror POST /v1/train and /v1/jobs/*)
    # ------------------------------------------------------------------ #
    def train(self, **spec) -> dict:
        """Submit a training job; returns ``{"job_id": ..., "state": ...}``.

        Deliberately *not* retried on transport failure even with a
        policy armed: a submission is not idempotent — a resend after an
        ambiguous failure could start the job twice.
        """
        value = self._wait_for(self.send_train(**spec))
        if isinstance(value, Exception):
            raise value
        return dict(value)

    def mutate(
        self,
        model: str,
        insert: Optional[object] = None,
        delete: Optional[object] = None,
    ) -> dict:
        """Apply one edge batch to a registered graph; returns the
        mutation document (new version, fingerprint, edge counts).

        Like :meth:`train`, deliberately *not* retried on transport
        failure: a resend after an ambiguous failure would apply the
        batch twice (inserts upsert, but deletes-then-reinserts and the
        version counter are not idempotent).
        """
        value = self._wait_for(self.send_mutate(model, insert, delete))
        if isinstance(value, Exception):
            raise value
        return dict(value)

    def job(self, job_id: str) -> dict:
        """Status + per-epoch progress of one job."""
        value = self._call(lambda: self.send_job("status", job_id))
        return dict(value["job"])

    def jobs(self) -> list:
        """Summaries of every known job."""
        value = self._call(lambda: self.send_job("list"))
        return list(value["jobs"])

    def cancel_job(self, job_id: str) -> dict:
        """Request cancellation; returns the job document."""
        value = self._call(lambda: self.send_job("cancel", job_id))
        return dict(value["job"])

    def job_result(self, job_id: str) -> np.ndarray:
        """The completed job's output matrix."""
        return self._call(lambda: self.send_job("result", job_id))
