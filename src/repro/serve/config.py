"""Configuration of the serving subsystem.

:class:`ServeConfig` is the single knob surface for everything between a
client socket and a kernel invocation: the coalescer's window geometry
(``max_batch``, ``max_wait_ms``), admission control (``max_queue``,
``default_deadline_ms``), the runtime the windows dispatch into
(threads / worker processes / shard threshold) and the model registry
(which named graphs and app models are pre-loaded and kept warm).

The four applications consume the same config: :class:`ModelSpec.build`
constructs a Force2Vec / VERSE / GCN / FR-layout instance whose app config
inherits the serve-level runtime knobs, so one ``ServeConfig`` describes
the whole deployment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..errors import BackendError, ShapeError
from ..runtime import RuntimeOptions

__all__ = [
    "ModelSpec",
    "ServeConfig",
    "DEFAULT_MODELS",
    "resolve_deadline_ms",
]


def resolve_deadline_ms(
    explicit: Optional[object], default: float = 0.0
) -> Optional[float]:
    """Resolve one request's effective deadline in milliseconds.

    ``explicit`` is the client-supplied value (``None`` = the request did
    not carry one) and ``default`` the server-wide fallback.  "Absent" and
    "zero" are different statements: an explicit ``0`` *disables* the
    deadline even when the server configures a default — a falsy-chain
    (``explicit or default``) silently re-imposes the default on exactly
    the clients trying to opt out.  Returns the positive deadline, or
    ``None`` for "no deadline".  Raises :class:`ValueError` (or
    :class:`TypeError`) on non-numeric, negative or non-finite input.
    """
    raw = default if explicit is None else explicit
    value = float(raw)
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"deadline_ms must be finite and >= 0, got {raw!r}")
    return value if value > 0 else None

#: The app kinds the registry can build (one per application class).
APP_KINDS = ("force2vec", "verse", "gcn", "fr_layout")


@dataclass(frozen=True)
class ModelSpec:
    """One named, pre-loaded model of the registry.

    ``name`` is the handle clients use (``/v1/embed/<name>``,
    ``"model": "<name>"`` in ``/v1/kernel`` payloads).  ``dataset`` names a
    graph from :func:`repro.graphs.list_datasets`; ``app`` selects which
    application trains the servable output matrix (embeddings, positions
    or class probabilities).  ``train_epochs`` is deliberately tiny by
    default — serving wants warm plans and a servable matrix, not a
    converged model; redeploy with more epochs when quality matters.
    """

    name: str
    dataset: str
    app: str = "force2vec"
    dim: int = 32
    scale: float = 0.25
    train_epochs: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ShapeError(
                f"model name must be non-empty and slash-free: {self.name!r}"
            )
        if self.app not in APP_KINDS:
            raise BackendError(
                f"unknown app kind {self.app!r}; expected one of {APP_KINDS}"
            )
        if self.dim <= 0 or self.train_epochs < 0 or self.scale <= 0:
            raise ShapeError(
                "dim and scale must be positive, train_epochs non-negative"
            )

    def build(self, config: "ServeConfig"):
        """Instantiate the app behind this model with the serve-level
        runtime knobs (threads, processes, kernel backend, reorder).

        Returns ``(graph, app_instance)``; training happened, the app's
        plans are warm, and its servable output matrix is available via
        ``serve_output()``.
        """
        from ..graphs.datasets import load_dataset

        load_kwargs = {"scale": self.scale}
        if self.app == "gcn":
            # GCN needs node features; give the synthetic twin random ones.
            load_kwargs["feature_dim"] = max(self.dim, 8)
        graph = load_dataset(self.dataset, **load_kwargs)
        common = dict(
            dim=self.dim,
            seed=self.seed,
            num_threads=config.num_threads,
            processes=config.processes,
            shard_min_nnz=config.shard_min_nnz,
            kernel_backend=config.kernel_backend,
            reorder=config.reorder,
        )
        if self.app == "force2vec":
            from ..apps import Force2Vec, Force2VecConfig

            app = Force2Vec(
                graph, Force2VecConfig(epochs=self.train_epochs, **common)
            )
            app.train()
        elif self.app == "verse":
            from ..apps import Verse, VerseConfig

            app = Verse(graph, VerseConfig(epochs=self.train_epochs, **common))
            app.train(self.train_epochs)
        elif self.app == "gcn":
            from ..apps import GCN, GCNConfig

            common.pop("dim")
            app = GCN(graph, config=GCNConfig(hidden_dim=self.dim, **common))
            app.fit(epochs=max(self.train_epochs, 1))
        else:  # fr_layout
            from ..apps import FRLayout, FRLayoutConfig

            app = FRLayout(
                graph, FRLayoutConfig(iterations=self.train_epochs, **common)
            )
            app.run()
        return graph, app


#: Default registry: one embedding model per application on the two
#: smallest synthetic datasets — enough to serve real lookups and keep the
#: kernel plans warm without meaningful startup cost.
DEFAULT_MODELS: Tuple[ModelSpec, ...] = (
    ModelSpec(name="cora-f2v", dataset="cora", app="force2vec"),
    ModelSpec(name="cora-gcn", dataset="cora", app="gcn"),
    ModelSpec(name="pubmed-verse", dataset="pubmed", app="verse", scale=0.1),
    ModelSpec(name="cora-layout", dataset="cora", app="fr_layout", dim=2),
)


@dataclass
class ServeConfig(RuntimeOptions):
    """Everything the serving subsystem needs to come up.

    Coalescing
    ----------
    ``max_batch``
        Upper bound on requests coalesced into one dispatch window.
        ``1`` disables micro-batching (every request dispatches alone —
        the baseline the serve benchmark compares against).
    ``max_wait_ms``
        How long an open window waits for more requests before it
        dispatches anyway.  The tail-latency cost of batching: a lone
        request is delayed at most this long.

    Admission control
    -----------------
    ``max_queue``
        Bound on requests admitted but not yet dispatched; beyond it the
        server answers ``429`` so overload sheds load instead of growing
        latency without bound.
    ``default_deadline_ms``
        Deadline applied to requests that don't carry their own
        (``0`` = none).  Requests whose deadline expires while queued are
        answered ``504`` without running the kernel.
    ``drain_timeout_s``
        Grace period for in-flight work on shutdown.

    Runtime
    -------
    ``num_threads`` / ``processes`` / ``shard_min_nnz`` / ``kernel_backend``
    / ``reorder`` (inherited from :class:`~repro.runtime.RuntimeOptions`,
    the same knob surface the app configs use) configure the
    :class:`~repro.runtime.KernelRuntime` the coalescer dispatches into;
    single jobs at or above ``shard_min_nnz`` route through
    ``submit_sharded`` instead of a window.  ``reorder`` applies to *model
    training* plans only: the request path always plans with
    ``reorder="none"`` so coalesced responses stay bitwise identical to
    serial execution.  ``remote_port`` additionally opens the distributed
    controller: ``repro worker`` hosts that register there are admitted
    into the sharded tier next to the local worker processes.
    """

    host: str = "127.0.0.1"
    port: int = 8571
    #: binary wire-protocol listener (``None`` = HTTP only; 0 = ephemeral)
    wire_port: Optional[int] = None
    #: per-connection credit grant for the wire protocol: the number of
    #: outstanding (unanswered) frames one connection may pipeline; bounds
    #: per-connection memory without touching the global admission queue
    wire_credits: int = 32
    max_batch: int = 32
    max_wait_ms: float = 2.0
    #: early flush this long after the *last* arrival (bursty traffic
    #: coalesces without paying the full window wait); 0 disables
    idle_flush_ms: float = 0.25
    max_queue: int = 256
    default_deadline_ms: float = 0.0
    drain_timeout_s: float = 10.0
    #: dispatcher threads executing flushed windows / large singles
    dispatch_workers: int = 2
    #: reject request bodies larger than this many bytes (413)
    max_body_bytes: int = 64 * 1024 * 1024
    #: distributed-controller listener for ``repro worker`` hosts
    #: (``None`` = local-only; 0 = ephemeral port)
    remote_port: Optional[int] = None
    #: shared secret worker hosts must present to register; ``None``
    #: admits any peer — loopback/trusted-network only.  Never reported
    #: by ``describe()``/``/statz``.
    remote_token: Optional[str] = None
    #: consecutive missed heartbeat pings before the distributed
    #: controller evicts an idle worker host (see ``repro serve
    #: --heartbeat-strikes``)
    heartbeat_strikes: int = 3
    #: fault-injection schedule applied to incoming requests
    #: (:meth:`repro.resilience.FaultPlan.from_spec` grammar) — the chaos
    #: harness's hook; leave ``None`` in production
    fault_spec: Optional[str] = None
    #: durable root for training jobs (``/v1/train``); each job gets its
    #: own subdirectory with checkpoints + supervision record, and
    #: unfinished jobs found there are requeued at startup.  ``None``
    #: uses a temporary directory — jobs then survive faults within the
    #: process but not a restart.
    job_dir: Optional[str] = None
    #: concurrently *running* training jobs
    max_jobs: int = 2
    #: admitted-but-not-running jobs; beyond ``max_jobs + max_job_queue``
    #: submissions are answered 429
    max_job_queue: int = 8
    #: default checkpoint cadence (epochs) for jobs that don't set one
    job_checkpoint_every: int = 1
    #: requeue attempts for crashed/faulted jobs before ``failed``
    job_retries: int = 3
    plan_cache_size: int = 128
    models: Tuple[ModelSpec, ...] = field(default_factory=lambda: DEFAULT_MODELS)
    #: patterns pre-planned against every registered graph at startup
    warm_patterns: Tuple[str, ...] = ("sigmoid_embedding", "gcn", "spmm")
    #: dynamic graphs: fold a graph's delta overlay into a fresh base CSR
    #: once its override nonzeros exceed this fraction of the base nnz …
    compact_delta_ratio: float = 0.25
    #: … or once this many edge operations accumulated since the last fold
    compact_max_log: int = 50_000
    #: dynamic graphs: a reordered plan keeps its vertex permutation across
    #: mutations while the permuted matrix's mean bandwidth stays within
    #: this factor of the bandwidth measured at attach time
    reorder_carry_factor: float = 4.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.max_batch < 1:
            raise ShapeError(f"max_batch must be >= 1, got {self.max_batch}")
        if (
            self.max_wait_ms < 0
            or self.default_deadline_ms < 0
            or self.idle_flush_ms < 0
        ):
            raise ShapeError(
                "max_wait_ms, idle_flush_ms and default_deadline_ms must be >= 0"
            )
        if self.max_queue < 1:
            raise ShapeError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.dispatch_workers < 1:
            raise ShapeError(
                f"dispatch_workers must be >= 1, got {self.dispatch_workers}"
            )
        if self.drain_timeout_s < 0:
            raise ShapeError("drain_timeout_s must be >= 0")
        if self.wire_credits < 1:
            raise ShapeError(
                f"wire_credits must be >= 1, got {self.wire_credits}"
            )
        if self.wire_port is not None and self.wire_port < 0:
            raise ShapeError(f"wire_port must be >= 0, got {self.wire_port}")
        if self.remote_port is not None and self.remote_port < 0:
            raise ShapeError(f"remote_port must be >= 0, got {self.remote_port}")
        if self.heartbeat_strikes < 1:
            raise ShapeError(
                f"heartbeat_strikes must be >= 1, got {self.heartbeat_strikes}"
            )
        if self.max_jobs < 1 or self.max_job_queue < 0:
            raise ShapeError(
                f"max_jobs must be >= 1 and max_job_queue >= 0, got "
                f"{self.max_jobs}/{self.max_job_queue}"
            )
        if self.job_checkpoint_every < 0 or self.job_retries < 0:
            raise ShapeError(
                "job_checkpoint_every and job_retries must be >= 0"
            )
        if self.compact_delta_ratio <= 0 or self.compact_max_log < 1:
            raise ShapeError(
                "compact_delta_ratio must be > 0 and compact_max_log >= 1"
            )
        if self.reorder_carry_factor < 1.0:
            raise ShapeError(
                f"reorder_carry_factor must be >= 1, got {self.reorder_carry_factor}"
            )
        names = [m.name for m in self.models]
        if len(set(names)) != len(names):
            raise ShapeError(f"duplicate model names in ServeConfig: {names}")

    def with_models(self, *specs: ModelSpec) -> "ServeConfig":
        """A copy of this config serving exactly ``specs``."""
        return replace(self, models=tuple(specs))

    def describe(self) -> Dict[str, object]:
        """JSON-able summary (the ``config`` block of ``/statz``)."""
        return {
            "wire_port": self.wire_port,
            "wire_credits": self.wire_credits,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "idle_flush_ms": self.idle_flush_ms,
            "max_queue": self.max_queue,
            "default_deadline_ms": self.default_deadline_ms,
            "dispatch_workers": self.dispatch_workers,
            "num_threads": self.num_threads,
            "processes": self.processes,
            "shard_min_nnz": self.shard_min_nnz,
            "kernel_backend": self.kernel_backend,
            "remote_port": self.remote_port,
            "heartbeat_strikes": self.heartbeat_strikes,
            "job_dir": None if self.job_dir is None else str(self.job_dir),
            "max_jobs": self.max_jobs,
            "max_job_queue": self.max_job_queue,
            "job_checkpoint_every": self.job_checkpoint_every,
            "job_retries": self.job_retries,
            "compact_delta_ratio": self.compact_delta_ratio,
            "compact_max_log": self.compact_max_log,
            "reorder_carry_factor": self.reorder_carry_factor,
            "models": [m.name for m in self.models],
        }
