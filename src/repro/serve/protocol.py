"""Minimal HTTP/1.1 protocol + payload codecs for the serving front-end.

The serving subsystem deliberately avoids web frameworks (no new hard
dependencies): the front-end speaks a small, strict subset of HTTP/1.1
handcrafted on :mod:`asyncio` streams —

* request line + headers (8 KiB cap), ``Content-Length`` bodies only (no
  chunked uploads), keep-alive by default, ``Connection: close`` honoured;
* responses always carry ``Content-Length`` and close cleanly on protocol
  errors.

Payloads travel in two interchangeable encodings:

* **JSON** — arrays as nested lists (small payloads, debuggability);
* **binary npy** — NumPy's ``.npy`` serialisation, either raw in the body
  (``Content-Type: application/x-npy``) or base64-embedded inside a JSON
  envelope (``{"npy_b64": "..."}``) for mixed payloads.  Binary is the
  fast path: no float→decimal→float round trip, bitwise-faithful dtypes.

Everything here is transport mechanics — no kernel or scheduling logic.
"""

from __future__ import annotations

import asyncio
import base64
import json
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import parse_qsl, urlsplit

import numpy as np

from ..framing import ProtocolError, array_from_npy, npy_bytes

__all__ = [
    "HTTPRequest",
    "ProtocolError",
    "read_http_request",
    "write_http_response",
    "npy_bytes",
    "array_from_npy",
    "encode_array",
    "decode_array",
    "STATUS_REASONS",
]

MAX_HEADER_BYTES = 8192

STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class HTTPRequest:
    """One parsed request (headers lower-cased, query decoded)."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            # 1.0 connections are one-shot unless explicitly negotiated;
            # holding them open leaves clients that read until EOF
            # hanging on a response the server considers complete.
            return connection == "keep-alive"
        return connection != "close"

    def json(self) -> dict:
        """The body parsed as a JSON object (400 on anything else)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError("JSON body must be an object")
        return payload


async def read_http_request(
    reader, *, max_body_bytes: int = 64 * 1024 * 1024
) -> Optional[HTTPRequest]:
    """Parse one request off ``reader``; ``None`` on clean EOF.

    Raises :class:`ProtocolError` on malformed input (the caller answers
    with the error's status and closes the connection).
    """
    try:
        header_blob = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("truncated request header") from exc
    except asyncio.LimitOverrunError as exc:  # pragma: no cover - huge header
        raise ProtocolError("request header too large", status=413) from exc
    if len(header_blob) > MAX_HEADER_BYTES:
        raise ProtocolError("request header too large", status=413)

    lines = header_blob.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line: {lines[0]!r}")
    method, target, version = parts
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise ProtocolError("invalid Content-Length") from exc
        if length < 0:
            raise ProtocolError("invalid Content-Length")
        if length > max_body_bytes:
            raise ProtocolError(
                f"body of {length} bytes exceeds the {max_body_bytes} byte cap",
                status=413,
            )
        body = await reader.readexactly(length) if length else b""
    elif headers.get("transfer-encoding"):
        raise ProtocolError("chunked uploads are not supported")

    return HTTPRequest(
        method=method.upper(),
        path=split.path or "/",
        query=query,
        headers=headers,
        body=body,
        version=version.upper(),
    )


def write_http_response(
    writer,
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    """Serialise one response onto ``writer`` (caller awaits ``drain``)."""
    reason = STATUS_REASONS.get(status, "Unknown")
    headers = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    writer.write("\r\n".join(headers).encode("latin-1") + b"\r\n\r\n" + body)


# ---------------------------------------------------------------------- #
# Array payload codecs
# ---------------------------------------------------------------------- #
# ``ProtocolError``, ``npy_bytes`` and ``array_from_npy`` moved to
# :mod:`repro.framing` (shared with the binary wire protocol and the
# distributed worker transport); re-exported here for compatibility.


def encode_array(array: np.ndarray, *, binary: bool = False):
    """JSON-envelope encoding of one array.

    ``binary=True`` → ``{"npy_b64": ...}`` (bitwise-faithful);
    otherwise nested lists plus the dtype string.
    """
    if binary:
        return {"npy_b64": base64.b64encode(npy_bytes(array)).decode("ascii")}
    return {"data": np.asarray(array).tolist(), "dtype": array.dtype.name}


def decode_array(obj, *, dtype=None) -> np.ndarray:
    """Decode an operand from any of the accepted JSON spellings.

    Accepts a bare nested list, ``{"data": ..., "dtype": ...}``, or
    ``{"npy_b64": "..."}``.  ``dtype`` is the default when the payload
    does not carry one.
    """
    if isinstance(obj, dict):
        if "npy_b64" in obj:
            try:
                blob = base64.b64decode(obj["npy_b64"], validate=True)
            except Exception as exc:
                raise ProtocolError(f"invalid base64 npy field: {exc}") from exc
            return array_from_npy(blob)
        if "data" in obj:
            return np.asarray(obj["data"], dtype=obj.get("dtype", dtype))
        raise ProtocolError(
            "array object must carry 'data' (+optional 'dtype') or 'npy_b64'"
        )
    if isinstance(obj, list):
        return np.asarray(obj, dtype=dtype)
    raise ProtocolError(f"cannot decode array from {type(obj).__name__}")
