"""Model/plan registry: everything warm before the first request.

Cold serving is slow serving: the first request against a new adjacency
pays pattern resolution, backend dispatch, partitioning, fingerprinting
and (with ``processes``) worker spawn + shared-memory upload.  The
:class:`ModelRegistry` front-loads all of it at startup:

* every :class:`~repro.serve.config.ModelSpec` is **built** — its dataset
  loaded, its application (Force2Vec / VERSE / GCN / FR layout) trained
  for the configured (tiny) budget — and its servable per-vertex output
  matrix pinned for ``/v1/embed/<model>`` lookups;
* every model's adjacency is registered as a **named graph**, so
  ``/v1/kernel`` requests can say ``"model": "cora-f2v"`` instead of
  shipping CSR arrays in every call;
* the serving runtime **pre-plans** each registered graph for the
  configured warm patterns (``sigmoid_embedding``/``gcn``/``spmm`` by
  default) — the plan cache, reorder memos and partitionings are
  populated before the listener accepts its first connection;
* with ``processes > 0`` the **worker pool is spawned** and each warm
  graph's CSR is pushed into shared memory up front, so the first sharded
  request pays no spawn or upload latency.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from ..errors import DatasetError
from ..runtime import DynamicGraph, KernelRuntime, MutationResult
from ..sparse import CSRMatrix
from ..sparse.delta import CompactionPolicy
from .config import ServeConfig

__all__ = ["ModelRegistry", "RegisteredModel"]


class RegisteredModel:
    """One pre-loaded model: its graph, app instance and servable output."""

    def __init__(self, spec, graph, app) -> None:
        self.spec = spec
        self.graph = graph
        self.app = app
        self.output: np.ndarray = app.serve_output()

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.spec.name,
            "app": self.spec.app,
            "dataset": self.spec.dataset,
            "vertices": int(self.graph.num_vertices),
            "edges": int(self.graph.num_edges),
            "output_dim": int(self.output.shape[1]),
        }


class ModelRegistry:
    """Named graphs + app models + a warm serving runtime.

    The registry owns the :class:`~repro.runtime.KernelRuntime` that all
    ``/v1/kernel`` traffic dispatches into (the apps own their training
    runtimes separately).  Construction is cheap; :meth:`load` does the
    heavy lifting and is called once by the server before it starts
    accepting connections.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.runtime = KernelRuntime(
            num_threads=self.config.num_threads,
            cache_size=self.config.plan_cache_size,
            processes=self.config.processes,
            shard_min_nnz=self.config.shard_min_nnz,
            remote_port=self.config.remote_port,
            remote_token=self.config.remote_token,
            remote_heartbeat_strikes=self.config.heartbeat_strikes,
            # Request plans stay bitwise-exact; the reorder knob only
            # reaches model *training* via ModelSpec.build.
            reorder="none",
        )
        self._models: Dict[str, RegisteredModel] = {}
        # Every named graph is a DynamicGraph handle: static workloads see
        # version 0 forever; ``/v1/graph/<name>/edges`` advances versions.
        self._graphs: Dict[str, DynamicGraph] = {}
        self.loaded = False
        self.load_seconds = 0.0
        self.runtime.attach_stats_section("graphs", self.graph_memory)

    # ------------------------------------------------------------------ #
    def load(self) -> "ModelRegistry":
        """Build every model, register its graph, warm plans and workers."""
        t0 = time.perf_counter()
        for spec in self.config.models:
            graph, app = spec.build(self.config)
            model = RegisteredModel(spec, graph, app)
            self._models[spec.name] = model
            self.register_graph(spec.name, graph.adjacency)
        if self.config.processes > 0:
            # Spawn the worker pool and ship every warm CSR into shared
            # memory before the first request needs it.
            workers = self.runtime.workers
            if workers is not None:
                for g in self._graphs.values():
                    A = g.matrix
                    if A.nnz >= self.config.shard_min_nnz:
                        self.runtime.run_sharded(
                            A,
                            np.zeros((A.nrows, 1), dtype=np.float32),
                            pattern="gcn",
                        )
        self.loaded = True
        self.load_seconds = time.perf_counter() - t0
        return self

    def register_graph(self, name: str, A: CSRMatrix) -> None:
        """Register a named adjacency and pre-plan the warm patterns."""
        self._graphs[name] = DynamicGraph(
            A,
            runtime=self.runtime,
            policy=CompactionPolicy(
                max_delta_ratio=self.config.compact_delta_ratio,
                max_log=self.config.compact_max_log,
            ),
            carry_factor=self.config.reorder_carry_factor,
        )
        A = self._graphs[name].matrix
        for pattern in self.config.warm_patterns:
            try:
                self.runtime.plan(
                    A,
                    pattern=pattern,
                    backend=self.config.kernel_backend,
                    reorder="none",
                )
            except Exception:
                # A pattern incompatible with this graph shape is a
                # request-time 400, not a startup failure.
                continue

    def drop_graph(self, name: str) -> Dict[str, int]:
        """Unregister a graph and evict its whole cache footprint (plans,
        reorder memo, worker shared memory, remote host LRUs)."""
        graph = self._graphs.pop(name, None)
        if graph is None:
            raise DatasetError(
                f"unknown graph {name!r}; registered: {sorted(self._graphs)}"
            )
        return graph.close()

    def mutate_graph(self, name: str, insert=None, delete=None) -> MutationResult:
        """Apply one edge batch to a named graph (deletes first, inserts
        upsert).  Requests admitted before the swap keep computing on the
        version they resolved; requests admitted after see the new one."""
        return self.dynamic_graph(name).apply_edges(insert=insert, delete=delete)

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def model_names(self) -> List[str]:
        return sorted(self._models)

    def model(self, name: str) -> RegisteredModel:
        if name not in self._models:
            raise DatasetError(
                f"unknown model {name!r}; registered: {self.model_names()}"
            )
        return self._models[name]

    def graph(self, name: str) -> CSRMatrix:
        """The named graph's *current* materialised CSR.

        Resolution pins the request to one immutable version: whatever the
        caller computes with the returned matrix is read-consistent even
        if mutations land concurrently.
        """
        return self.dynamic_graph(name).matrix

    def dynamic_graph(self, name: str) -> DynamicGraph:
        """The mutable handle behind a named graph."""
        if name not in self._graphs:
            raise DatasetError(
                f"unknown graph {name!r}; registered: {sorted(self._graphs)}"
            )
        return self._graphs[name]

    def graph_memory(self) -> Dict[str, Dict[str, object]]:
        """Per-graph byte accounting (the ``graphs`` section of stats)."""
        return {name: g.memory() for name, g in sorted(self._graphs.items())}

    def embeddings(self, name: str, ids: Optional[np.ndarray] = None) -> np.ndarray:
        """Rows of ``name``'s servable output (all rows when ``ids=None``)."""
        output = self.model(name).output
        if ids is None:
            return output
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim != 1:
            raise DatasetError("ids must be a flat list of vertex indices")
        n = output.shape[0]
        if ids.size and (ids.min() < 0 or ids.max() >= n):
            raise DatasetError(f"vertex ids must be in [0, {n})")
        return output[ids]

    # ------------------------------------------------------------------ #
    def describe(self) -> List[Dict[str, object]]:
        return [self._models[name].describe() for name in self.model_names()]

    def close(self) -> None:
        """Shut the serving runtime (and its worker pool) down."""
        self.runtime.close()
