"""Remote-scaling benchmark for the distributed worker tier.

Measures :meth:`KernelRuntime.run_sharded` when the shards execute on
``repro worker`` host processes over localhost TCP (the real deployment
artifact — ``python -m repro worker`` subprocesses, not in-process
threads), always verifying bitwise equality against the sequential
single-process kernel.  An optional failover leg starts two hosts, one of
them fault-injected to crash on its first RUN request, and asserts the
batch still completes bitwise on the survivor.

Exposed to both ``repro bench remote`` and
``benchmarks/bench_remote_scaling.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.fused import fusedmm
from ..graphs import rmat
from ..graphs.features import random_features
from ..runtime import KernelRuntime
from ..runtime.remote import REPRO_WORKER_CRASH_AFTER

__all__ = ["bench_remote_scaling", "spawn_worker"]

#: How long to wait for worker hosts to register before giving up.
_JOIN_TIMEOUT_S = 60.0


def spawn_worker(
    port: int,
    name: str,
    *,
    threads: int = 1,
    crash_after: Optional[int] = None,
    fault_plan: Optional[str] = None,
    reconnect_delay: Optional[float] = None,
    once: bool = True,
    stderr=subprocess.DEVNULL,
) -> subprocess.Popen:
    """Start one ``python -m repro worker`` subprocess against ``port``.

    ``crash_after=N`` arms the legacy fault-injection hook (drop the
    connection and exit instead of replying to the ``N``-th RUN);
    ``fault_plan`` passes a full ``--fault-plan`` schedule
    (:meth:`repro.resilience.FaultPlan.from_spec` grammar).  ``once``
    keeps the historical default — the worker exits when the controller
    disconnects; the chaos harness passes ``once=False`` so agents
    reconnect through their backoff loop, and captures ``stderr`` to
    read the worker's ``CHAOS-FAULT`` coverage lines back.
    """
    env = dict(os.environ)
    src_dir = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    if crash_after is not None:
        env[REPRO_WORKER_CRASH_AFTER] = str(crash_after)
    else:
        env.pop(REPRO_WORKER_CRASH_AFTER, None)
    argv = [
        sys.executable,
        "-m",
        "repro",
        "worker",
        "--port",
        str(port),
        "--name",
        name,
        "--threads",
        str(threads),
    ]
    if once:
        argv.append("--once")
    if fault_plan:
        argv += ["--fault-plan", fault_plan]
    if reconnect_delay is not None:
        argv += ["--reconnect-delay", str(reconnect_delay)]
    return subprocess.Popen(
        argv,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=stderr,
    )


def _reap(procs: List[subprocess.Popen]) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)


def bench_remote_scaling(
    *,
    num_nodes: int = 20_000,
    avg_degree: int = 16,
    dim: int = 64,
    repeats: int = 3,
    worker_counts: Sequence[int] = (1, 2),
    pattern: str = "sigmoid_embedding",
    kill_one: bool = True,
    hedge_leg: bool = True,
    seed: int = 5,
) -> List[Dict[str, object]]:
    """Throughput of remote sharded execution at each worker-host count.

    Every row records whether the distributed result was bitwise
    identical to sequential ``fusedmm`` — the tier's identity contract is
    that shard *placement* (local process, remote host, parent fallback)
    never changes the bytes of ``Z``.  With ``kill_one`` a failover row
    runs two hosts, one rigged to crash mid-batch, and reports the
    recovery wall-clock plus the controller's loss/retry counters.  With
    ``hedge_leg`` a straggler row runs two hosts, one rigged to stall on
    a late RUN; the controller's speculative hedge must complete the
    chunk in-parent (``hedge_wins >= 1``) while the bytes stay identical.
    """
    A = rmat(num_nodes, num_nodes * avg_degree, seed=seed)
    X = random_features(A.nrows, dim, seed=seed)
    ref = fusedmm(A, X, X, pattern=pattern, num_threads=1)

    rows: List[Dict[str, object]] = []
    for workers in worker_counts:
        runtime = KernelRuntime(num_threads=1, processes=0, remote_port=0)
        procs: List[subprocess.Popen] = []
        try:
            controller = runtime.controller
            procs = [
                spawn_worker(controller.port, f"w{i}") for i in range(int(workers))
            ]
            joined = controller.wait_for_hosts(int(workers), timeout=_JOIN_TIMEOUT_S)
            if joined < int(workers):
                raise RuntimeError(
                    f"only {joined}/{workers} worker hosts registered within "
                    f"{_JOIN_TIMEOUT_S}s"
                )
            Z = runtime.run_sharded(A, X, pattern=pattern)  # warm-up + plan + ship
            identical = bool(np.array_equal(Z, ref))
            total = 0.0
            for _ in range(max(1, repeats)):
                t0 = time.perf_counter()
                runtime.run_sharded(A, X, pattern=pattern)
                total += time.perf_counter() - t0
            seconds = total / max(1, repeats)
            remote_stats = runtime.stats()["remote"]
        finally:
            runtime.close()
            _reap(procs)
        rows.append(
            {
                "benchmark": "remote_scaling",
                "leg": "scale",
                "graph": f"rmat n={num_nodes}",
                "nnz": A.nnz,
                "d": dim,
                "pattern": pattern,
                "workers": int(workers),
                "seconds": seconds,
                "edges_per_s": A.nnz / max(seconds, 1e-12),
                "identical": identical,
                "hosts_lost": remote_stats["hosts_lost"],
            }
        )

    base = next((r for r in rows if r["workers"] == 1), rows[0] if rows else None)
    for r in rows:
        r["speedup_vs_1worker"] = r["edges_per_s"] / max(base["edges_per_s"], 1e-12)

    if kill_one:
        runtime = KernelRuntime(num_threads=1, processes=0, remote_port=0)
        procs = []
        try:
            controller = runtime.controller
            # One healthy host, one rigged to crash on its first RUN: the
            # controller must detect the loss, re-route the dead host's
            # shard group to the survivor and still return the exact bytes.
            procs = [
                spawn_worker(controller.port, "survivor"),
                spawn_worker(controller.port, "victim", crash_after=1),
            ]
            joined = controller.wait_for_hosts(2, timeout=_JOIN_TIMEOUT_S)
            if joined < 2:
                raise RuntimeError(
                    f"only {joined}/2 worker hosts registered within "
                    f"{_JOIN_TIMEOUT_S}s"
                )
            t0 = time.perf_counter()
            Z = runtime.run_sharded(A, X, pattern=pattern)
            seconds = time.perf_counter() - t0
            identical = bool(np.array_equal(Z, ref))
            remote_stats = runtime.stats()["remote"]
        finally:
            runtime.close()
            _reap(procs)
        rows.append(
            {
                "benchmark": "remote_scaling",
                "leg": "failover",
                "graph": f"rmat n={num_nodes}",
                "nnz": A.nnz,
                "d": dim,
                "pattern": pattern,
                "workers": 2,
                "seconds": seconds,
                "edges_per_s": A.nnz / max(seconds, 1e-12),
                "identical": identical,
                "hosts_lost": remote_stats["hosts_lost"],
                "retries": remote_stats["retries"],
            }
        )

    if hedge_leg:
        warm = 3
        runtime = KernelRuntime(num_threads=1, processes=0, remote_port=0)
        procs = []
        try:
            controller = runtime.controller
            # One steady host, one rigged to stall for 3s on the RUN
            # right after the warm-up batches.  By then the controller
            # has enough per-nnz throughput samples to place a hedge
            # deadline, so the stalled chunk is speculatively recomputed
            # in-parent and the straggler's eventual reply is discarded.
            procs = [
                spawn_worker(controller.port, "steady"),
                spawn_worker(
                    controller.port,
                    "laggard",
                    fault_plan=f"delay@{warm + 1}:3.0",
                ),
            ]
            joined = controller.wait_for_hosts(2, timeout=_JOIN_TIMEOUT_S)
            if joined < 2:
                raise RuntimeError(
                    f"only {joined}/2 worker hosts registered within "
                    f"{_JOIN_TIMEOUT_S}s"
                )
            for _ in range(warm):
                runtime.run_sharded(A, X, pattern=pattern)
            t0 = time.perf_counter()
            Z = runtime.run_sharded(A, X, pattern=pattern)
            seconds = time.perf_counter() - t0
            identical = bool(np.array_equal(Z, ref))
            remote_stats = runtime.stats()["remote"]
        finally:
            runtime.close()
            _reap(procs)
        rows.append(
            {
                "benchmark": "remote_scaling",
                "leg": "hedge",
                "graph": f"rmat n={num_nodes}",
                "nnz": A.nnz,
                "d": dim,
                "pattern": pattern,
                "workers": 2,
                "seconds": seconds,
                "edges_per_s": A.nnz / max(seconds, 1e-12),
                "identical": identical
                and remote_stats["hedge_wins"] >= 1,
                "hedges": remote_stats["hedges"],
                "hedge_wins": remote_stats["hedge_wins"],
            }
        )
    return rows
