"""Benchmark trend comparison: diff ``BENCH_*.json`` records across commits.

The repository's performance trajectory is a series of ``BENCH_<name>.json``
files written by :func:`repro.bench.record.record_benchmark` (CI uploads
them as artifacts, and committed baselines live under
``benchmarks/baselines/``).  This module compares two such records — or two
directories of them — row by row and flags regressions beyond a threshold,
so a PR that slows a hot path down fails loudly instead of rotting the
trajectory silently.

Metric classification is by field name:

* **lower is better** — ``seconds`` and any ``*_s``/``*_seconds`` field;
* **higher is better** — ``speedup``, ``*throughput*`` and ``*_per_s``;
* everything else (identity fields, configuration, counters) is ignored
  for regression purposes and instead used to *match* rows between the two
  records.

Wall-clock rows below ``min_seconds`` are skipped: at sub-millisecond
scale, scheduler noise dwarfs any real regression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .record import load_benchmark

__all__ = [
    "MetricDelta",
    "TrendReport",
    "compare_records",
    "compare_paths",
    "render_report",
    "DEFAULT_THRESHOLD",
    "DEFAULT_MIN_SECONDS",
]

#: A metric may degrade by up to this fraction before it counts as a
#: regression (15%, per the repo's CI gate).
DEFAULT_THRESHOLD = 0.15

#: Lower-is-better wall-clock rows below this baseline are ignored: at
#: single-millisecond scale, scheduler jitter on shared runners routinely
#: exceeds the regression threshold.
DEFAULT_MIN_SECONDS = 5e-3


def _metric_direction(name: str) -> Optional[int]:
    """+1 when higher is better, -1 when lower is better, None to ignore."""
    lowered = name.lower()
    if lowered == "seconds" or lowered.endswith("_s") or lowered.endswith("_seconds"):
        return -1
    if "speedup" in lowered or "throughput" in lowered or lowered.endswith("_per_s"):
        return +1
    return None


#: Integer fields that are run-dependent *outcomes*, not configuration;
#: they must not participate in row identity or a counter change would
#: silently un-match the row and let its metric regressions escape the
#: gate.
_IDENTITY_EXCLUDE = {
    "cache_hits",
    "cache_misses",
    "packed_requests",
    "packed_groups",
    "split_jobs",
    "single_jobs",
    "busy_shards",
    "restarts",
}


def _row_identity(row: Dict[str, object]) -> Tuple:
    """The non-metric fields that identify a row across records."""
    ident = []
    for key in sorted(row):
        value = row[key]
        if key in _IDENTITY_EXCLUDE:
            continue
        if isinstance(value, bool) or isinstance(value, (str, int)):
            ident.append((key, value))
    return tuple(ident)


def _row_is_noisy(row: Dict[str, object], min_seconds: float) -> bool:
    """Whether any wall-clock metric of the row sits below the noise
    floor.  Derived higher-is-better metrics (speedups, throughputs) of
    such rows are ratios of those same noisy timings, so they are skipped
    along with the timings themselves."""
    for name, value in row.items():
        if (
            _metric_direction(name) == -1
            and isinstance(value, (int, float))
            and not isinstance(value, bool)
            and float(value) < min_seconds
        ):
            return True
    return False


@dataclass(frozen=True)
class MetricDelta:
    """One metric of one row, compared between baseline and current."""

    source: str
    row: Tuple
    metric: str
    baseline: float
    current: float
    #: +1 higher-is-better, -1 lower-is-better
    direction: int
    #: current / baseline
    ratio: float
    regressed: bool

    def describe(self) -> Dict[str, object]:
        """Flat row for table rendering."""
        change = (self.ratio - 1.0) * 100.0
        return {
            "source": self.source,
            "row": " ".join(f"{k}={v}" for k, v in self.row) or "-",
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "change_pct": change,
            "better": "higher" if self.direction > 0 else "lower",
            "regressed": self.regressed,
        }


@dataclass
class TrendReport:
    """Outcome of one trend comparison."""

    deltas: List[MetricDelta] = field(default_factory=list)
    #: row identities present in only one record (informational)
    unmatched: List[str] = field(default_factory=list)
    #: files present in only one directory (directory mode)
    missing: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def rows(self) -> List[Dict[str, object]]:
        return [d.describe() for d in self.deltas]


def compare_records(
    baseline: Dict[str, object],
    current: Dict[str, object],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    source: str = "",
) -> TrendReport:
    """Compare two loaded ``BENCH_*.json`` payloads row by row."""
    report = TrendReport()
    base_rows: Dict[Tuple, Dict[str, object]] = {}
    for row in baseline.get("rows", []):
        base_rows.setdefault(_row_identity(row), row)
    seen = set()
    for row in current.get("rows", []):
        ident = _row_identity(row)
        base = base_rows.get(ident)
        if base is None:
            report.unmatched.append(f"{source}: current-only row {ident}")
            continue
        seen.add(ident)
        noisy = _row_is_noisy(base, min_seconds) or _row_is_noisy(row, min_seconds)
        for metric, value in row.items():
            direction = _metric_direction(metric)
            if direction is None:
                continue
            base_value = base.get(metric)
            if not isinstance(value, (int, float)) or not isinstance(
                base_value, (int, float)
            ):
                continue
            if direction < 0 and float(base_value) < min_seconds:
                continue  # noise floor for wall-clock metrics
            if direction > 0 and noisy:
                continue  # ratios of sub-floor timings are noise too
            if base_value == 0:
                continue
            ratio = float(value) / float(base_value)
            regressed = (
                ratio > 1.0 + threshold if direction < 0 else ratio < 1.0 - threshold
            )
            report.deltas.append(
                MetricDelta(
                    source=source,
                    row=ident,
                    metric=metric,
                    baseline=float(base_value),
                    current=float(value),
                    direction=direction,
                    ratio=ratio,
                    regressed=regressed,
                )
            )
    for ident in base_rows:
        if ident not in seen:
            report.unmatched.append(f"{source}: baseline-only row {ident}")
    return report


def compare_paths(
    baseline: Union[str, Path],
    current: Union[str, Path],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> TrendReport:
    """Compare two ``BENCH_*.json`` files, or two directories of them.

    In directory mode the records are matched by filename; files present
    on one side only are reported in :attr:`TrendReport.missing` but do
    not fail the comparison (new benchmarks appear, old ones retire).
    """
    baseline, current = Path(baseline), Path(current)
    pairs: List[Tuple[Path, Path, str]] = []
    report = TrendReport()
    if baseline.is_dir() or current.is_dir():
        if not (baseline.is_dir() and current.is_dir()):
            raise ValueError(
                "compare_paths needs two files or two directories, got "
                f"{baseline} and {current}"
            )
        base_files = {p.name: p for p in sorted(baseline.glob("BENCH_*.json"))}
        cur_files = {p.name: p for p in sorted(current.glob("BENCH_*.json"))}
        for name in sorted(set(base_files) | set(cur_files)):
            if name in base_files and name in cur_files:
                pairs.append((base_files[name], cur_files[name], name))
            else:
                side = "baseline" if name in base_files else "current"
                report.missing.append(f"{name} only in {side}")
    else:
        pairs.append((baseline, current, current.name))
    for base_path, cur_path, name in pairs:
        sub = compare_records(
            load_benchmark(base_path),
            load_benchmark(cur_path),
            threshold=threshold,
            min_seconds=min_seconds,
            source=name,
        )
        report.deltas.extend(sub.deltas)
        report.unmatched.extend(sub.unmatched)
    return report


def render_report(
    report: TrendReport,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    no_fail: bool = False,
    print_fn=print,
) -> int:
    """Print the human-readable comparison and return the exit code.

    Shared by ``repro bench compare`` and ``benchmarks/compare_trend.py``
    so the rendering, note handling and exit-code policy cannot drift
    between the two entry points.
    """
    from .tables import format_table

    if report.rows():
        print_fn(
            format_table(
                report.rows(),
                title=f"Benchmark trend (threshold {threshold:.0%})",
            )
        )
    else:
        print_fn("no comparable metrics found")
    for note in report.missing + report.unmatched:
        print_fn(f"note: {note}")
    if report.regressions:
        print_fn(f"{len(report.regressions)} metric(s) regressed beyond the threshold")
        return 0 if no_fail else 1
    print_fn("no regressions beyond the threshold")
    return 0
