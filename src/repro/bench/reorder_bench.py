"""Locality-tier benchmark: vertex reordering + cache-blocked execution.

Measures steady-state epoch throughput of the same FusedMM call through
each ``reorder=`` strategy of the plan cache — the one-time ordering cost
is paid at plan build (reported separately as ``plan_s``), every
subsequent epoch replays the permutation-free cached plan.  The acceptance
gate of ``benchmarks/bench_reorder_locality.py`` requires the best
reordered strategy to beat the natural ordering by ≥1.2× on
``sigmoid_embedding`` at d=128 on a power-law graph.

The benchmark graph is an RMAT power-law graph with **randomly relabelled
vertices**: RMAT's recursive construction incidentally numbers hubs first,
which is precisely the locality a real ingestion pipeline does not
provide.  Shuffling the labels makes the "none" baseline representative of
arbitrary input IDs; the reorder strategies then have to *earn* their
speedup by recovering the structure.

Exposed to both ``repro bench reorder`` and
``benchmarks/bench_reorder_locality.py``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

from ..core.fused import fusedmm
from ..graphs import rmat
from ..graphs.features import random_features
from ..runtime import KernelRuntime
from ..sparse import REORDER_STRATEGIES, permute_symmetric

__all__ = ["bench_reorder_locality", "DEFAULT_MIN_SPEEDUP", "GATE_PATTERN"]

#: Acceptance gate: the best reordered strategy must beat the natural
#: ordering by this factor on the gate pattern (d=128, power-law graph).
DEFAULT_MIN_SPEEDUP = 1.2

#: The pattern the gate applies to (the paper's headline kernel).
GATE_PATTERN = "sigmoid_embedding"


def bench_reorder_locality(
    *,
    num_nodes: int = 50_000,
    avg_degree: int = 16,
    dim: int = 128,
    repeats: int = 3,
    pattern: str = GATE_PATTERN,
    strategies: Sequence[str] = REORDER_STRATEGIES,
    backend: str = "auto",
    seed: int = 9,
    shuffle: bool = True,
) -> List[Dict[str, object]]:
    """Per-strategy epoch throughput on one relabelled RMAT graph.

    Every row records correctness (``max_abs_err`` against the natural
    single-threaded kernel), the one-time planning cost (``plan_s``:
    permutation + panel compaction + fingerprint), the steady-state epoch
    time and the plan-cache hit rate of the measuring runtime — so the
    JSON record shows both the speedup *and* that the cache amortised the
    setup.
    """
    strategies = list(strategies)
    if "none" not in strategies:
        # Every speedup is relative to the natural ordering — measure it
        # even when the caller only asked for reordered strategies.
        strategies.insert(0, "none")
    A = rmat(num_nodes, num_nodes * avg_degree, seed=seed)
    if shuffle:
        rng = np.random.default_rng(seed + 1)
        A = permute_symmetric(A, rng.permutation(A.nrows).astype(np.int64))
    X = random_features(A.nrows, dim, seed=seed)
    ref = fusedmm(A, X, X, pattern=pattern, backend=backend, num_threads=1)

    rows: List[Dict[str, object]] = []
    for strategy in strategies:
        # autotune_dim sizes the cache panels — it must match the
        # measured feature dimension or the working-set math is off.
        runtime = KernelRuntime(num_threads=1, autotune_dim=dim)
        try:
            t0 = time.perf_counter()
            plan = runtime.plan(A, pattern=pattern, backend=backend, reorder=strategy)
            plan_s = time.perf_counter() - t0
            Z = runtime.run(A, X, pattern=pattern, backend=backend, reorder=strategy)
            err = float(
                np.max(
                    np.abs(Z.astype(np.float64) - ref.astype(np.float64)),
                    initial=0.0,
                )
            )
            total = 0.0
            for _ in range(max(1, repeats)):
                t0 = time.perf_counter()
                runtime.run(A, X, pattern=pattern, backend=backend, reorder=strategy)
                total += time.perf_counter() - t0
            seconds = total / max(1, repeats)
            info = plan.describe()
            stats = runtime.stats()
        finally:
            runtime.close()
        rows.append(
            {
                "benchmark": "reorder_locality",
                "graph": f"rmat n={num_nodes}" + (" shuffled" if shuffle else ""),
                "nnz": A.nnz,
                "d": dim,
                "pattern": pattern,
                "reorder": info["reorder"],
                "requested": strategy,
                "kind": info["kind"],
                "panels": int(info.get("panels", 0)),
                "plan_s": plan_s,
                "seconds": seconds,
                "edges_per_s": A.nnz / max(seconds, 1e-12),
                "max_abs_err": err,
                "cache_hit_rate": stats["plan_cache"]["hit_rate"],
            }
        )
    base = next(r for r in rows if r["requested"] == "none")
    for r in rows:
        r["speedup_vs_none"] = r["edges_per_s"] / max(base["edges_per_s"], 1e-12)
    return rows
