"""Kernel-comparison harness shared by the experiment modules.

The central measurement of the paper (Table VI, Figs. 8–9, Fig. 11) is a
three-way kernel comparison on one graph, one application pattern and one
feature dimension:

* ``dgl``        — the unfused SDDMM → H → SpMM pipeline,
* ``fusedmm``    — the general (unoptimized) fused kernel (Alg. 1 reference),
* ``fusedmmopt`` — the optimized fused kernel (specialized / generated /
  vectorized backend).

:func:`compare_kernels` runs exactly that comparison with the paper's
timing protocol and returns a row dictionary with times and speedups;
:func:`kernel_callables` exposes the three callables individually for
pytest-benchmark targets.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..baselines.unfused import unfused_fusedmm
from ..core.fused import fusedmm
from ..core.patterns import OpPattern
from ..graphs.features import random_features
from ..sparse import CSRMatrix, as_csr
from ..perf.timer import time_kernel

__all__ = ["kernel_callables", "compare_kernels", "make_operands"]

#: The generic reference kernel is O(nnz) *Python-level* iterations; cap the
#: problem size it is timed on so Table VI regeneration stays tractable, and
#: scale the measured time back up (documented in EXPERIMENTS.md).
GENERIC_TIMING_MAX_NNZ = 60_000


def make_operands(
    A,
    d: int,
    *,
    seed: int = 0,
    square_shares_features: bool = True,
):
    """Random single-precision feature operands (X, Y) for a kernel run."""
    A = as_csr(A)
    X = random_features(A.nrows, d, seed=seed)
    if square_shares_features and A.nrows == A.ncols:
        Y = X
    else:
        Y = random_features(A.ncols, d, seed=seed + 1)
    return X, Y


def kernel_callables(
    A,
    X: np.ndarray,
    Y: np.ndarray,
    *,
    pattern: OpPattern | str,
    num_threads: int = 1,
) -> Dict[str, Callable[[], np.ndarray]]:
    """The three comparands as zero-argument callables."""
    A = as_csr(A)

    def dgl() -> np.ndarray:
        return unfused_fusedmm(A, X, Y, pattern=pattern)

    def fused_generic() -> np.ndarray:
        return fusedmm(A, X, Y, pattern=pattern, backend="generic")

    def fused_opt() -> np.ndarray:
        return fusedmm(A, X, Y, pattern=pattern, backend="auto", num_threads=num_threads)

    return {"dgl": dgl, "fusedmm": fused_generic, "fusedmmopt": fused_opt}


def _scaled_generic_time(
    A: CSRMatrix,
    X: np.ndarray,
    Y: np.ndarray,
    pattern,
    repeats: int,
) -> float:
    """Time the reference kernel on a row prefix capped at
    ``GENERIC_TIMING_MAX_NNZ`` nonzeros and scale linearly to the full nnz
    (its cost is linear in nnz by construction)."""
    if A.nnz <= GENERIC_TIMING_MAX_NNZ:
        timing = time_kernel(
            fusedmm, A, X, Y, pattern=pattern, backend="generic", repeats=repeats, warmup=0
        )
        return timing.mean
    stop = int(np.searchsorted(A.indptr, GENERIC_TIMING_MAX_NNZ, side="left"))
    stop = max(1, min(stop, A.nrows))
    A_sample = A.row_slice(0, stop)
    timing = time_kernel(
        fusedmm,
        A_sample,
        X[:stop],
        Y,
        pattern=pattern,
        backend="generic",
        repeats=max(1, repeats // 2),
        warmup=0,
    )
    scale = A.nnz / max(A_sample.nnz, 1)
    return timing.mean * scale


def compare_kernels(
    graph_name: str,
    A,
    d: int,
    *,
    pattern: OpPattern | str,
    app_name: Optional[str] = None,
    repeats: int = 3,
    num_threads: int = 1,
    include_generic: bool = True,
    seed: int = 0,
) -> Dict[str, object]:
    """Run the DGL / FusedMM / FusedMMopt comparison and return one row.

    The row contains the three mean times (seconds), the two speedups the
    paper reports (FusedMMopt over DGL, and FusedMMopt over the generic
    FusedMM), and the problem parameters.
    """
    A = as_csr(A)
    X, Y = make_operands(A, d, seed=seed)
    callables = kernel_callables(A, X, Y, pattern=pattern, num_threads=num_threads)

    dgl_time = time_kernel(callables["dgl"], repeats=repeats).mean
    opt_time = time_kernel(callables["fusedmmopt"], repeats=repeats).mean
    row: Dict[str, object] = {
        "graph": graph_name,
        "app": app_name or (pattern if isinstance(pattern, str) else pattern.name),
        "d": int(d),
        "dgl_s": dgl_time,
        "fusedmmopt_s": opt_time,
        "speedup_opt_vs_dgl": dgl_time / max(opt_time, 1e-12),
    }
    if include_generic:
        gen_time = _scaled_generic_time(A, X, Y, pattern, repeats)
        row["fusedmm_s"] = gen_time
        row["speedup_gen_vs_dgl"] = dgl_time / max(gen_time, 1e-12)
        row["speedup_opt_vs_gen"] = gen_time / max(opt_time, 1e-12)
    return row
