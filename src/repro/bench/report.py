"""Result persistence and paper-vs-measured comparison reports.

Experiment modules return plain dictionaries/lists; this module saves them
as JSON under ``results/`` and renders the side-by-side comparison blocks
that EXPERIMENTS.md embeds.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Sequence

from .tables import format_markdown_table, format_table

__all__ = ["save_results", "load_results", "comparison_block", "ExperimentReport"]


def save_results(results, path: str | Path) -> Path:
    """Write experiment results as pretty-printed JSON (creating parent
    directories), stamping the wall-clock time of the run."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"timestamp": time.strftime("%Y-%m-%d %H:%M:%S"), "results": results}
    path.write_text(json.dumps(payload, indent=2, default=str))
    return path


def load_results(path: str | Path):
    """Read results previously written by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    return payload["results"]


def comparison_block(
    title: str,
    paper_rows: Sequence[Dict],
    measured_rows: Sequence[Dict],
    *,
    note: str = "",
    markdown: bool = False,
) -> str:
    """Render "paper reported" and "this reproduction measured" tables side
    by side (stacked), used by EXPERIMENTS.md."""
    fmt = format_markdown_table if markdown else (lambda rows: format_table(rows))
    parts = [f"## {title}" if markdown else title]
    if note:
        parts.append(note)
    parts.append("**Paper:**" if markdown else "Paper:")
    parts.append(fmt(list(paper_rows)))
    parts.append("**Measured (this reproduction):**" if markdown else "Measured:")
    parts.append(fmt(list(measured_rows)))
    return "\n\n".join(parts)


class ExperimentReport:
    """Accumulates experiment sections and writes a single Markdown report
    (the generator behind EXPERIMENTS.md refreshes)."""

    def __init__(self, title: str) -> None:
        self.title = title
        self.sections: List[str] = []

    def add_section(self, heading: str, body: str) -> None:
        """Append one section."""
        self.sections.append(f"## {heading}\n\n{body}")

    def add_comparison(
        self,
        heading: str,
        paper_rows: Sequence[Dict],
        measured_rows: Sequence[Dict],
        *,
        note: str = "",
    ) -> None:
        """Append a paper-vs-measured comparison section."""
        body_parts = []
        if note:
            body_parts.append(note)
        body_parts.append("**Paper:**\n\n" + format_markdown_table(list(paper_rows)))
        body_parts.append(
            "**Measured (this reproduction):**\n\n" + format_markdown_table(list(measured_rows))
        )
        self.sections.append(f"## {heading}\n\n" + "\n\n".join(body_parts))

    def render(self) -> str:
        """Full Markdown document."""
        return f"# {self.title}\n\n" + "\n\n".join(self.sections) + "\n"

    def write(self, path: str | Path) -> Path:
        """Write the rendered report to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render())
        return path
