"""Plain-text and Markdown table formatting for experiment reports.

Every experiment module produces a list of row dictionaries; these helpers
render them the way the harness prints them (aligned ASCII for the console,
Markdown for EXPERIMENTS.md) without pulling in any dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_markdown_table", "format_value"]


def format_value(value) -> str:
    """Human-friendly cell rendering: floats get 4 significant digits,
    everything else is ``str()``-ed."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def _columns(rows: Sequence[Dict], columns: Sequence[str] | None) -> List[str]:
    if columns is not None:
        return list(columns)
    cols: List[str] = []
    for row in rows:
        for key in row:
            if key not in cols:
                cols.append(key)
    return cols


def format_table(
    rows: Sequence[Dict],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = _columns(rows, columns)
    rendered = [[format_value(row.get(c, "")) for c in cols] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def format_markdown_table(
    rows: Sequence[Dict],
    *,
    columns: Sequence[str] | None = None,
) -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    cols = _columns(rows, columns)
    lines = ["| " + " | ".join(cols) + " |", "|" + "|".join("---" for _ in cols) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(format_value(row.get(c, "")) for c in cols) + " |")
    return "\n".join(lines)
