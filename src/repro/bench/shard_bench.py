"""Shard-scaling benchmark for the multi-process execution tier.

Measures the throughput of :meth:`KernelRuntime.run_sharded` as the shard
count grows on one fixed graph, always verifying bitwise equality against
the sequential single-process kernel — scaling numbers for results that
differ would be meaningless.

Exposed to both ``repro bench shard`` and
``benchmarks/bench_shard_scaling.py``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

from ..core.fused import fusedmm
from ..graphs import rmat
from ..graphs.features import random_features
from ..runtime import KernelRuntime

__all__ = ["bench_shard_scaling"]


def bench_shard_scaling(
    *,
    num_nodes: int = 20_000,
    avg_degree: int = 16,
    dim: int = 64,
    repeats: int = 3,
    shard_counts: Sequence[int] = (1, 2, 4),
    pattern: str = "sigmoid_embedding",
    seed: int = 5,
) -> List[Dict[str, object]]:
    """Throughput of sharded execution at each shard count.

    The 1-shard row also runs through the worker pool (one worker doing all
    partitions), so reported speedups isolate parallelism from IPC overhead
    rather than flattering the multi-shard rows.  Every row records whether
    the sharded result was bitwise identical to sequential ``fusedmm``.
    """
    A = rmat(num_nodes, num_nodes * avg_degree, seed=seed)
    X = random_features(A.nrows, dim, seed=seed)
    ref = fusedmm(A, X, X, pattern=pattern, num_threads=1)

    rows: List[Dict[str, object]] = []
    for shards in shard_counts:
        runtime = KernelRuntime(num_threads=1, processes=int(shards))
        try:
            Z = runtime.run_sharded(A, X, pattern=pattern)  # warm-up + plan
            identical = bool(np.array_equal(Z, ref))
            total = 0.0
            for _ in range(max(1, repeats)):
                t0 = time.perf_counter()
                runtime.run_sharded(A, X, pattern=pattern)
                total += time.perf_counter() - t0
            seconds = total / max(1, repeats)
            shard_plan = runtime.shard_plan(A, pattern=pattern)
        finally:
            runtime.close()
        edges_per_s = A.nnz / max(seconds, 1e-12)
        rows.append(
            {
                "benchmark": "shard_scaling",
                "graph": f"rmat n={num_nodes}",
                "nnz": A.nnz,
                "d": dim,
                "pattern": pattern,
                "shards": int(shards),
                "busy_shards": shard_plan.busy_shards,
                "balance": shard_plan.balance(),
                "seconds": seconds,
                "edges_per_s": edges_per_s,
                "identical": identical,
            }
        )
    # Baseline for the speedup column is the 1-shard row regardless of the
    # order (or presence) of 1 in ``shard_counts``.
    base = next((r for r in rows if r["shards"] == 1), rows[0] if rows else None)
    for r in rows:
        r["speedup_vs_1shard"] = r["edges_per_s"] / max(base["edges_per_s"], 1e-12)
    return rows
