"""Dynamic-graph benchmark: incremental invalidation vs full rebuild.

Three legs, all anchored on the delta-CSR identity contract (a kernel on
the mutated overlay is bitwise identical to the same kernel on a CSR
freshly rebuilt from the same edge set):

``update_vs_rebuild``
    Applies small edge batches (≤ ``churn`` of nnz per round) to a
    :class:`~repro.runtime.dynamic.DynamicGraph` with warm natural and
    reordered plans, timing :meth:`apply_edges` — overlay splice,
    in-place plan refresh, dirty-panel rebuild — against the naive
    alternative: rebuild the CSR from the full edge set and replan both
    plans on a cold runtime.  The headline gate is the speedup of the
    incremental path (``repro bench dynamic`` requires ≥ 5×).

``shard_identity``
    The mutated graph executed through :meth:`run_sharded` at several
    shard counts over the multi-process tier; every count must return
    the exact bytes of sequential ``fusedmm`` on the rebuilt CSR.

``remote_delta``
    The mutated graph executed on real ``python -m repro worker`` host
    processes.  The first sharded run ships full shards; the mutation
    registers dirty-row delta sources, so the next run must re-ship only
    the dirty rows (``delta_ships >= 1``) — and still match the rebuilt
    reference bitwise.

Exposed to both ``repro bench dynamic`` and
``benchmarks/bench_dynamic_updates.py``.
"""

from __future__ import annotations

import subprocess
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.fused import fusedmm
from ..graphs import rmat
from ..graphs.features import random_features
from ..runtime import KernelRuntime
from ..runtime.dynamic import DynamicGraph
from ..sparse import CSRMatrix
from ..sparse.coo import COOMatrix

__all__ = ["bench_dynamic_updates", "edge_batch", "rebuild_csr"]

#: How long to wait for worker hosts to register before giving up.
_JOIN_TIMEOUT_S = 60.0


def edge_batch(
    rng: np.random.Generator,
    A: CSRMatrix,
    n_insert: int,
    n_delete: int,
    n_hot: int = 32,
) -> Tuple[np.ndarray, np.ndarray]:
    """One deterministic mutation batch against the current matrix.

    All ops are concentrated on ``n_hot`` random source vertices — the
    locality a real edge stream exhibits (a handful of vertices gain and
    lose edges at a time) and the case the dirty-panel/dirty-shard
    invalidation is built for.  Deletes are sampled from edges that
    actually exist in the hot rows (so the batch really shrinks rows);
    inserts go from hot rows to uniform random targets, occasionally
    upserting an existing edge — both paths the overlay must handle.
    """
    hot = np.sort(rng.choice(A.nrows, size=min(int(n_hot), A.nrows), replace=False))
    starts, stops = A.indptr[hot], A.indptr[hot + 1]
    counts = stops - starts
    if int(counts.sum()):
        idx = np.concatenate(
            [np.arange(lo, hi) for lo, hi in zip(starts, stops)]
        )
        rows_of = np.repeat(hot, counts)
        pick = rng.choice(idx.size, size=min(int(n_delete), idx.size), replace=False)
        delete = np.stack(
            [
                rows_of[pick].astype(np.float64),
                A.indices[idx[pick]].astype(np.float64),
            ],
            axis=1,
        )
    else:
        delete = np.empty((0, 2), dtype=np.float64)
    u = hot[rng.integers(0, hot.size, size=int(n_insert))].astype(np.float64)
    v = rng.integers(0, A.ncols, size=int(n_insert)).astype(np.float64)
    w = (rng.random(int(n_insert)) + 0.5).astype(np.float64)
    insert = np.stack([u, v, w], axis=1)
    return insert, delete


def rebuild_csr(A: CSRMatrix) -> CSRMatrix:
    """A fresh canonical CSR built from ``A``'s full edge set — the
    vectorised COO route, so the rebuild leg is not a strawman."""
    rows = np.repeat(np.arange(A.nrows, dtype=np.int64), np.diff(A.indptr))
    return CSRMatrix.from_coo(
        COOMatrix(A.nrows, A.ncols, rows, A.indices.copy(), A.data.copy())
    )


def bench_dynamic_updates(
    *,
    num_nodes: int = 20_000,
    avg_degree: int = 16,
    dim: int = 64,
    rounds: int = 5,
    churn: float = 0.002,
    shard_counts: Sequence[int] = (1, 2, 4),
    pattern: str = "sigmoid_embedding",
    remote_workers: int = 2,
    remote_leg: bool = True,
    seed: int = 9,
) -> List[Dict[str, object]]:
    """Run all three legs and return the standard benchmark row dicts."""
    rng = np.random.default_rng(seed)
    base = rmat(num_nodes, num_nodes * avg_degree, seed=seed)
    X = random_features(base.nrows, dim, seed=seed)
    rows: List[Dict[str, object]] = []

    # ------------------------------------------------------------------ #
    # Leg 1: incremental update vs rebuild-from-scratch
    # ------------------------------------------------------------------ #
    half = max(1, int(base.nnz * churn) // 2)
    rt = KernelRuntime(num_threads=1, cache_size=64)
    identical = True
    update_s: List[float] = []
    rebuild_s: List[float] = []
    try:
        g = DynamicGraph(base, runtime=rt)
        # Warm plans for both the natural and the reordered execution
        # path; the mutation loop refreshes these in place.
        rt.run(g.matrix, X, pattern=pattern)
        rt.run(g.matrix, X, pattern=pattern, reorder="rcm")
        for _ in range(max(1, rounds)):
            insert, delete = edge_batch(rng, g.matrix, half, half)

            t0 = time.perf_counter()
            g.apply_edges(insert=insert, delete=delete)
            update_s.append(time.perf_counter() - t0)

            # The naive alternative on a cold runtime: rebuild the CSR
            # from the full edge set and replan both cached plans.
            A_cur = g.matrix
            cold = KernelRuntime(num_threads=1, cache_size=64)
            try:
                t0 = time.perf_counter()
                rebuilt = rebuild_csr(A_cur)
                cold.plan(rebuilt, pattern=pattern)
                cold.plan(rebuilt, pattern=pattern, reorder="rcm")
                rebuild_s.append(time.perf_counter() - t0)
            finally:
                cold.close()

            Z = rt.run(g.matrix, X, pattern=pattern)
            ref = fusedmm(rebuilt, X, X, pattern=pattern, num_threads=1)
            identical = identical and bool(np.array_equal(Z, ref))
        stats = g.stats()
        g.close()
    finally:
        rt.close()
    update_mean = sum(update_s) / len(update_s)
    rebuild_mean = sum(rebuild_s) / len(rebuild_s)
    rows.append(
        {
            "benchmark": "dynamic_updates",
            "leg": "update_vs_rebuild",
            "graph": f"rmat n={num_nodes}",
            "nnz": base.nnz,
            "d": dim,
            "pattern": pattern,
            "churn": churn,
            "rounds": int(max(1, rounds)),
            "seconds": update_mean,
            "rebuild_seconds": rebuild_mean,
            "speedup_vs_rebuild": rebuild_mean / max(update_mean, 1e-12),
            "plans_refreshed": stats["plans_refreshed"],
            "panels_reused": stats["panels_reused"],
            "panels_rebuilt": stats["panels_rebuilt"],
            "reorders_carried": stats["reorders_carried"],
            "identical": identical,
        }
    )

    # ------------------------------------------------------------------ #
    # Leg 2: bitwise identity across shard counts after mutation
    # ------------------------------------------------------------------ #
    rt = KernelRuntime(
        num_threads=1, processes=max(int(s) for s in shard_counts)
    )
    try:
        g = DynamicGraph(base, runtime=rt)
        for _ in range(2):
            insert, delete = edge_batch(rng, g.matrix, half, half)
            g.apply_edges(insert=insert, delete=delete)
        rebuilt = rebuild_csr(g.matrix)
        ref = fusedmm(rebuilt, X, X, pattern=pattern, num_threads=1)
        for shards in shard_counts:
            t0 = time.perf_counter()
            Z = rt.run_sharded(g.matrix, X, pattern=pattern, shards=int(shards))
            seconds = time.perf_counter() - t0
            rows.append(
                {
                    "benchmark": "dynamic_updates",
                    "leg": "shard_identity",
                    "graph": f"rmat n={num_nodes}",
                    "nnz": g.nnz,
                    "d": dim,
                    "pattern": pattern,
                    "shards": int(shards),
                    "seconds": seconds,
                    "identical": bool(np.array_equal(Z, ref)),
                }
            )
        g.close()
    finally:
        rt.close()

    # ------------------------------------------------------------------ #
    # Leg 3: remote worker hosts — dirty shards re-ship as deltas
    # ------------------------------------------------------------------ #
    if remote_leg:
        from .remote_bench import _reap, spawn_worker

        rt = KernelRuntime(num_threads=1, processes=0, remote_port=0)
        procs: List[subprocess.Popen] = []
        Z1: Optional[np.ndarray] = None
        try:
            controller = rt.controller
            procs = [
                spawn_worker(controller.port, f"dyn{i}")
                for i in range(int(remote_workers))
            ]
            joined = controller.wait_for_hosts(
                int(remote_workers), timeout=_JOIN_TIMEOUT_S
            )
            if joined < int(remote_workers):
                raise RuntimeError(
                    f"only {joined}/{remote_workers} worker hosts registered "
                    f"within {_JOIN_TIMEOUT_S}s"
                )
            g = DynamicGraph(base, runtime=rt)
            rt.run_sharded(g.matrix, X, pattern=pattern)  # full ship + warm
            insert, delete = edge_batch(rng, g.matrix, half, half)
            result = g.apply_edges(insert=insert, delete=delete)
            t0 = time.perf_counter()
            Z1 = rt.run_sharded(g.matrix, X, pattern=pattern)
            seconds = time.perf_counter() - t0
            rebuilt = rebuild_csr(g.matrix)
            ref = fusedmm(rebuilt, X, X, pattern=pattern, num_threads=1)
            remote_stats = rt.stats()["remote"]
            rows.append(
                {
                    "benchmark": "dynamic_updates",
                    "leg": "remote_delta",
                    "graph": f"rmat n={num_nodes}",
                    "nnz": g.nnz,
                    "d": dim,
                    "pattern": pattern,
                    "workers": int(remote_workers),
                    "seconds": seconds,
                    "delta_sources": result.delta_sources,
                    "delta_ships": remote_stats["delta_ships"],
                    "delta_fallbacks": remote_stats["delta_fallbacks"],
                    "identical": Z1 is not None
                    and bool(np.array_equal(Z1, ref)),
                }
            )
            g.close()
        finally:
            rt.close()
            _reap(procs)

    return rows
