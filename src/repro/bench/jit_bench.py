"""JIT-backend speedup benchmark (the paper's Table VI row, Python-scale).

Times the same FusedMM call through the ``optimized`` (NumPy blocked),
``specialized`` (hand-fused NumPy) and ``jit`` (Numba compiled) backends on
one RMAT graph and reports per-backend throughput plus the jit-over-
optimized speedup — the repo's acceptance gate requires ≥3× on
``sigmoid_embedding`` at d=128 when numba is installed.

Without numba the jit rows are skipped (the interpreted fallback exists
for correctness testing, not for timing) and the record notes
``jit_available: false`` so the trend tooling does not compare apples to
oranges.

Exposed to both ``repro bench jit`` and ``benchmarks/bench_jit_speedup.py``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

from ..core import jit as jit_backend
from ..core.fused import fusedmm
from ..graphs import rmat
from ..graphs.features import random_features

__all__ = ["bench_jit_speedup", "DEFAULT_MIN_SPEEDUP"]

#: Acceptance gate: jit must beat the optimized backend by this factor on
#: sigmoid_embedding (d=128) when numba is installed.
DEFAULT_MIN_SPEEDUP = 3.0

_BACKENDS = ("optimized", "specialized", "jit")


def bench_jit_speedup(
    *,
    num_nodes: int = 20_000,
    avg_degree: int = 16,
    dim: int = 128,
    repeats: int = 3,
    patterns: Sequence[str] = ("sigmoid_embedding", "fr_layout", "gcn"),
    seed: int = 11,
) -> List[Dict[str, object]]:
    """Per-backend timings for each pattern on one RMAT graph.

    The jit backend is warmed (compiled) before timing — compilation is a
    one-off cost the ``cache=True`` kernels amortise across processes, not
    part of steady-state throughput.  Every jit row records ``max_abs_err``
    against the optimized result as a cheap sanity check.
    """
    A = rmat(num_nodes, num_nodes * avg_degree, seed=seed)
    X = random_features(A.nrows, dim, seed=seed)
    available = jit_backend.jit_available()
    if available:
        jit_backend.warmup()

    rows: List[Dict[str, object]] = []
    for pattern in patterns:
        timings: Dict[str, float] = {}
        results: Dict[str, np.ndarray] = {}
        for backend in _BACKENDS:
            if backend == "jit" and not available:
                continue
            fusedmm(A, X, X, pattern=pattern, backend=backend)  # warm-up
            best = float("inf")
            for _ in range(max(1, repeats)):
                t0 = time.perf_counter()
                Z = fusedmm(A, X, X, pattern=pattern, backend=backend)
                best = min(best, time.perf_counter() - t0)
            timings[backend] = best
            results[backend] = Z
        for backend, seconds in timings.items():
            row: Dict[str, object] = {
                "benchmark": "jit_speedup",
                "graph": f"rmat n={num_nodes}",
                "nnz": A.nnz,
                "d": dim,
                "pattern": pattern,
                "backend": backend,
                "jit_available": available,
                "seconds": seconds,
                "edges_per_s": A.nnz / max(seconds, 1e-12),
                "speedup_vs_optimized": timings["optimized"] / max(seconds, 1e-12),
            }
            if backend == "jit":
                row["max_abs_err"] = float(
                    np.max(
                        np.abs(
                            results["jit"].astype(np.float64)
                            - results["optimized"].astype(np.float64)
                        )
                    )
                )
            rows.append(row)
    return rows
