"""Checkpoint-overhead benchmark for durable training jobs.

Answers the durability contract's performance question: how much epoch
time does ``checkpoint_every=1`` cost over running with durability off?
Each app trains the same synthetic workload twice — without a store and
with per-epoch checkpoints — and every row carries ``bitwise_identical``
(the checkpointed run's output compared against the bare run), so the
record doubles as a regression gate: overhead is only meaningful if
durability did not perturb the arithmetic.

Exposed to both ``repro bench jobs`` and
``benchmarks/bench_jobs_overhead.py``; the acceptance gate is
``overhead_frac <= 0.10`` (checkpointing costs at most 10% of epoch
time) on the default scaled-harvard workload.
"""

from __future__ import annotations

import tempfile
import time
from typing import Dict, List, Sequence

import numpy as np

from ..jobs import CheckpointStore, JobSpec, build_app, run_training

__all__ = ["bench_checkpoint_overhead", "DEFAULT_MAX_OVERHEAD"]

#: Acceptance gate: per-epoch checkpointing may cost at most this
#: fraction of the bare epoch time.
DEFAULT_MAX_OVERHEAD = 0.10

DEFAULT_APPS = ("force2vec", "gcn")


#: Per-app workload dataset and its full-scale node count (``scale``
#: maps the requested ``nodes`` onto it).  The embedding/layout apps get
#: harvard — edge-heavy (~109 avg degree), so epoch compute is
#: edge-dominated while checkpoint bytes scale with nodes and the
#: measured overhead reflects realistic long-epoch jobs instead of the
#: fsync latency floor.  GCN needs a labelled graph, so it runs pubmed.
_WORKLOADS = {
    "force2vec": ("harvard", 6_000),
    "verse": ("harvard", 6_000),
    "fr_layout": ("harvard", 6_000),
    "gcn": ("pubmed", 19_717),
}


def _spec(app: str, *, nodes: int, dim: int, epochs: int, every: int) -> JobSpec:
    dataset, full_nodes = _WORKLOADS[app]
    return JobSpec(
        app=app,
        dataset=dataset,
        scale=min(1.0, nodes / full_nodes),
        dim=dim,
        epochs=epochs,
        seed=7,
        checkpoint_every=every,
    )


def bench_checkpoint_overhead(
    *,
    nodes: int = 6000,
    dim: int = 32,
    epochs: int = 4,
    repeats: int = 3,
    apps: Sequence[str] = DEFAULT_APPS,
) -> List[Dict[str, object]]:
    """Per-app epoch-vs-save timings plus the bitwise-identity verdict.

    ``overhead_frac`` is the direct ratio: best (min over ``repeats``)
    time of one durable :meth:`~repro.jobs.CheckpointStore.save` of the
    app's real exported state, over the best bare epoch time.  The ratio
    is measured from separately-timed components rather than diffing two
    full-run wall times — per-save fsync latency is far too volatile for
    a subtraction of totals to gate on.  The durable run still executes
    end to end so every row also verifies the durability contract:
    ``bitwise_identical`` compares its output against the bare run's.
    """
    rows: List[Dict[str, object]] = []
    for app in apps:
        bare_spec = _spec(app, nodes=nodes, dim=dim, epochs=epochs, every=0)
        durable_spec = _spec(app, nodes=nodes, dim=dim, epochs=epochs, every=1)
        # Warm caches (dataset memos, plan cache, JIT) outside the timings.
        build_app(bare_spec)

        bare_best = float("inf")
        bare_out = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            result = run_training(bare_spec)
            bare_best = min(bare_best, time.perf_counter() - start)
            bare_out = result.output
        epoch_seconds = bare_best / max(1, epochs)

        with tempfile.TemporaryDirectory(prefix="repro-bench-ck-") as tmp:
            store = CheckpointStore(tmp, keep_last=2)
            durable = run_training(durable_spec, store=store)
            written = store.stats()["checkpoints_written"]
            # Time the save in isolation on the trained app's real state.
            # More iterations than the epoch timing: one save is ~ms-scale
            # and fsync latency jitters by several ms on loaded hosts, so
            # min-of-few is not a stable floor.
            _, trained = build_app(durable_spec)
            trained.load_state(store.latest().state)
            state = trained.export_state()
            save_best = float("inf")
            for i in range(max(10, repeats)):
                start = time.perf_counter()
                store.save(epochs + 1 + i, state)
                save_best = min(save_best, time.perf_counter() - start)

        identical = bool(
            np.array_equal(bare_out, durable.output)
            and bare_out.dtype == durable.output.dtype
        )
        rows.append(
            {
                "app": app,
                "dataset": _WORKLOADS[app][0],
                "nodes": nodes,
                "dim": dim,
                "epochs": epochs,
                "epoch_seconds": epoch_seconds,
                "save_seconds": save_best,
                "overhead_frac": save_best / epoch_seconds,
                "checkpoints_written": written,
                "bitwise_identical": identical,
            }
        )
    return rows
