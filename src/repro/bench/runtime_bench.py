"""Throughput benchmarks for the batched kernel runtime.

Two measurements, exposed to both ``repro bench runtime`` and the
``benchmarks/bench_runtime_throughput.py`` script:

* **plan-cache amortisation** — repeated calls on one fixed adjacency.
  The cold path re-plans on every call (pattern resolution, partitioning,
  autotuning — what a naive per-call user of :class:`repro.core.FusedMM`
  pays each time); the warm path goes through
  :meth:`~repro.runtime.KernelRuntime.run` and hits the plan cache after
  the first call.

* **batch packing** — many small same-pattern requests issued as
  sequential :func:`~repro.core.fused.fusedmm` calls versus one
  :meth:`~repro.runtime.KernelRuntime.run_batch`, which packs them into a
  block-diagonal super-problem (results stay bitwise identical).
"""

from __future__ import annotations

import gc
import time
from typing import Dict, List, Optional

import numpy as np

from ..core.autotune import clear_tuning_cache
from ..core.fused import FusedMM, fusedmm
from ..graphs import rmat
from ..graphs.features import random_features
from ..runtime import KernelRequest, KernelRuntime
from ..sparse import random_csr

__all__ = [
    "bench_plan_cache",
    "bench_batch_packing",
    "run_throughput_benchmark",
]


def _mean_seconds(fn, repeats: int) -> float:
    # Pay down collector debt from setup/allocation before timing: these
    # windows are sub-millisecond, and a cyclic-GC pass landing inside
    # one (its cost scales with the whole process's object count, i.e.
    # with whatever else happens to be imported) would swamp the signal.
    gc.collect()
    total = 0.0
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        total += time.perf_counter() - t0
    return total / max(1, repeats)


def bench_plan_cache(
    *,
    num_nodes: int = 10_000,
    avg_degree: int = 8,
    dim: int = 64,
    repeats: int = 3,
    pattern: str = "sigmoid_embedding",
    num_threads: int = 1,
    seed: int = 1,
) -> Dict[str, object]:
    """Cold (re-planned, re-tuned every call) vs plan-cached repeated calls."""
    A = rmat(num_nodes, num_nodes * avg_degree, seed=seed)
    X = random_features(A.nrows, dim, seed=seed)

    def cold_call() -> None:
        # What every epoch pays without a runtime: resolution, partitioning
        # and autotuning from scratch (the tuning cache is cleared so the
        # measurement reflects a genuinely cold plan).
        clear_tuning_cache()
        kernel = FusedMM(
            A, pattern=pattern, autotune=True, autotune_dim=dim,
            num_threads=num_threads,
        )
        kernel(X)

    cold_s = _mean_seconds(cold_call, repeats)

    runtime = KernelRuntime(
        num_threads=num_threads, autotune=True, autotune_dim=dim
    )
    runtime.run(A, X, pattern=pattern)  # first call builds + tunes the plan
    warm_s = _mean_seconds(lambda: runtime.run(A, X, pattern=pattern), repeats)
    stats = runtime.stats()
    runtime.close()

    return {
        "benchmark": "plan_cache",
        "graph": f"rmat n={num_nodes}",
        "nnz": A.nnz,
        "d": dim,
        "pattern": pattern,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / max(warm_s, 1e-12),
        "cache_hits": stats["plan_cache"]["hits"],
        "cache_hit_rate": stats["plan_cache"]["hit_rate"],
    }


def bench_batch_packing(
    *,
    num_requests: int = 32,
    nodes: int = 96,
    density: float = 0.04,
    dim: int = 16,
    repeats: int = 3,
    pattern: str = "sigmoid_embedding",
    num_threads: Optional[int] = None,
    seed: int = 7,
) -> Dict[str, object]:
    """Sequential ``fusedmm`` calls vs one packed ``run_batch``."""
    problems = []
    for i in range(num_requests):
        A = random_csr(nodes, nodes, density=density, seed=seed + i)
        X = random_features(nodes, dim, seed=seed + i)
        problems.append((A, X))

    def sequential() -> List[np.ndarray]:
        return [
            fusedmm(A, X, pattern=pattern, num_threads=1) for A, X in problems
        ]

    seq_s = _mean_seconds(sequential, repeats)

    runtime = KernelRuntime(num_threads=num_threads)
    requests = [KernelRequest(A, X, pattern=pattern) for A, X in problems]
    # Include one cold batch (plans built) in the reported first-call time,
    # then measure the steady state the serving loop actually sees.
    t0 = time.perf_counter()
    runtime.run_batch(requests)
    batch_cold_s = time.perf_counter() - t0
    batch_s = _mean_seconds(lambda: runtime.run_batch(requests), repeats)
    stats = runtime.stats()
    runtime.close()

    return {
        "benchmark": "batch_packing",
        "graph": f"{num_requests}×({nodes}², {density})",
        "nnz": sum(A.nnz for A, _ in problems),
        "d": dim,
        "pattern": pattern,
        "sequential_s": seq_s,
        "batch_cold_s": batch_cold_s,
        "batch_s": batch_s,
        "speedup": seq_s / max(batch_s, 1e-12),
        "packed_requests": stats["packed_requests"],
        "cache_hit_rate": stats["plan_cache"]["hit_rate"],
    }


def run_throughput_benchmark(
    *,
    quick: bool = False,
    num_threads: int = 1,
    dims=(64,),
) -> List[Dict[str, object]]:
    """The full runtime benchmark grid (scaled down under ``--quick``)."""
    nodes = 2_000 if quick else 10_000
    repeats = 2 if quick else 3
    num_requests = 8 if quick else 32
    rows: List[Dict[str, object]] = []
    for d in dims:
        rows.append(
            bench_plan_cache(
                num_nodes=nodes,
                dim=int(d),
                repeats=repeats,
                num_threads=num_threads,
            )
        )
    rows.append(
        bench_batch_packing(
            num_requests=num_requests,
            repeats=repeats,
            num_threads=num_threads,
        )
    )
    return rows
