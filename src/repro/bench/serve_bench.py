"""Serving throughput benchmark: micro-batching vs one-at-a-time dispatch.

Starts an in-process :class:`~repro.serve.runner.BackgroundServer`, then
hammers it with N **closed-loop** clients (each fires its next request the
moment the previous response lands — the standard serving-benchmark load
model) in two configurations:

* ``serial``     — ``max_batch=1``: every request dispatches alone; the
  coalescer degenerates to a queue in front of the runtime.
* ``coalesced``  — the configured ``max_batch``/``max_wait_ms``: windows
  of concurrent requests execute as one ``run_batch`` call.

Every response is verified **bitwise** against a locally computed
sequential ``fusedmm`` reference before it counts — a throughput number
from wrong answers is worthless.  The acceptance gate (enforced by
``benchmarks/bench_serve_throughput.py``) is coalesced ≥ 1.5× serial at
≥ 8 clients on multi-core hosts.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

import numpy as np

from ..core.fused import fusedmm
from ..graphs.features import random_features
from ..serve import ServeClient, ServeConfig, WireClient
from ..serve.runner import BackgroundServer
from ..sparse import random_csr

__all__ = [
    "bench_serve_throughput",
    "bench_wire_vs_http",
    "DEFAULT_MIN_SPEEDUP",
    "GATE_MIN_CLIENTS",
    "WIRE_MIN_SPEEDUP",
]

#: Acceptance criterion: coalesced throughput over serial dispatch.
DEFAULT_MIN_SPEEDUP = 1.5
#: The gate is only meaningful with real concurrency on the wire.
GATE_MIN_CLIENTS = 8
#: Acceptance criterion: wire transport over HTTP on tiny payloads.
WIRE_MIN_SPEEDUP = 1.3


def _make_workload(
    num_graphs: int, nodes: int, dim: int, pattern: str, seed: int = 0
):
    """A pool of small request problems + their bitwise references."""
    problems = []
    for i in range(num_graphs):
        A = random_csr(nodes, nodes, density=4.0 / nodes, seed=seed + i)
        X = random_features(nodes, dim, seed=seed + 100 + i)
        Z = fusedmm(A, X, X, pattern=pattern, backend="auto")
        problems.append((A, X, Z))
    return problems


def _run_clients(
    host: str,
    port: int,
    problems,
    *,
    clients: int,
    requests_per_client: int,
    pattern: str,
) -> Dict[str, object]:
    """Closed-loop client fleet; returns throughput + correctness stats."""
    errors: List[str] = []
    mismatches = [0] * clients
    barrier = threading.Barrier(clients + 1)

    def _client(cid: int) -> None:
        try:
            with ServeClient(host, port, timeout=120.0) as client:
                barrier.wait()
                for r in range(requests_per_client):
                    g = (cid + r) % len(problems)
                    _A, X, Z_ref = problems[g]
                    # The registered-graph + raw-npy fast path: the same
                    # wire cost in both modes, so the measured difference
                    # is the dispatch the coalescer amortises.
                    Z = client.kernel_npy(X, model=f"g{g}", pattern=pattern)
                    if not np.array_equal(Z, Z_ref):
                        mismatches[cid] += 1
        except Exception as exc:  # noqa: BLE001 - reported as a row failure
            errors.append(f"client {cid}: {type(exc).__name__}: {exc}")
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    threads = [
        threading.Thread(target=_client, args=(cid,), daemon=True)
        for cid in range(clients)
    ]
    for t in threads:
        t.start()
    try:
        barrier.wait()  # release everyone at once; the clock starts here
    except threading.BrokenBarrierError:
        pass  # a client failed during connect; its error is recorded
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - t0
    total = clients * requests_per_client
    return {
        "seconds": seconds,
        "requests": total,
        "rps": total / seconds if seconds > 0 else 0.0,
        "mismatched": int(sum(mismatches)),
        "errors": errors,
    }


def _run_wire_clients(
    host: str,
    port: int,
    problems,
    *,
    clients: int,
    requests_per_client: int,
    pattern: str,
    pipeline: int,
) -> Dict[str, object]:
    """Wire-protocol client fleet with a sliding pipeline window.

    Each client keeps up to ``pipeline`` requests outstanding (bounded by
    the server's credit grant) — pipelining is the capability the framed
    protocol adds over the request/response HTTP client, so the benchmark
    exercises it deliberately.  Every response is still verified bitwise.
    """
    errors: List[str] = []
    mismatches = [0] * clients
    barrier = threading.Barrier(clients + 1)

    def _client(cid: int) -> None:
        try:
            with WireClient(host, port, timeout=120.0) as client:
                depth = max(1, min(pipeline, client.credits))
                barrier.wait()
                sent = 0
                inflight: Dict[int, int] = {}
                while sent < requests_per_client or inflight:
                    while sent < requests_per_client and len(inflight) < depth:
                        g = (cid + sent) % len(problems)
                        rid = client.send_kernel(
                            model=f"g{g}", x=problems[g][1], pattern=pattern
                        )
                        inflight[rid] = g
                        sent += 1
                    rid, value = client.recv()
                    g = inflight.pop(rid)
                    if isinstance(value, Exception):
                        raise value
                    if not np.array_equal(value, problems[g][2]):
                        mismatches[cid] += 1
        except Exception as exc:  # noqa: BLE001 - reported as a row failure
            errors.append(f"client {cid}: {type(exc).__name__}: {exc}")
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    threads = [
        threading.Thread(target=_client, args=(cid,), daemon=True)
        for cid in range(clients)
    ]
    for t in threads:
        t.start()
    try:
        barrier.wait()
    except threading.BrokenBarrierError:
        pass
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - t0
    total = clients * requests_per_client
    return {
        "seconds": seconds,
        "requests": total,
        "rps": total / seconds if seconds > 0 else 0.0,
        "mismatched": int(sum(mismatches)),
        "errors": errors,
    }


def bench_wire_vs_http(
    *,
    clients: int = 6,
    requests_per_client: int = 25,
    num_graphs: int = 4,
    pattern: str = "sigmoid_embedding",
    max_batch: int = 32,
    max_wait_ms: float = 2.0,
    pipeline: int = 4,
    num_threads: Optional[int] = None,
    dispatch_workers: int = 2,
) -> List[Dict[str, object]]:
    """Compare the binary wire protocol against the HTTP front-end.

    One server per payload leg serves **both** transports off the same
    coalescer, so the measured difference is pure transport cost:

    * ``tiny``  — 96-node graphs, dim-8 operands: the HTTP-parse-bound
      regime the wire protocol exists for (gate: ≥ ``WIRE_MIN_SPEEDUP``).
    * ``large`` — 1500-node graphs, dim-64 operands: kernel time
      dominates, so the transports should converge (sanity leg, no gate).

    Every response on every leg is verified bitwise against the serial
    ``fusedmm`` reference.  Returns one row per (leg, transport); wire
    rows carry ``speedup_vs_http``.
    """
    legs = [
        ("tiny", 96, 8, requests_per_client),
        ("large", 1500, 64, max(4, requests_per_client // 5)),
    ]
    rows: List[Dict[str, object]] = []
    for leg, nodes, dim, leg_requests in legs:
        problems = _make_workload(num_graphs, nodes, dim, pattern)
        config = ServeConfig(
            port=0,
            wire_port=0,
            wire_credits=max(pipeline, 4),
            models=(),
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_queue=max(4 * clients * max_batch, 256),
            num_threads=num_threads or 0,
            dispatch_workers=dispatch_workers,
        )
        bg = BackgroundServer(config)
        for i, (A, _X, _Z) in enumerate(problems):
            bg.server.registry.register_graph(f"g{i}", A)
        with bg:
            http = _run_clients(
                bg.host,
                bg.port,
                problems,
                clients=clients,
                requests_per_client=leg_requests,
                pattern=pattern,
            )
            wire = _run_wire_clients(
                bg.host,
                bg.wire_port,
                problems,
                clients=clients,
                requests_per_client=leg_requests,
                pattern=pattern,
                pipeline=pipeline,
            )
        for transport, result in (("http", http), ("wire", wire)):
            row: Dict[str, object] = {
                "payload": leg,
                "transport": transport,
                "clients": clients,
                "requests": result["requests"],
                "nodes": nodes,
                "dim": dim,
                "pipeline": pipeline if transport == "wire" else 1,
                "seconds": round(result["seconds"], 4),
                "rps": round(result["rps"], 1),
                "bitwise_identical": result["mismatched"] == 0
                and not result["errors"],
            }
            if result["errors"]:
                row["errors"] = result["errors"][:3]
            if transport == "wire" and http["rps"]:
                row["speedup_vs_http"] = round(
                    result["rps"] / http["rps"], 3
                )
            rows.append(row)
    return rows


def bench_serve_throughput(
    *,
    clients: int = 8,
    requests_per_client: int = 25,
    nodes: int = 96,
    dim: int = 8,
    num_graphs: int = 8,
    pattern: str = "sigmoid_embedding",
    max_batch: int = 32,
    max_wait_ms: float = 2.0,
    num_threads: Optional[int] = None,
    dispatch_workers: int = 2,
    modes: Optional[List[str]] = None,
) -> List[Dict[str, object]]:
    """Measure serving throughput with and without micro-batching.

    The request problems are sized to be *packable* (small nnz, small
    dense footprint) — the regime micro-batching exists for: thousands of
    small concurrent requests, not a handful of machine-filling ones.
    Both modes get the same runtime (``num_threads=None`` → all cores)
    and the same dispatch width; what differs is that a coalesced window
    reaches the runtime's thread pool as *one* ``run_batch`` — packed
    kernels, one dispatch, full fan-out — while one-at-a-time dispatch
    pays per-request overhead and is capped at ``dispatch_workers``
    concurrent kernels.  Returns one row per mode; the ``coalesced`` row
    carries ``speedup_vs_serial`` and the coalescer's window stats.
    """
    problems = _make_workload(num_graphs, nodes, dim, pattern)
    rows: List[Dict[str, object]] = []
    serial_rps: Optional[float] = None
    for mode in modes or ["serial", "coalesced"]:
        config = ServeConfig(
            port=0,
            models=(),  # kernel traffic only; no model registry cost
            max_batch=1 if mode == "serial" else max_batch,
            max_wait_ms=0.0 if mode == "serial" else max_wait_ms,
            max_queue=max(4 * clients * max_batch, 256),
            num_threads=num_threads or 0,
            dispatch_workers=dispatch_workers,
        )
        bg = BackgroundServer(config)
        # Register the workload graphs by name before the listener opens:
        # clients then ship only the dense operand per request, and the
        # plans are warm in both modes.
        for i, (A, _X, _Z) in enumerate(problems):
            bg.server.registry.register_graph(f"g{i}", A)
        with bg:
            result = _run_clients(
                bg.host,
                bg.port,
                problems,
                clients=clients,
                requests_per_client=requests_per_client,
                pattern=pattern,
            )
            stats = bg.server.statz()
        coal = stats["coalescer"] or {}
        row: Dict[str, object] = {
            "mode": mode,
            "clients": clients,
            "requests": result["requests"],
            "nodes": nodes,
            "dim": dim,
            "pattern": pattern,
            "max_batch": config.max_batch,
            "max_wait_ms": config.max_wait_ms,
            "seconds": round(result["seconds"], 4),
            "rps": round(result["rps"], 1),
            "batches": coal.get("batches", 0),
            "mean_window_occupancy": coal.get("mean_window_occupancy", 0.0),
            "wait_ms_p50": coal.get("wait_ms_p50", 0.0),
            "wait_ms_p99": coal.get("wait_ms_p99", 0.0),
            "bitwise_identical": result["mismatched"] == 0 and not result["errors"],
            "cache_hit_rate": stats.get("plan_cache_hit_rate", 0.0),
        }
        if result["errors"]:
            row["errors"] = result["errors"][:3]
        if mode == "serial":
            serial_rps = result["rps"]
        elif serial_rps:
            row["speedup_vs_serial"] = round(result["rps"] / serial_rps, 3)
        rows.append(row)
    return rows
