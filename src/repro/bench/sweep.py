"""Parameter-sweep helpers for the sensitivity experiments (Fig. 11).

Two sweeps appear in the paper:

* average-degree sweep — RMAT graphs with a fixed vertex count and a
  doubling number of edges (Fig. 11a);
* dimension sweep — one graph, growing feature dimension (Fig. 11b).

Both are expressed here as iterators over fully-specified work items so the
experiment modules and the pytest benchmarks can share them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from ..graphs.generators import rmat
from ..sparse import CSRMatrix

__all__ = ["DegreeSweepItem", "degree_sweep_graphs", "dimension_sweep"]


@dataclass(frozen=True)
class DegreeSweepItem:
    """One RMAT graph of the average-degree sweep."""

    target_avg_degree: float
    graph: CSRMatrix

    @property
    def realised_avg_degree(self) -> float:
        """Average degree actually achieved after dedup/symmetrisation."""
        return self.graph.avg_degree()


def degree_sweep_graphs(
    num_vertices: int,
    avg_degrees: Sequence[float],
    *,
    seed: int = 0,
) -> Iterator[DegreeSweepItem]:
    """Generate RMAT graphs with ``num_vertices`` vertices and the requested
    average degrees (the Fig. 11a workload; the paper uses 100K vertices
    and degrees 10..140, scaled down here through ``num_vertices``)."""
    for i, degree in enumerate(avg_degrees):
        num_edges = int(num_vertices * float(degree) / 2.0)
        graph = rmat(num_vertices, num_edges, seed=seed + i)
        yield DegreeSweepItem(target_avg_degree=float(degree), graph=graph)


def dimension_sweep(dims: Sequence[int]) -> List[int]:
    """Validated list of feature dimensions for a dimension sweep."""
    out = [int(d) for d in dims]
    if any(d <= 0 for d in out):
        raise ValueError("all dimensions must be positive")
    return out
