"""Deterministic chaos soak over the resilience layer (``repro chaos``).

Three legs, all gated on the same invariant the whole execution stack is
built around: **faults may cost time, never bytes**.

Distributed leg
    A :class:`~repro.runtime.KernelRuntime` with the distributed
    controller open, ``repro worker`` subprocesses carrying *seeded*
    :class:`~repro.resilience.FaultPlan` schedules (crash, disconnect,
    delay, drop_frame), plus one dedicated flapper (``disconnect@1+``)
    that must end up quarantined.  Every batch is asserted bitwise
    against the sequential kernel; halfway through, the controller is
    severed without notice (``close(notify=False)``) and rebuilt on the
    same port — the workers must rejoin through their backoff loops and
    the next batches must still match.

Mutation leg
    A :class:`~repro.runtime.dynamic.DynamicGraph` on the distributed
    tier: seeded edge batches applied between sharded runs while the
    workers carry fault plans (crashes, disconnects, delays, dropped
    frames) and the controller is severed and rebuilt mid-soak — the
    live graph handle survives its controller.  Gates: every
    acknowledged version increments by exactly one (never torn), every
    post-mutation batch is bitwise identical to a kernel on a CSR
    rebuilt from scratch out of the same edge set, and the workers
    rejoin after the restart.

Serve leg
    A :class:`~repro.serve.runner.BackgroundServer` with a seeded
    ``fault_spec`` injecting request-level faults into both the HTTP and
    binary wire front-ends, driven by retry-armed clients
    (:class:`~repro.resilience.RetryPolicy`); every response is asserted
    bitwise.

Training leg
    A real ``repro train`` subprocess with a durable checkpoint
    directory, SIGKILL-ed (``-9`` — no drain, no atexit) as soon as it
    reports epoch 2, then rerun with the same command line.  The rerun
    must print the resume banner and its final output must be bitwise
    identical to an uninterrupted reference run — the
    :mod:`repro.jobs` durability contract under the harshest crash.

A watchdog thread turns "no hangs" into an enforceable gate: if no
batch/request completes for ``stall_timeout_s`` the harness dumps its
progress and hard-exits — a hung soak fails CI instead of timing it out.

Everything is derived from one ``--seed``, so a failing soak replays.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from typing import Dict, List, Optional

import numpy as np

from ..core.fused import fusedmm
from ..graphs import rmat
from ..graphs.features import random_features
from ..resilience import FAULT_KINDS, FaultPlan, RetryPolicy
from ..runtime import KernelRuntime

__all__ = ["run_chaos"]

#: Registration wait after spawning / restarting (CI machines are slow).
_JOIN_TIMEOUT_S = 60.0


class _Watchdog:
    """Hard-exits the process when progress stalls.

    ``beat()`` after every completed unit of work; if no beat lands for
    ``stall_timeout_s`` the run has hung (a lost future, a deadlocked
    retry loop) and the watchdog prints a diagnosis and ``os._exit``-s —
    the one failure mode a soak must never convert into "wait for the CI
    timeout".
    """

    def __init__(self, stall_timeout_s: float) -> None:
        import threading

        self.stall_timeout_s = stall_timeout_s
        self._last = time.monotonic()
        self._label = "startup"
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._watch, name="repro-chaos-watchdog", daemon=True
        )
        self._thread.start()

    def beat(self, label: str) -> None:
        with self._lock:
            self._last = time.monotonic()
            self._label = label

    def close(self) -> None:
        self._stop.set()

    def _watch(self) -> None:
        while not self._stop.wait(1.0):
            with self._lock:
                stale = time.monotonic() - self._last
                label = self._label
            if stale > self.stall_timeout_s:
                print(
                    f"repro chaos: HANG — no progress for {stale:.0f}s "
                    f"(last unit: {label}); failing hard",
                    file=sys.stderr,
                    flush=True,
                )
                os._exit(3)


def _free_port() -> int:
    """An OS-assigned free TCP port (released immediately — the tiny
    reuse race is acceptable on a loopback CI box)."""
    import socket

    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _worker_plans(seed: int, workers: int) -> List[Optional[str]]:
    """One fault-plan spec per worker, fully determined by ``seed``.

    Worker 0 carries an explicit schedule so every fault kind is
    guaranteed to fire within a handful of batches (a purely random
    draw could leave a kind uncovered in a short soak); the rest get
    seeded random schedules for variety.
    """
    plans: List[Optional[str]] = ["delay@2:0.3,drop_frame@3,crash@6"]
    for i in range(1, workers):
        plan = FaultPlan.seeded(
            seed * 31 + i,
            steps=40,
            rate=0.2,
            kinds=("delay", "drop_frame", "disconnect"),
            max_delay_s=0.4,
        )
        plans.append(plan.to_spec() or None)
    return plans


def _spawn(port: int, name: str, plan: Optional[str], stderr_path: str):
    from .remote_bench import spawn_worker

    handle = open(stderr_path, "ab")
    try:
        return spawn_worker(
            port,
            name,
            fault_plan=plan,
            reconnect_delay=0.05,
            once=False,
            stderr=handle,
        )
    finally:
        handle.close()


def _fault_kinds_logged(paths: List[str]) -> Dict[str, int]:
    """Parse ``CHAOS-FAULT kind=...`` lines out of worker stderr logs."""
    counts: Dict[str, int] = {}
    for path in paths:
        try:
            with open(path, "rb") as fh:
                text = fh.read().decode("utf-8", errors="replace")
        except OSError:
            continue
        for line in text.splitlines():
            if "CHAOS-FAULT" not in line:
                continue
            for token in line.split():
                if token.startswith("kind="):
                    kind = token[len("kind=") :]
                    counts[kind] = counts.get(kind, 0) + 1
    return counts


def _merge_remote_stats(total: Dict[str, int], stats: Dict[str, object]) -> None:
    for key in (
        "hosts_lost",
        "retries",
        "hedges",
        "hedge_wins",
        "quarantined_hosts",
        "probes",
        "registrations_rejected",
        "batches",
        "delta_ships",
        "delta_fallbacks",
    ):
        value = stats.get(key)
        if isinstance(value, (int, float)):
            total[key] = total.get(key, 0) + int(value)


def _distributed_leg(
    *,
    seed: int,
    deadline: float,
    workers: int,
    nodes: int,
    avg_degree: int,
    dim: int,
    pattern: str,
    watchdog: _Watchdog,
    emit,
) -> Dict[str, object]:
    import subprocess

    from .remote_bench import _reap

    A = rmat(nodes, nodes * avg_degree, seed=seed)
    X = random_features(A.nrows, dim, seed=seed)
    ref = fusedmm(A, X, X, pattern=pattern, num_threads=1)

    port = _free_port()
    plans = _worker_plans(seed, workers)
    log_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    names = [f"chaos-w{i}" for i in range(workers)] + ["chaos-flapper"]
    specs = plans + ["disconnect@1+"]
    logs = [os.path.join(log_dir, f"{name}.stderr") for name in names]

    runtime = KernelRuntime(
        num_threads=1, processes=0, remote_port=port, remote_hedge=True
    )
    procs: List[subprocess.Popen] = []
    stats_total: Dict[str, int] = {}
    batches = 0
    mismatches = 0
    respawns = 0
    restart_rejoined = -1
    try:
        controller = runtime.controller
        procs = [
            _spawn(port, name, spec, log)
            for name, spec, log in zip(names, specs, logs)
        ]
        controller.wait_for_hosts(workers, timeout=_JOIN_TIMEOUT_S)
        watchdog.beat("distributed: hosts joined")

        restart_at = time.monotonic() + max(
            (deadline - time.monotonic()) / 2.0, 1.0
        )
        restarted = False
        while time.monotonic() < deadline or batches < 6:
            if not restarted and time.monotonic() >= restart_at:
                # Controller "crash": sever every connection without the
                # EXIT handshake, then rebuild on the same port.  Agents
                # observe a disconnect and must rejoin via backoff.
                _merge_remote_stats(stats_total, controller.stats())
                controller.close(notify=False)
                runtime.close()
                runtime = KernelRuntime(
                    num_threads=1,
                    processes=0,
                    remote_port=port,
                    remote_hedge=True,
                )
                controller = runtime.controller
                restart_rejoined = controller.wait_for_hosts(
                    workers, timeout=_JOIN_TIMEOUT_S
                )
                restarted = True
                emit(
                    f"repro chaos: controller restarted, "
                    f"{restart_rejoined} hosts rejoined"
                )
                watchdog.beat("distributed: controller restart")
            # Respawn workers whose crash faults killed the process —
            # the respawn replays the same plan from step 1.
            for idx, proc in enumerate(procs[:workers]):
                if proc.poll() is not None:
                    procs[idx] = _spawn(port, names[idx], specs[idx], logs[idx])
                    respawns += 1
            Z = runtime.run_sharded(A, X, pattern=pattern)
            batches += 1
            if not np.array_equal(Z, ref):
                mismatches += 1
            watchdog.beat(f"distributed: batch {batches}")
        _merge_remote_stats(stats_total, controller.stats())
    finally:
        runtime.close()
        _reap(procs)

    fault_counts = _fault_kinds_logged(logs)
    return {
        "leg": "distributed",
        "seconds": 0.0,  # filled by caller
        "batches": batches,
        "bitwise": mismatches == 0,
        "respawns": respawns,
        "restart_rejoined": restart_rejoined,
        "fault_counts": fault_counts,
        **stats_total,
    }


def _mutation_leg(
    *,
    seed: int,
    deadline: float,
    workers: int,
    nodes: int,
    avg_degree: int,
    dim: int,
    pattern: str,
    watchdog: _Watchdog,
    emit,
) -> Dict[str, object]:
    """Edge updates racing worker faults and a controller restart.

    Between sharded batches the graph mutates (seeded hot-row edge
    batches through :class:`DynamicGraph`), so RUN requests land on
    freshly delta-shipped — or, after the controller restart, fully
    re-shipped — matrix versions while the fault plans fire.  Every
    batch is checked bitwise against a kernel on a CSR rebuilt from
    scratch out of the current edge set, and every acknowledged version
    must increment by exactly one.
    """
    import subprocess

    from ..runtime.dynamic import DynamicGraph
    from .dynamic_bench import edge_batch, rebuild_csr
    from .remote_bench import _reap

    rng = np.random.default_rng(seed * 17 + 3)
    A = rmat(nodes, nodes * avg_degree, seed=seed + 2)
    X = random_features(A.nrows, dim, seed=seed + 2)
    half = max(8, A.nnz // 500)

    port = _free_port()
    plans = _worker_plans(seed + 5, workers)
    log_dir = tempfile.mkdtemp(prefix="repro-chaos-mut-")
    names = [f"chaos-m{i}" for i in range(workers)]
    logs = [os.path.join(log_dir, f"{name}.stderr") for name in names]

    runtime = KernelRuntime(
        num_threads=1, processes=0, remote_port=port, remote_hedge=True
    )
    procs: List[subprocess.Popen] = []
    stats_total: Dict[str, int] = {}
    batches = 0
    mismatches = 0
    respawns = 0
    versions_ok = True
    restart_rejoined = -1
    try:
        controller = runtime.controller
        procs = [
            _spawn(port, name, spec, log)
            for name, spec, log in zip(names, plans, logs)
        ]
        controller.wait_for_hosts(workers, timeout=_JOIN_TIMEOUT_S)
        watchdog.beat("mutation: hosts joined")

        graph = DynamicGraph(A, runtime=runtime)
        expected_version = 0
        restart_at = time.monotonic() + max(
            (deadline - time.monotonic()) / 2.0, 1.0
        )
        restarted = False
        while time.monotonic() < deadline or batches < 4:
            if not restarted and time.monotonic() >= restart_at:
                # Controller "crash" with a live mutable graph: sever
                # without the EXIT handshake, rebuild on the same port,
                # and hand the graph its new runtime — versions continue,
                # dirty-shard deltas fall back to full re-ships until the
                # rejoined agents hold a base again.
                _merge_remote_stats(stats_total, controller.stats())
                controller.close(notify=False)
                runtime.close()
                runtime = KernelRuntime(
                    num_threads=1,
                    processes=0,
                    remote_port=port,
                    remote_hedge=True,
                )
                controller = runtime.controller
                graph.runtime = runtime
                restart_rejoined = controller.wait_for_hosts(
                    workers, timeout=_JOIN_TIMEOUT_S
                )
                restarted = True
                emit(
                    f"repro chaos: mutation-leg controller restarted, "
                    f"{restart_rejoined} hosts rejoined"
                )
                watchdog.beat("mutation: controller restart")
            for idx, proc in enumerate(procs):
                if proc.poll() is not None:
                    procs[idx] = _spawn(port, names[idx], plans[idx], logs[idx])
                    respawns += 1
            insert, delete = edge_batch(rng, graph.matrix, half, half, n_hot=16)
            result = graph.apply_edges(insert=insert, delete=delete)
            expected_version += 1
            if result.version != expected_version:
                versions_ok = False
            Z = runtime.run_sharded(graph.matrix, X, pattern=pattern)
            ref = fusedmm(
                rebuild_csr(graph.matrix), X, X, pattern=pattern, num_threads=1
            )
            batches += 1
            if not np.array_equal(Z, ref):
                mismatches += 1
            watchdog.beat(f"mutation: batch {batches} (v{result.version})")
        _merge_remote_stats(stats_total, controller.stats())
        graph.close()
    finally:
        runtime.close()
        _reap(procs)

    fault_counts = _fault_kinds_logged(logs)
    return {
        "leg": "mutation",
        "seconds": 0.0,
        "batches": batches,
        "bitwise": mismatches == 0,
        "versions_monotonic": versions_ok,
        "respawns": respawns,
        "restart_rejoined": restart_rejoined,
        "fault_counts": fault_counts,
        **stats_total,
    }


def _serve_leg(
    *,
    seed: int,
    deadline: float,
    pattern: str,
    watchdog: _Watchdog,
    emit,
) -> Dict[str, object]:
    from ..serve import ServeConfig, connect
    from ..serve.runner import BackgroundServer

    A = rmat(400, 400 * 6, seed=seed + 1)
    X = random_features(A.nrows, 8, seed=seed + 1)
    ref = fusedmm(A, X, X, pattern=pattern, num_threads=1)

    plan = FaultPlan.seeded(
        seed + 99, steps=150, rate=0.15, kinds=FAULT_KINDS, max_delay_s=0.1
    )
    config = ServeConfig(
        port=0, wire_port=0, models=(), fault_spec=plan.to_spec() or None
    )
    policy = RetryPolicy(
        base_delay=0.05, max_delay=0.5, max_attempts=10, seed=seed
    )
    requests = 0
    mismatches = 0
    retries = 0
    kinds_fired = ()
    with BackgroundServer(config) as bg:
        http = connect(f"http://127.0.0.1:{bg.port}", timeout=10, retry=policy)
        wire = connect(
            f"wire://127.0.0.1:{bg.wire_port}", timeout=10, retry=policy
        )
        try:
            while time.monotonic() < deadline or requests < 40:
                for client in (http, wire):
                    Z = client.kernel(graph=A, x=X, pattern=pattern)
                    requests += 1
                    if not np.array_equal(Z, ref):
                        mismatches += 1
                watchdog.beat(f"serve: request {requests}")
            retries = http.retries_attempted + wire.retries_attempted
        finally:
            http.close()
            wire.close()
        injector = bg.server.fault_injector
        kinds_fired = injector.kinds_fired() if injector is not None else ()
        faults_fired = len(injector.fired) if injector is not None else 0
    return {
        "leg": "serve",
        "seconds": 0.0,
        "requests": requests,
        "bitwise": mismatches == 0,
        "retries": retries,
        "faults_fired": faults_fired,
        "fault_counts": {k: 1 for k in kinds_fired},
    }


def _training_leg(
    *,
    seed: int,
    watchdog: _Watchdog,
    emit,
) -> Dict[str, object]:
    """SIGKILL a real ``repro train`` mid-epoch; resume must be bitwise.

    The durable-jobs analogue of the controller-restart gate: a training
    subprocess with a checkpoint directory is killed with ``-9`` (no
    drain, no atexit) as soon as it reports epoch 2, then rerun with the
    same command line.  The rerun must print the resume banner and the
    final output must be bitwise identical to an uninterrupted
    in-process reference of the same spec.
    """
    import shutil
    import signal
    import subprocess
    from pathlib import Path

    from ..jobs import JobSpec, run_training

    spec = JobSpec(
        app="force2vec",
        dataset="harvard",
        scale=1.0,
        dim=16,
        epochs=12,
        seed=seed,
        checkpoint_every=1,
    )
    work = tempfile.mkdtemp(prefix="repro-chaos-train-")
    out_path = os.path.join(work, "out.npy")
    log_path = os.path.join(work, "train.log")
    argv = [
        sys.executable,
        "-m",
        "repro",
        "train",
        "--app",
        spec.app,
        "--dataset",
        spec.dataset,
        "--scale",
        str(spec.scale),
        "--dim",
        str(spec.dim),
        "--epochs",
        str(spec.epochs),
        "--seed",
        str(spec.seed),
        "--checkpoint-every",
        str(spec.checkpoint_every),
        "--checkpoint-dir",
        os.path.join(work, "ck"),
        "--output",
        out_path,
    ]
    env = dict(os.environ)
    src_dir = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")

    def _run(wait_for: Optional[str]) -> "subprocess.Popen":
        with open(log_path, "ab") as log:
            proc = subprocess.Popen(
                argv, env=env, stdout=log, stderr=subprocess.STDOUT
            )
        if wait_for is None:
            return proc
        deadline = time.monotonic() + _JOIN_TIMEOUT_S
        while time.monotonic() < deadline and proc.poll() is None:
            if wait_for in Path(log_path).read_text(errors="replace"):
                break
            time.sleep(0.02)
        return proc

    killed_at_epoch = -1
    resumed_from = -1
    bitwise = False
    try:
        # Phase 1: kill -9 as soon as epoch 2 is reported (mid-run, with
        # at least one durable checkpoint behind it).
        proc = _run(wait_for="epoch 2/")
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=_JOIN_TIMEOUT_S)
        log_text = Path(log_path).read_text(errors="replace")
        killed_at_epoch = log_text.count("repro train: epoch")
        watchdog.beat("training: killed mid-run")

        # Phase 2: same command, same checkpoint dir — must resume.
        proc = _run(wait_for=None)
        proc.wait(timeout=_JOIN_TIMEOUT_S * 4)
        log_text = Path(log_path).read_text(errors="replace")
        for line in log_text.splitlines():
            if "resuming from epoch" in line:
                resumed_from = int(line.rsplit(" ", 1)[-1])
                break
        watchdog.beat("training: resumed run finished")

        reference = run_training(spec).output
        try:
            resumed = np.load(out_path)
            bitwise = bool(
                np.array_equal(resumed, reference)
                and resumed.dtype == reference.dtype
            )
        except (OSError, ValueError):
            bitwise = False
        watchdog.beat("training: reference compared")
        emit(
            f"repro chaos: training killed -9 after {killed_at_epoch} "
            f"epoch(s), resumed from {resumed_from}, "
            f"bitwise={'yes' if bitwise else 'NO'}"
        )
    finally:
        shutil.rmtree(work, ignore_errors=True)
    return {
        "leg": "training",
        "seconds": 0.0,
        "killed_at_epoch": killed_at_epoch,
        "resumed_from": resumed_from,
        "bitwise": bitwise,
        "fault_counts": {},
    }


def run_chaos(
    *,
    seed: int = 7,
    duration_s: float = 60.0,
    workers: int = 2,
    nodes: int = 3_000,
    avg_degree: int = 8,
    dim: int = 16,
    pattern: str = "sigmoid_embedding",
    stall_timeout_s: Optional[float] = None,
    emit=print,
) -> Dict[str, object]:
    """Run the full chaos soak; returns the gated report.

    ``duration_s`` is split ~2:1:1 between the distributed, mutation and
    serve legs (each still runs a minimum number of units so short smoke
    runs exercise every path); the training leg runs one fixed
    kill/resume cycle after them.  The report's ``ok`` is True only when
    every gate held: all responses bitwise, the flapper quarantined,
    workers rejoined after both controller restarts, graph versions
    incremented gaplessly under faults, at least one fault of every kind
    fired, the SIGKILL-ed training run resumed bitwise, and nothing
    hung.
    """
    if stall_timeout_s is None:
        stall_timeout_s = max(120.0, duration_s * 2)
    watchdog = _Watchdog(stall_timeout_s)
    t0 = time.monotonic()
    try:
        leg1_deadline = t0 + duration_s * 0.5
        t1 = time.monotonic()
        row1 = _distributed_leg(
            seed=seed,
            deadline=leg1_deadline,
            workers=workers,
            nodes=nodes,
            avg_degree=avg_degree,
            dim=dim,
            pattern=pattern,
            watchdog=watchdog,
            emit=emit,
        )
        row1["seconds"] = time.monotonic() - t1

        tm = time.monotonic()
        row_m = _mutation_leg(
            seed=seed,
            deadline=t0 + duration_s * 0.75,
            workers=workers,
            nodes=nodes,
            avg_degree=avg_degree,
            dim=dim,
            pattern=pattern,
            watchdog=watchdog,
            emit=emit,
        )
        row_m["seconds"] = time.monotonic() - tm

        t2 = time.monotonic()
        row2 = _serve_leg(
            seed=seed,
            deadline=t0 + duration_s,
            pattern=pattern,
            watchdog=watchdog,
            emit=emit,
        )
        row2["seconds"] = time.monotonic() - t2

        t3 = time.monotonic()
        row3 = _training_leg(seed=seed, watchdog=watchdog, emit=emit)
        row3["seconds"] = time.monotonic() - t3
    finally:
        watchdog.close()

    kinds_seen = (
        set(row1["fault_counts"])
        | set(row_m["fault_counts"])
        | set(row2["fault_counts"])
    )
    gates = {
        "bitwise": bool(row1["bitwise"] and row2["bitwise"]),
        "quarantined": int(row1.get("quarantined_hosts", 0)) >= 1,
        "rejoined_after_restart": int(row1["restart_rejoined"]) >= workers,
        "mutation_bitwise": bool(row_m["bitwise"]),
        "mutation_versions_monotonic": bool(row_m["versions_monotonic"]),
        "mutation_rejoined": int(row_m["restart_rejoined"]) >= workers,
        "all_fault_kinds": all(k in kinds_seen for k in FAULT_KINDS),
        "train_resumed": int(row3["resumed_from"]) >= 1,
        "train_bitwise": bool(row3["bitwise"]),
        "no_hang": True,  # the watchdog exits the process otherwise
    }
    return {
        "seed": seed,
        "duration_s": time.monotonic() - t0,
        "rows": [row1, row_m, row2, row3],
        "kinds_seen": tuple(sorted(kinds_seen)),
        "gates": gates,
        "ok": all(gates.values()),
    }
