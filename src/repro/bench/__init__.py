"""Benchmark-harness utilities shared by the experiments and the
pytest-benchmark targets."""

from .harness import compare_kernels, kernel_callables, make_operands
from .report import ExperimentReport, comparison_block, load_results, save_results
from .runtime_bench import (
    bench_batch_packing,
    bench_plan_cache,
    run_throughput_benchmark,
)
from .sweep import DegreeSweepItem, degree_sweep_graphs, dimension_sweep
from .tables import format_markdown_table, format_table, format_value

__all__ = [
    "compare_kernels",
    "kernel_callables",
    "make_operands",
    "ExperimentReport",
    "comparison_block",
    "save_results",
    "load_results",
    "DegreeSweepItem",
    "degree_sweep_graphs",
    "dimension_sweep",
    "format_table",
    "format_markdown_table",
    "format_value",
    "bench_plan_cache",
    "bench_batch_packing",
    "run_throughput_benchmark",
]
