"""Benchmark-harness utilities shared by the experiments and the
pytest-benchmark targets."""

from .harness import compare_kernels, kernel_callables, make_operands
from .jit_bench import bench_jit_speedup
from .record import bench_environment, load_benchmark, record_benchmark
from .reorder_bench import bench_reorder_locality
from .report import ExperimentReport, comparison_block, load_results, save_results
from .runtime_bench import (
    bench_batch_packing,
    bench_plan_cache,
    run_throughput_benchmark,
)
from .shard_bench import bench_shard_scaling
from .sweep import DegreeSweepItem, degree_sweep_graphs, dimension_sweep
from .tables import format_markdown_table, format_table, format_value
from .trend import MetricDelta, TrendReport, compare_paths, compare_records


def __getattr__(name: str):
    # Lazy: the serving benchmark pulls in the whole repro.serve +
    # asyncio/http stack, which the other benchmarks don't need — and
    # whose import-graph size measurably perturbs their GC-sensitive
    # sub-millisecond timing windows.
    if name == "bench_serve_throughput":
        from .serve_bench import bench_serve_throughput

        return bench_serve_throughput
    # Lazy for the same reason: pulls in the remote/runtime stack.
    if name == "bench_remote_scaling":
        from .remote_bench import bench_remote_scaling

        return bench_remote_scaling
    # Lazy for the same reason: pulls in the remote/runtime stack.
    if name == "bench_dynamic_updates":
        from .dynamic_bench import bench_dynamic_updates

        return bench_dynamic_updates
    # Lazy: pulls in the jobs subsystem and all four training apps.
    if name == "bench_checkpoint_overhead":
        from .jobs_bench import bench_checkpoint_overhead

        return bench_checkpoint_overhead
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "bench_environment",
    "record_benchmark",
    "load_benchmark",
    "bench_shard_scaling",
    "bench_remote_scaling",
    "bench_dynamic_updates",
    "bench_jit_speedup",
    "bench_reorder_locality",
    "bench_serve_throughput",
    "bench_checkpoint_overhead",
    "compare_paths",
    "compare_records",
    "MetricDelta",
    "TrendReport",
    "compare_kernels",
    "kernel_callables",
    "make_operands",
    "ExperimentReport",
    "comparison_block",
    "save_results",
    "load_results",
    "DegreeSweepItem",
    "degree_sweep_graphs",
    "dimension_sweep",
    "format_table",
    "format_markdown_table",
    "format_value",
    "bench_plan_cache",
    "bench_batch_packing",
    "run_throughput_benchmark",
]
