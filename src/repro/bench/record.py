"""Machine-readable benchmark records (``BENCH_<name>.json``).

Every system benchmark writes its rows through :func:`record_benchmark`, so
the repository accumulates a uniform, diffable performance trajectory: one
JSON file per benchmark with the environment it ran in and the raw rows the
human-readable table was printed from.  CI uploads these files as build
artifacts from the ``runtime-smoke`` job.

Schema (version 1)::

    {
      "schema_version": 1,
      "benchmark": "runtime",
      "created_unix": 1700000000.0,
      "environment": {"python": "...", "platform": "...", "cpus": 8, ...},
      "rows": [{...}, ...]
    }
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..core.parallel import available_threads
from ..version import __version__

__all__ = ["bench_environment", "record_benchmark", "load_benchmark"]

SCHEMA_VERSION = 1


def bench_environment() -> Dict[str, object]:
    """The environment fingerprint stored alongside benchmark rows."""
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": available_threads(),
        "numpy": np.__version__,
        "repro": __version__,
    }


def _jsonable(value):
    """Coerce NumPy scalars/arrays so rows serialise without custom hooks."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def record_benchmark(
    name: str,
    rows: List[Dict[str, object]],
    *,
    path: Optional[Union[str, Path]] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Path:
    """Write benchmark ``rows`` to ``BENCH_<name>.json`` and return the path.

    ``path`` overrides the default location (the current working
    directory); ``extra`` lands as additional top-level keys (e.g. the
    benchmark's configuration).
    """
    out = Path(path) if path is not None else Path(f"BENCH_{name}.json")
    payload: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": name,
        "created_unix": time.time(),
        "environment": bench_environment(),
        "rows": [_jsonable(row) for row in rows],
    }
    if extra:
        payload.update(_jsonable(extra))
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return out


def load_benchmark(path: Union[str, Path]) -> Dict[str, object]:
    """Read a ``BENCH_*.json`` file back (tests, trend tooling)."""
    return json.loads(Path(path).read_text())
