"""Package version information."""

__version__ = "1.0.0"

#: Short identifier of the paper reproduced by this package.
PAPER = "FusedMM: A Unified SDDMM-SpMM Kernel for Graph Embedding and GNNs (IPDPS 2021)"
